"""Per-flow result summaries used by the experiment harness and the reports."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional, Sequence

from repro.serialization import require_known_keys
from repro.sim.units import ns_to_seconds
from repro.transport.tcp import TcpSender, TcpSink
from repro.transport.udp import UdpReceiver


@dataclass
class FlowResult:
    """Outcome of one flow over one simulation run."""

    flow_id: int
    kind: str
    src: int
    dst: int
    throughput_mbps: float
    packets_received: int = 0
    packets_sent: int = 0
    reordered: int = 0
    duplicates: int = 0
    mean_delay_ms: float = 0.0
    #: Transport-layer recovery counters (TCP flows; zero for UDP kinds).
    retransmissions: int = 0
    fast_retransmits: int = 0
    timeouts: int = 0
    rto_backoffs: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def reordering_ratio(self) -> float:
        if self.packets_received == 0:
            return 0.0
        return self.reordered / self.packets_received

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (used by the sweep cache)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FlowResult":
        require_known_keys(data, (f.name for f in fields(cls)), cls.__name__)
        return cls(
            flow_id=int(data["flow_id"]),
            kind=str(data["kind"]),
            src=int(data["src"]),
            dst=int(data["dst"]),
            throughput_mbps=float(data["throughput_mbps"]),
            packets_received=int(data.get("packets_received", 0)),
            packets_sent=int(data.get("packets_sent", 0)),
            reordered=int(data.get("reordered", 0)),
            duplicates=int(data.get("duplicates", 0)),
            mean_delay_ms=float(data.get("mean_delay_ms", 0.0)),
            retransmissions=int(data.get("retransmissions", 0)),
            fast_retransmits=int(data.get("fast_retransmits", 0)),
            timeouts=int(data.get("timeouts", 0)),
            rto_backoffs=int(data.get("rto_backoffs", 0)),
            extra=dict(data.get("extra", {})),
        )


def summarize_tcp_flow(
    flow_id: int,
    src: int,
    dst: int,
    sink: TcpSink,
    duration_ns: int,
    sender: Optional[TcpSender] = None,
) -> FlowResult:
    """Build a :class:`FlowResult` from a TCP sink's (and sender's) counters."""
    throughput = sink.goodput_bps(duration_ns) / 1e6
    result = FlowResult(
        flow_id=flow_id,
        kind="tcp",
        src=src,
        dst=dst,
        throughput_mbps=throughput,
        packets_received=sink.stats.segments_received,
        reordered=sink.stats.reordered_segments,
        duplicates=sink.stats.duplicate_segments,
    )
    if sender is not None:
        result.packets_sent = sender.stats.segments_sent
        result.retransmissions = sender.stats.retransmissions
        result.fast_retransmits = sender.stats.fast_retransmits
        result.timeouts = sender.stats.timeouts
        result.rto_backoffs = sender.stats.rto_backoffs
    return result


def summarize_udp_flow(
    flow_id: int, src: int, dst: int, receiver: UdpReceiver, sent: int, duration_ns: int
) -> FlowResult:
    """Build a :class:`FlowResult` from a UDP receiver's counters."""
    delays = receiver.stats.delays_ns
    mean_delay_ms = (sum(delays) / len(delays) / 1e6) if delays else 0.0
    return FlowResult(
        flow_id=flow_id,
        kind="udp",
        src=src,
        dst=dst,
        throughput_mbps=receiver.throughput_bps(duration_ns) / 1e6,
        packets_received=receiver.stats.received,
        packets_sent=sent,
        duplicates=receiver.stats.duplicates,
        mean_delay_ms=mean_delay_ms,
    )


def total_throughput_mbps(results: Sequence[FlowResult]) -> float:
    """Sum of per-flow throughputs (the quantity most of the paper's figures plot)."""
    return sum(result.throughput_mbps for result in results)
