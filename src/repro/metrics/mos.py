"""VoIP quality metrics: the E-model R-factor and Mean Opinion Score.

Section IV-E of the paper gives both formulas explicitly:

* R-factor (from [6]):
  ``R = 94.2 - 0.024 d - 0.11 (d - 177.3) H(d - 177.3) - 11 - 40 log10(1 + 10 e)``
  where ``d`` is the mouth-to-ear delay in milliseconds (coding + network +
  buffering), ``e`` the total loss rate (network losses plus packets that
  arrive too late), and ``H`` the Heaviside step function.

* MoS from R:
  ``1`` if ``R < 0``; ``4.5`` if ``R > 100``; otherwise
  ``1 + 0.035 R + 7e-6 R (R - 60)(100 - R)``.

The paper aims for a 177 ms mouth-to-ear budget of which 52 ms is allowed
in the wireless segment; packets delayed beyond the wireless budget count
as lost.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

from repro.serialization import require_known_keys

#: Mouth-to-ear delay budget used in the paper (milliseconds).
MOUTH_TO_EAR_DELAY_MS = 177.0
#: Portion of the budget allowed for the wireless segment (milliseconds).
WIRELESS_DELAY_BUDGET_MS = 52.0


def heaviside(x: float) -> float:
    """H(x) = 1 if x > 0 else 0 (as defined in the paper)."""
    return 1.0 if x > 0 else 0.0


def r_factor(delay_ms: float, loss_rate: float) -> float:
    """E-model transmission rating for a given delay (ms) and loss rate (0..1)."""
    if loss_rate < 0 or loss_rate > 1:
        raise ValueError(f"loss_rate must be within [0, 1], got {loss_rate}")
    d = float(delay_ms)
    e = float(loss_rate)
    return (
        94.2
        - 0.024 * d
        - 0.11 * (d - 177.3) * heaviside(d - 177.3)
        - 11.0
        - 40.0 * math.log10(1.0 + 10.0 * e)
    )


def mos_from_r(r: float) -> float:
    """Map an R-factor to a 1..4.5 Mean Opinion Score (paper's piecewise formula).

    The polynomial dips fractionally below 1 for tiny positive R; since MoS is
    defined on [1, 5] the result is clamped at 1 (the "impossible" grade).
    """
    if r < 0:
        return 1.0
    if r > 100:
        return 4.5
    return max(1.0, 1.0 + 0.035 * r + 7e-6 * r * (r - 60.0) * (100.0 - r))


def mos(delay_ms: float, loss_rate: float) -> float:
    """Convenience: MoS directly from delay and loss."""
    return mos_from_r(r_factor(delay_ms, loss_rate))


@dataclass(frozen=True)
class VoipQuality:
    """Summary of one VoIP flow's perceived quality."""

    delay_ms: float
    loss_rate: float
    r_factor: float
    mos: float

    def to_dict(self) -> dict:
        """JSON-safe representation (used by the sweep cache)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "VoipQuality":
        require_known_keys(data, ("delay_ms", "loss_rate", "r_factor", "mos"), cls.__name__)
        return cls(
            delay_ms=float(data["delay_ms"]),
            loss_rate=float(data["loss_rate"]),
            r_factor=float(data["r_factor"]),
            mos=float(data["mos"]),
        )


def evaluate_voip(
    delays_ms: Sequence[float],
    packets_sent: int,
    wireless_budget_ms: float = WIRELESS_DELAY_BUDGET_MS,
    mouth_to_ear_ms: float = MOUTH_TO_EAR_DELAY_MS,
) -> VoipQuality:
    """Score a VoIP flow from its per-packet one-way wireless delays.

    Packets that never arrived, plus packets that arrived after the wireless
    delay budget, count as losses (Section IV-E).  The mouth-to-ear delay
    used in the R-factor is the fixed budget — coding, de-jitter buffering
    and the wired segment are assumed to consume the rest, as in the paper's
    setup which *aims* for a 177 ms mouth-to-ear delay.
    """
    if packets_sent <= 0:
        return VoipQuality(mouth_to_ear_ms, 1.0, r_factor(mouth_to_ear_ms, 1.0), 1.0)
    on_time = [d for d in delays_ms if d <= wireless_budget_ms]
    losses = packets_sent - len(on_time)
    loss_rate = min(1.0, max(0.0, losses / packets_sent))
    rating = r_factor(mouth_to_ear_ms, loss_rate)
    return VoipQuality(
        delay_ms=mouth_to_ear_ms,
        loss_rate=loss_rate,
        r_factor=rating,
        mos=mos_from_r(rating),
    )
