"""Measurement helpers: flow summaries, re-ordering, VoIP MoS."""

from repro.metrics.flows import FlowResult, summarize_tcp_flow, summarize_udp_flow, total_throughput_mbps
from repro.metrics.mos import (
    MOUTH_TO_EAR_DELAY_MS,
    WIRELESS_DELAY_BUDGET_MS,
    VoipQuality,
    evaluate_voip,
    mos,
    mos_from_r,
    r_factor,
)

__all__ = [
    "FlowResult",
    "summarize_tcp_flow",
    "summarize_udp_flow",
    "total_throughput_mbps",
    "MOUTH_TO_EAR_DELAY_MS",
    "WIRELESS_DELAY_BUDGET_MS",
    "VoipQuality",
    "evaluate_voip",
    "mos",
    "mos_from_r",
    "r_factor",
]
