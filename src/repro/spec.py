"""Declarative scenario specs: name-addressed components, JSON all the way.

This module is the public face of the composable scenario API.  Each
pluggable layer has a small serializable spec that names a registered
component plus its parameters:

* :class:`MacSpec` — a MAC/forwarding scheme from
  :data:`repro.mac.registry.MAC_SCHEMES` (``dcf``, ``afr``, ``ripple``,
  ``ripple1``, ``preexor``, ``mcexor``, the ``rate_adapt`` ARF wrapper);
* :class:`RoutingSpec` — a routing strategy from
  :data:`repro.routing.registry.ROUTING_STRATEGIES` (``static``,
  ``shortest_path``, ``adaptive_etx``/``etx``);
* :class:`TrafficSpec` — a traffic kind from
  :data:`repro.traffic.registry.TRAFFIC_KINDS` (``tcp``, ``web``,
  ``voip``, ``udp-saturating``, ``poisson``) or the default ``"flows"``,
  meaning "drive each flow according to its own :class:`FlowSpec.kind`";
* :class:`TopologyRef` — a named topology builder from
  :data:`repro.topology.registry.TOPOLOGIES` with builder parameters
  (``line``/``n_hops=6``, ``roofnet``/``include_hidden=true``,
  ``trace:<path>`` for external CSV/JSON files, ...);
* :class:`~repro.mobility.spec.MobilitySpec` — already spec-shaped —
  rides alongside unchanged.

The propagation model is part of the PHY rather than a separate spec:
``PhyParams.propagation`` names an entry of
:data:`repro.phy.registry.PROPAGATION_MODELS` (``shadowing``,
``rayleigh``, ``rician``) with ``propagation_params`` as its knobs.

The generated reference for every registered component lives in
``docs/COMPONENTS.md`` (``python -m repro.docs``).

:class:`ScenarioSpec` composes them into one JSON document that fully
describes a simulation.  ``ScenarioSpec.from_dict(json.load(f)).to_config()``
is exactly what ``python -m repro.experiments run --spec file.json``
does, and any (topology × MAC × routing × traffic × mobility)
combination of registered components is reachable that way with no new
experiment module.

The paper's ``scheme_label`` bars ("S"/"D"/"A"/"R1"/"R16") remain a thin
alias layer: :func:`repro.experiments.runner.expand_scheme_label` turns a
label into the equivalent ``(MacSpec, RoutingSpec)`` pair, and configs
whose explicit specs match an alias expansion canonicalize back to the
label, so the legacy and spec-addressed forms of the same scenario hash
to the same sweep-cache digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Union

from repro.phy.params import HIGH_RATE_PHY, LOW_RATE_PHY, PhyParams
from repro.mobility.spec import MobilitySpec
from repro.serialization import SpecError, require_keys, require_known_keys
from repro.topology.spec import TopologySpec

#: Named PHY profiles addressable from specs (Table I's two rate points).
PHY_PROFILES: Dict[str, PhyParams] = {
    "high_rate": HIGH_RATE_PHY,
    "low_rate": LOW_RATE_PHY,
}


def _canonical_params(params: Dict[str, object]) -> Dict[str, object]:
    """Key-sorted copy of a params dict (so equal specs serialize identically)."""
    return {key: params[key] for key in sorted(params)}


@dataclass(frozen=True)
class _ComponentSpec:
    """A registered component addressed by name, plus its parameters.

    Subclasses pin the registry the name must resolve in; validation
    happens at construction so a typo'd name fails where it was written,
    not deep inside ``build_network``.
    """

    name: str
    params: Dict[str, object] = field(default_factory=dict)

    #: Overridden per subclass.
    KIND = "component"

    def __post_init__(self) -> None:
        registry = self._registry()
        if self.name not in registry and not self._name_exempt(self.name):
            raise SpecError(
                f"unknown {registry.kind} {self.name!r} for {type(self).__name__}; "
                f"known: {registry.known_names()}"
            )
        for key in self.params:
            if not isinstance(key, str):
                raise SpecError(
                    f"{type(self).__name__} parameter names must be strings, got {key!r}"
                )

    @classmethod
    def _registry(cls):
        raise NotImplementedError

    @classmethod
    def registry(cls):
        """The live registry this spec class resolves names in.

        Public introspection hook: the scenario corpus
        (:mod:`repro.corpus.space`) walks it to enumerate the valid spec
        space, and the wire-format fuzz tests use it to build known-good
        documents per spec class.
        """
        return cls._registry()

    @classmethod
    def _name_exempt(cls, name: str) -> bool:
        """Names valid for this spec without a registry entry (none by default)."""
        return False

    @property
    def canonical_name(self) -> str:
        """The registry's canonical name (aliases like ``etx`` resolved)."""
        return self._registry().canonical_name(self.name)

    def canonical(self) -> "_ComponentSpec":
        """This spec with its name canonicalized (used before hashing)."""
        name = self.canonical_name
        return self if name == self.name else replace(self, name=name)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-safe representation (hashed by the sweep cache)."""
        return {"name": self.canonical_name, "params": _canonical_params(self.params)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "_ComponentSpec":
        require_known_keys(data, ("name", "params"), cls.__name__)
        require_keys(data, ("name",), cls.__name__)
        params = data.get("params") or {}
        if not isinstance(params, dict):
            raise SpecError(f"{cls.__name__}.params must be a dict, got {type(params).__name__}")
        return cls(name=str(data["name"]), params=dict(params))

    def __eq__(self, other: object) -> bool:
        """Specs compare by canonical name + params (aliases are transparent)."""
        if not isinstance(other, type(self)) or not isinstance(self, type(other)):
            return NotImplemented
        return self.canonical_name == other.canonical_name and self.params == other.params

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.canonical_name, tuple(sorted(self.params.items(), key=lambda kv: kv[0]))))


@dataclass(frozen=True, eq=False)
class MacSpec(_ComponentSpec):
    """One MAC/forwarding scheme by registered name (+ per-node MAC kwargs)."""

    KIND = "mac"

    @classmethod
    def _registry(cls):
        from repro.mac.registry import MAC_SCHEMES

        return MAC_SCHEMES


@dataclass(frozen=True, eq=False)
class RoutingSpec(_ComponentSpec):
    """One routing strategy by registered name (+ builder params)."""

    KIND = "routing"

    @classmethod
    def _registry(cls):
        from repro.routing.registry import ROUTING_STRATEGIES

        return ROUTING_STRATEGIES


@dataclass(frozen=True, eq=False)
class TrafficSpec(_ComponentSpec):
    """One traffic kind by registered name, or ``"flows"`` (per-flow kinds)."""

    KIND = "traffic"

    @classmethod
    def _registry(cls):
        from repro.traffic.registry import TRAFFIC_KINDS

        return TRAFFIC_KINDS

    @classmethod
    def _name_exempt(cls, name: str) -> bool:
        from repro.traffic.registry import PER_FLOW_KINDS

        return name == PER_FLOW_KINDS

    @property
    def per_flow(self) -> bool:
        """Whether each flow keeps its own :class:`FlowSpec.kind`."""
        from repro.traffic.registry import PER_FLOW_KINDS

        return self.name == PER_FLOW_KINDS


@dataclass(frozen=True, eq=False)
class TransportSpec(_ComponentSpec):
    """One congestion-control scheme by registered name (+ controller params).

    Resolves in :data:`repro.transport.registry.TRANSPORT_SCHEMES`
    (``reno``, ``tahoe``, ``newreno``, ``cubic``).  The default — absent
    spec — is ``reno``, the seed's machine, and an explicit parameter-free
    ``reno`` canonicalizes back to the absent form so both address the
    same sweep-cache digest.
    """

    KIND = "transport"

    @classmethod
    def _registry(cls):
        from repro.transport.registry import TRANSPORT_SCHEMES

        return TRANSPORT_SCHEMES


@dataclass(frozen=True, eq=False)
class TopologyRef(_ComponentSpec):
    """A named topology builder plus its parameters.

    Unlike an inline :class:`TopologySpec` (positions, flows and routes
    spelled out), a ref stays tiny in serialized form and is rebuilt —
    deterministically — from the registry at resolution time.
    """

    KIND = "topology"

    @classmethod
    def _registry(cls):
        from repro.topology.registry import TOPOLOGIES

        return TOPOLOGIES

    def build(self) -> TopologySpec:
        """Construct (and validate) the referenced topology."""
        from repro.topology.registry import build_topology

        return build_topology(self.name, **self.params)


#: ScenarioSpec component field -> the spec class that parses it.  The
#: enumeration hook the corpus and the wire-format fuzz tests iterate:
#: every name-addressed layer appears here exactly once, so "walk all
#: component registries" never silently misses a newly added layer.
COMPONENT_SPEC_CLASSES: Dict[str, type] = {
    "topology": TopologyRef,
    "mac": MacSpec,
    "routing": RoutingSpec,
    "traffic": TrafficSpec,
    "transport": TransportSpec,
}


def _phy_to_dict(phy: Optional[Union[str, PhyParams]]) -> object:
    if phy is None or isinstance(phy, str):
        if isinstance(phy, str) and phy not in PHY_PROFILES:
            raise SpecError(f"unknown PHY profile {phy!r}; known: {sorted(PHY_PROFILES)}")
        return phy
    return phy.to_dict()


def _phy_from_dict(data: object) -> Optional[Union[str, PhyParams]]:
    if data is None:
        return None
    if isinstance(data, str):
        if data not in PHY_PROFILES:
            raise SpecError(f"unknown PHY profile {data!r}; known: {sorted(PHY_PROFILES)}")
        return data
    return PhyParams.from_dict(data)


def resolve_phy(phy: Optional[Union[str, PhyParams]]) -> Optional[PhyParams]:
    """Turn a spec-level PHY reference (profile name or params) into params."""
    if phy is None or isinstance(phy, PhyParams):
        return phy
    try:
        return PHY_PROFILES[phy]
    except KeyError:
        raise SpecError(f"unknown PHY profile {phy!r}; known: {sorted(PHY_PROFILES)}") from None


@dataclass
class ScenarioSpec:
    """A fully declarative scenario: every layer addressed by name.

    ``to_config()`` resolves the references (topology builder, PHY
    profile) into a concrete
    :class:`~repro.experiments.runner.ScenarioConfig`; everything else is
    carried through.  ``scheme_label`` is optional sugar — when given, it
    supplies defaults for ``mac``/``routing`` through the alias layer,
    exactly as on :class:`ScenarioConfig` itself.
    """

    topology: Union[TopologyRef, TopologySpec]
    scheme_label: Optional[str] = None
    mac: Optional[MacSpec] = None
    routing: Optional[RoutingSpec] = None
    traffic: Optional[TrafficSpec] = None
    transport: Optional[TransportSpec] = None
    mobility: Optional[MobilitySpec] = None
    route_set: str = "ROUTE0"
    active_flows: Optional[List[int]] = None
    bit_error_rate: float = 1e-6
    duration_s: float = 1.0
    warmup_s: float = 0.0
    seed: int = 1
    phy: Optional[Union[str, PhyParams]] = None
    tcp_window: int = 64
    max_forwarders: int = 5
    max_aggregation: Optional[int] = None

    def resolve_topology(self) -> TopologySpec:
        if isinstance(self.topology, TopologyRef):
            return self.topology.build()
        return self.topology

    def to_config(self):
        """Resolve every reference into a runnable ``ScenarioConfig``."""
        from repro.experiments.runner import ScenarioConfig

        kwargs = {}
        if self.scheme_label is not None:
            kwargs["scheme_label"] = self.scheme_label
        return ScenarioConfig(
            topology=self.resolve_topology(),
            mac=self.mac,
            routing=self.routing,
            traffic=self.traffic,
            transport=self.transport,
            mobility=self.mobility,
            route_set=self.route_set,
            active_flows=None if self.active_flows is None else list(self.active_flows),
            bit_error_rate=self.bit_error_rate,
            duration_s=self.duration_s,
            warmup_s=self.warmup_s,
            seed=self.seed,
            phy=resolve_phy(self.phy),
            tcp_window=self.tcp_window,
            max_forwarders=self.max_forwarders,
            max_aggregation=self.max_aggregation,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation; ``from_dict`` is its exact inverse."""
        if isinstance(self.topology, TopologyRef):
            topology = {"ref": self.topology.to_dict()}
        else:
            topology = self.topology.to_dict()
        return {
            "topology": topology,
            "scheme_label": self.scheme_label,
            "mac": None if self.mac is None else self.mac.to_dict(),
            "routing": None if self.routing is None else self.routing.to_dict(),
            "traffic": None if self.traffic is None else self.traffic.to_dict(),
            "transport": None if self.transport is None else self.transport.to_dict(),
            "mobility": None if self.mobility is None else self.mobility.to_dict(),
            "route_set": self.route_set,
            "active_flows": None if self.active_flows is None else list(self.active_flows),
            "bit_error_rate": self.bit_error_rate,
            "duration_s": self.duration_s,
            "warmup_s": self.warmup_s,
            "seed": self.seed,
            "phy": _phy_to_dict(self.phy),
            "tcp_window": self.tcp_window,
            "max_forwarders": self.max_forwarders,
            "max_aggregation": self.max_aggregation,
        }

    _FIELDS = (
        "topology", "scheme_label", "mac", "routing", "traffic", "transport",
        "mobility", "route_set", "active_flows", "bit_error_rate",
        "duration_s", "warmup_s", "seed", "phy", "tcp_window",
        "max_forwarders", "max_aggregation",
    )

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        require_known_keys(data, cls._FIELDS, cls.__name__)
        require_keys(data, ("topology",), cls.__name__)
        topology_data = data["topology"]
        if isinstance(topology_data, dict) and set(topology_data) == {"ref"}:
            topology: Union[TopologyRef, TopologySpec] = TopologyRef.from_dict(
                topology_data["ref"]
            )
        elif isinstance(topology_data, dict) and "name" in topology_data and "positions" not in topology_data:
            # Accept a bare ref dict ({"name": ..., "params": ...}) too.
            topology = TopologyRef.from_dict(topology_data)
        else:
            topology = TopologySpec.from_dict(topology_data)
        scheme_label = data.get("scheme_label")
        mac = data.get("mac")
        routing = data.get("routing")
        traffic = data.get("traffic")
        transport = data.get("transport")
        mobility = data.get("mobility")
        active = data.get("active_flows")
        max_aggregation = data.get("max_aggregation")
        return cls(
            topology=topology,
            scheme_label=None if scheme_label is None else str(scheme_label),
            mac=None if mac is None else MacSpec.from_dict(mac),
            routing=None if routing is None else RoutingSpec.from_dict(routing),
            traffic=None if traffic is None else TrafficSpec.from_dict(traffic),
            transport=None if transport is None else TransportSpec.from_dict(transport),
            mobility=None if mobility is None else MobilitySpec.from_dict(mobility),
            route_set=str(data.get("route_set", "ROUTE0")),
            active_flows=None if active is None else [int(f) for f in active],
            bit_error_rate=float(data.get("bit_error_rate", 1e-6)),
            duration_s=float(data.get("duration_s", 1.0)),
            warmup_s=float(data.get("warmup_s", 0.0)),
            seed=int(data.get("seed", 1)),
            phy=_phy_from_dict(data.get("phy")),
            tcp_window=int(data.get("tcp_window", 64)),
            max_forwarders=int(data.get("max_forwarders", 5)),
            max_aggregation=None if max_aggregation is None else int(max_aggregation),
        )
