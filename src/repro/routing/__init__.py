"""Routing and opportunistic forwarding: ETX, SPR, predetermined routes, preExOR, MCExOR."""

from repro.routing.agent import NetworkAgent
from repro.routing.base import RouteNotFound, RoutingProtocol
from repro.routing.dynamic import AdaptiveEtxRouting
from repro.routing.etx import EtxParams, build_connectivity_graph, link_etx, path_etx
from repro.routing.mcexor import McExorMac
from repro.routing.preexor import PreExorMac
from repro.routing.registry import ROUTING_STRATEGIES, register_routing
from repro.routing.shortest_path import ShortestPathRouting
from repro.routing.static import StaticRouting

__all__ = [
    "ROUTING_STRATEGIES",
    "register_routing",
    "AdaptiveEtxRouting",
    "NetworkAgent",
    "RouteNotFound",
    "RoutingProtocol",
    "EtxParams",
    "build_connectivity_graph",
    "link_etx",
    "path_etx",
    "McExorMac",
    "PreExorMac",
    "ShortestPathRouting",
    "StaticRouting",
]
