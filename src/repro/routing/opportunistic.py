"""Shared machinery for the per-packet opportunistic MACs (preExOR, MCExOR).

Both schemes follow the same outline (Section II-B of the paper):

1. the current owner of a packet contends for the channel with normal DCF
   rules and transmits the packet with a priority-ordered forwarder list;
2. stations that decode the packet acknowledge it — the two schemes differ
   only in *how* the MAC ACKs are scheduled (sequential slots for preExOR,
   compressed SIFS-spaced slots with suppression for MCExOR);
3. after the acknowledgement window, the highest-priority station known to
   have received the packet becomes its new owner and forwards it (by
   handing it back to its network agent, which re-routes it from that
   node); stations that heard a higher-priority acknowledgement discard
   their copy;
4. the transmitter declares the attempt failed if it heard no
   acknowledgement at all, doubles its contention window and retries.

Because owners cache packets and contend independently, a source can send
packet *i+1* before a forwarder manages to send packet *i* — which is
exactly the re-ordering pathology Section II measures (26.6 % / 27.9 % of
TCP packets re-ordered) and RIPPLE is designed to eliminate.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.mac.base import ChannelAccess, MacLayer, RouteDecision
from repro.mac.frames import FrameKind, MacFrame, SubPacket, build_ack_frame, build_data_frame
from repro.mac.queues import DropTailQueue
from repro.mac.timing import MacTiming
from repro.packet import Packet
from repro.phy.params import PhyParams
from repro.phy.radio import Radio
from repro.sim.engine import Event, Simulator


@dataclass
class _TrackedReception:
    """Book-keeping for a data frame we received and may have to act on."""

    frame: MacFrame
    my_rank: int
    heard_higher_priority: bool = False
    ack_event: Optional[Event] = None
    decision_event: Optional[Event] = None
    acked_by_us: bool = False


class OpportunisticMac(MacLayer, abc.ABC):
    """Common source/forwarder logic for preExOR and MCExOR."""

    def __init__(
        self,
        sim: Simulator,
        address: int,
        radio: Radio,
        phy: PhyParams,
        timing: MacTiming,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(sim, address, radio, phy, timing, rng)
        self.queue = DropTailQueue(capacity=timing.queue_capacity)
        self.access = ChannelAccess(sim, radio, timing, self.rng, self._on_access_granted)
        self.add_busy_listener(self.access.notify_busy)
        self.add_idle_listener(self.access.notify_idle)
        self._mac_seq: Dict[int, int] = {}
        self._head: Optional[SubPacket] = None
        self._head_route: Optional[RouteDecision] = None
        self._current_frame: Optional[MacFrame] = None
        self._heard_ack_for_current: bool = False
        self._ack_window_event: Optional[Event] = None
        self._tracked: Dict[int, _TrackedReception] = {}

    # ------------------------------------------------------------------
    # Scheme-specific hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def ack_delay_ns(self, rank: int, n_forwarders: int) -> int:
        """Delay between the end of the data frame and this rank's ACK transmission."""

    @abc.abstractmethod
    def ack_window_ns(self, n_forwarders: int) -> int:
        """How long the transmitter (and receivers) wait before concluding the exchange."""

    @abc.abstractmethod
    def suppress_ack_on_overheard_ack(self) -> bool:
        """Whether an overheard ACK cancels our own pending ACK (MCExOR) or not (preExOR)."""

    # ------------------------------------------------------------------
    # Upper-layer interface
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, route: RouteDecision) -> bool:
        accepted = self.queue.push(packet, route)
        if accepted:
            self.stats.packets_enqueued += 1
            self._maybe_start()
        else:
            self.stats.packets_dropped_queue += 1
        return accepted

    @property
    def has_backlog(self) -> bool:
        return self._head is not None or not self.queue.is_empty

    # ------------------------------------------------------------------
    # Transmit path (owner side)
    # ------------------------------------------------------------------
    def _maybe_start(self) -> None:
        if self._current_frame is not None or self._ack_window_event is not None:
            return
        if self._head is None:
            if self.queue.is_empty:
                return
            packet, route = self.queue.pop()
            self._head = self._make_subpacket(packet)
            self._head_route = route
        self.access.request()

    def _make_subpacket(self, packet: Packet) -> SubPacket:
        seq = self._mac_seq.get(packet.dst, 0)
        self._mac_seq[packet.dst] = seq + 1
        return SubPacket(
            packet=packet, mac_seq=seq, bits=self.timing.subpacket_bits(packet.size_bytes)
        )

    def _on_access_granted(self) -> None:
        if self._head is None or self._head_route is None:
            return
        if self.radio.is_transmitting:
            self.access.request()
            return
        forwarders = self._head_route.forwarder_list
        frame = build_data_frame(
            self.timing,
            origin=self.address,
            final_dst=self._head_route.final_dst,
            transmitter=self.address,
            receiver=None,
            subpackets=[self._head],
            forwarder_list=forwarders,
        )
        self._current_frame = frame
        self._heard_ack_for_current = False
        self.stats.data_frames_sent += 1
        self.stats.subpackets_sent += 1
        self.radio.transmit(frame, frame.airtime_ns(self.phy))

    def on_transmission_complete(self, frame: MacFrame) -> None:
        if frame.kind is FrameKind.DATA and frame is self._current_frame:
            window = self.ack_window_ns(len(frame.forwarder_list))
            self._ack_window_event = self.sim.schedule(window, self._on_ack_window_closed)

    def _on_ack_window_closed(self) -> None:
        self._ack_window_event = None
        frame = self._current_frame
        self._current_frame = None
        if frame is None or self._head is None:
            self._maybe_start()
            return
        if self._heard_ack_for_current:
            # Ownership has moved to a better-placed station (or the packet
            # arrived): this node is done with the packet.
            self.access.record_success()
            self._head = None
            self._head_route = None
        else:
            self.stats.ack_timeouts += 1
            self.stats.retransmissions += 1
            self.access.record_failure()
            self._head.retries += 1
            if self._head.retries > self.timing.retry_limit:
                self.report_drop(self._head.packet)
                self._head = None
                self._head_route = None
                self.access.record_success()
        self._maybe_start()

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def on_frame_received(self, frame: MacFrame, errors) -> None:
        if frame.kind is FrameKind.DATA:
            self._handle_data(frame, errors)
        else:
            self._handle_ack(frame)

    def _handle_data(self, frame: MacFrame, errors) -> None:
        rank = frame.priority_rank(self.address)
        if rank is None:
            return  # not the destination and not on the forwarder list
        if not errors.subpacket_ok or not errors.subpacket_ok[0]:
            return  # payload corrupted: we cannot acknowledge or forward it
        self.stats.data_frames_received += 1
        tracked = _TrackedReception(frame=frame, my_rank=rank)
        self._tracked[frame.frame_id] = tracked
        n_forwarders = len(frame.forwarder_list)
        delay = self.ack_delay_ns(rank, n_forwarders)
        tracked.ack_event = self.sim.schedule(delay, self._transmit_ack, tracked)
        if rank == 0:
            # We are the destination: deliver immediately (out-of-order
            # arrivals go straight to the transport layer, which is what
            # makes TCP see re-ordering under these schemes).
            subpacket = frame.subpackets[0]
            self.deliver_up(subpacket.packet, frame.origin, subpacket.mac_seq)
        else:
            window = self.ack_window_ns(n_forwarders)
            tracked.decision_event = self.sim.schedule(window, self._decide_ownership, tracked)

    def _transmit_ack(self, tracked: _TrackedReception) -> None:
        tracked.ack_event = None
        if self.suppress_ack_on_overheard_ack():
            if tracked.heard_higher_priority:
                return
            if self.radio.is_channel_busy:
                # MCExOR suppresses on *detecting* an ACK transmission during
                # its waiting period; the compressed SIFS spacing means the
                # higher-priority ACK is usually still in the air at our slot,
                # so carrier detection (not a completed decode) is the signal.
                tracked.heard_higher_priority = True
                return
        if self.radio.is_transmitting:
            return
        frame = tracked.frame
        ack = build_ack_frame(
            self.timing,
            origin=self.address,
            final_dst=frame.transmitter,
            transmitter=self.address,
            receiver=frame.transmitter,
            acked_seqs=tuple(sp.mac_seq for sp in frame.subpackets),
            ack_for_frame=frame.frame_id,
        )
        tracked.acked_by_us = True
        self.stats.ack_frames_sent += 1
        self.radio.transmit(ack, ack.airtime_ns(self.phy))

    def _decide_ownership(self, tracked: _TrackedReception) -> None:
        tracked.decision_event = None
        self._tracked.pop(tracked.frame.frame_id, None)
        if tracked.heard_higher_priority:
            return  # a better-placed station has the packet: discard our copy
        # Take ownership: hand the packet back to the network layer, which
        # will re-route it from this node (ExOR-style per-hop progress).
        subpacket = tracked.frame.subpackets[0]
        self.stats.relayed_data_frames += 1
        if self._upper_layer is not None:
            self._upper_layer(subpacket.packet)

    def _handle_ack(self, frame: MacFrame) -> None:
        self.stats.ack_frames_received += 1
        # The transmitter of the original data frame learns the packet has moved on.
        if (
            self._current_frame is not None
            and frame.ack_for_frame == self._current_frame.frame_id
        ):
            self._heard_ack_for_current = True
        # Receivers of the data frame learn whether a higher-priority station has it.
        tracked = self._tracked.get(frame.ack_for_frame) if frame.ack_for_frame is not None else None
        if tracked is None:
            return
        acker_rank = tracked.frame.priority_rank(frame.origin)
        if acker_rank is not None and acker_rank < tracked.my_rank:
            tracked.heard_higher_priority = True
