"""The routing strategy registry: how a scenario turns routes into a protocol.

Each entry is a builder ``build(network, config, **params) ->
RoutingProtocol`` invoked by :func:`repro.experiments.runner.build_network`
after the nodes exist but before the MAC stack is installed.  ``params``
come from the scenario's :class:`~repro.spec.RoutingSpec`, so a strategy's
knobs are sweepable/JSON-addressable by construction.

Built-in strategies:

``static``
    The paper's predetermined route tables: looks up
    ``params["route_set"]`` (default: the config's ``route_set`` field) in
    the topology's named route sets.  This is what every ``scheme_label``
    alias expands to.
``shortest_path``
    Hop-count or ETX shortest paths computed over the live connectivity
    graph (``metric`` param, default ``"hops"``).
``adaptive_etx`` (alias ``etx``)
    Minimum-ETX routes re-estimated mid-run, with the predetermined table
    as fallback — the strategy mobile scenarios install.
"""

from __future__ import annotations

from repro.registry import Registry

#: The registry of routing strategy builders.
ROUTING_STRATEGIES = Registry("routing strategy")


def register_routing(name: str):
    """Decorator registering ``build(network, config, **params)`` under ``name``."""
    return ROUTING_STRATEGIES.register(name)


@register_routing("static")
def _build_static(network, config, *, route_set: str = None):
    """Predetermined routes from one of the topology's named route sets."""
    from repro.routing.static import StaticRouting

    chosen = route_set if route_set is not None else config.route_set
    topology = config.topology
    if chosen not in topology.route_sets:
        raise KeyError(f"topology {topology.name} has no route set {chosen!r}")
    return StaticRouting(topology.routes(chosen), max_forwarders=config.max_forwarders)


@register_routing("shortest_path")
def _build_shortest_path(network, config, *, metric: str = "hops"):
    """Shortest paths over the current connectivity graph (no fallback)."""
    from repro.routing.shortest_path import ShortestPathRouting

    return ShortestPathRouting(
        network.connectivity_graph(), metric=metric, max_forwarders=config.max_forwarders
    )


@register_routing("adaptive_etx")
def _build_adaptive_etx(network, config, *, route_set: str = None, fallback: bool = True):
    """Live-re-estimated minimum-ETX routes with a predetermined-table fallback.

    With ``fallback=True`` (default) the config's route set backs the ETX
    routes whenever the estimated graph has no path — the exact stack
    mobile scenarios have always installed.  A missing route set raises
    (a silently absent fallback would surface as inexplicable
    zero-throughput runs); pass ``fallback=False`` for topologies that
    genuinely have no predetermined tables.
    """
    from repro.routing.dynamic import AdaptiveEtxRouting

    backing = _build_static(network, config, route_set=route_set) if fallback else None
    return AdaptiveEtxRouting(
        network.connectivity_graph(),
        fallback=backing,
        max_forwarders=config.max_forwarders,
    )


ROUTING_STRATEGIES.alias("etx", "adaptive_etx")
