"""preExOR — the early version of ExOR with sequential per-packet MAC ACKs.

Section II-B of the paper: "after the source transmits a data packet,
forwarders send MAC ACKs sequentially to avoid collisions.  This is
achieved by having each forwarder defer for a period that is sufficient to
allow the destination and all the higher priority forwarders to transmit
their ACKs."

Timing (matching the per-packet overhead formula of Section II-C1,
``n (T_backoff + T_DATA + T_DIFS + T_phyhdr) + sum_1^n (T_ACK + T_SIFS +
T_phyhdr)``): the destination acknowledges a SIFS after the data frame,
and the rank-``i`` forwarder acknowledges after ``i`` further
(SIFS + ACK) periods, whether or not the earlier ACK slots were actually
used — unused slots simply burn air time (the "shadowed ACKs" of Fig. 2).
"""

from __future__ import annotations

from repro.routing.opportunistic import OpportunisticMac


class PreExorMac(OpportunisticMac):
    """Opportunistic forwarding with sequential (uncompressed) MAC ACK slots."""

    def ack_delay_ns(self, rank: int, n_forwarders: int) -> int:
        ack_airtime = self.timing.ack_airtime_ns(self.phy)
        return self.timing.sifs_ns + rank * (ack_airtime + self.timing.sifs_ns)

    def ack_window_ns(self, n_forwarders: int) -> int:
        """Wait out every ACK slot (destination + each forwarder) plus a slack slot."""
        ack_airtime = self.timing.ack_airtime_ns(self.phy)
        slots = n_forwarders + 1
        return (
            self.timing.sifs_ns
            + slots * (ack_airtime + self.timing.sifs_ns)
            + self.timing.slot_ns
        )

    def suppress_ack_on_overheard_ack(self) -> bool:
        return False  # every receiver uses its dedicated sequential slot
