"""MCExOR — opportunistic forwarding with compressed (suppressed) MAC ACKs.

Section II-B of the paper: "The MCExOR scheme uses a compressed
acknowledging mechanism, where a forwarder of rank i waits for i SIFS
intervals before transmitting a MAC ACK.  If it detects an ACK
transmission during its waiting period, it will not transmit its ACK
since the ACK reception indicates that a higher ranked forwarder has
received the packet."

Compared with preExOR this removes the unused sequential ACK slots (per
the Section II-C1 overhead formula, ``n (T_backoff + T_DATA + T_DIFS +
T_ACK + 2 T_phyhdr) + sum_1^n T_SIFS``): in the common case exactly one
ACK is transmitted per hop, at the cost of occasionally colliding ACKs
when two receivers cannot hear each other.
"""

from __future__ import annotations

from repro.routing.opportunistic import OpportunisticMac


class McExorMac(OpportunisticMac):
    """Opportunistic forwarding with compressed SIFS-spaced, suppressible ACKs."""

    def ack_delay_ns(self, rank: int, n_forwarders: int) -> int:
        # The destination (rank 0) answers after one SIFS like a normal 802.11
        # ACK; the rank-i forwarder defers i additional SIFS intervals.
        return (rank + 1) * self.timing.sifs_ns

    def ack_window_ns(self, n_forwarders: int) -> int:
        """All compressed slots plus one ACK airtime plus a slack slot."""
        ack_airtime = self.timing.ack_airtime_ns(self.phy)
        return (n_forwarders + 1) * self.timing.sifs_ns + ack_airtime + self.timing.slot_ns

    def suppress_ack_on_overheard_ack(self) -> bool:
        return True
