"""Routing-protocol interfaces.

A routing protocol answers two questions for a node holding a packet for
destination ``dst`` (Section II of the paper splits a routing protocol
into route discovery / packet forwarding / route maintenance; this
interface is the *route discovery* output that the forwarding schemes
consume):

* ``next_hop(node, dst)`` — the single intended receiver used by
  predetermined and shortest-path forwarding;
* ``forwarder_list(node, dst)`` — the priority-ordered relay candidates
  used by the opportunistic schemes (closest-to-destination first, the
  destination itself excluded because it is implicitly the highest
  priority).

RIPPLE deliberately works with *any* forwarder selection (Section
III-B1); the experiments exercise it both with the paper's predetermined
ROUTE0/1/2 paths and with ETX-selected paths.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple

from repro.mac.base import RouteDecision


class RouteNotFound(RuntimeError):
    """Raised when a protocol has no route from a node to a destination."""


class RoutingProtocol(abc.ABC):
    """Answers next-hop / forwarder-list queries for every node in a scenario."""

    #: Paper default: at most 5 forwarders on a path (Section III-B4).
    max_forwarders: int = 5

    @abc.abstractmethod
    def path(self, src: int, dst: int) -> List[int]:
        """Full node sequence from ``src`` to ``dst`` inclusive."""

    def next_hop(self, node: int, dst: int) -> int:
        """The next node after ``node`` on the path towards ``dst``."""
        route = self.path(node, dst)
        if len(route) < 2:
            raise RouteNotFound(f"no next hop from {node} towards {dst}")
        return route[1]

    def forwarder_list(self, node: int, dst: int) -> Tuple[int, ...]:
        """Priority-ordered forwarders between ``node`` and ``dst``.

        The returned tuple excludes both end points and is ordered with the
        highest-priority forwarder (the one nearest the destination) first,
        matching the implicit MAC-header ordering of Section III-B2.  The
        list is truncated to :attr:`max_forwarders`.
        """
        route = self.path(node, dst)
        intermediate = route[1:-1]
        prioritised = list(reversed(intermediate))
        return tuple(prioritised[: self.max_forwarders])

    def update_graph(self, graph) -> None:
        """Accept a freshly re-estimated connectivity graph (mobility hook).

        Called periodically by the mobility subsystem after it rebuilds the
        ETX graph from current positions.  Protocols with predetermined
        routes (the paper's ROUTE0/1/2 tables) ignore it; graph-driven
        protocols swap in the new graph and drop cached routes so packets
        routed from now on see the new link state.
        """

    def route_decision(self, node: int, dst: int, opportunistic: bool) -> RouteDecision:
        """Package the routing answer for the MAC."""
        if opportunistic:
            return RouteDecision(
                final_dst=dst,
                next_hop=None,
                forwarder_list=self.forwarder_list(node, dst),
            )
        return RouteDecision(final_dst=dst, next_hop=self.next_hop(node, dst))
