"""Predetermined (operator-specified) routes — the paper's PRR / ROUTE0/1/2.

Table II of the paper lists explicit paths per flow (e.g. flow 1 under
ROUTE0 follows 0 → 1 → 2 → 3).  :class:`StaticRouting` stores such paths
and answers next-hop / forwarder-list queries from any node *on* the
path.  Reverse paths (needed by TCP ACKs and RIPPLE's two-way operation)
are derived automatically unless explicitly overridden.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.routing.base import RouteNotFound, RoutingProtocol


class StaticRouting(RoutingProtocol):
    """Routing from an explicit table of end-to-end paths."""

    def __init__(
        self,
        paths: Mapping[Tuple[int, int], Sequence[int]],
        max_forwarders: int = 5,
        add_reverse: bool = True,
    ) -> None:
        self.max_forwarders = max_forwarders
        self._paths: Dict[Tuple[int, int], List[int]] = {}
        for (src, dst), route in paths.items():
            route = list(route)
            self._validate(src, dst, route)
            self._paths[(src, dst)] = route
        if add_reverse:
            for (src, dst), route in list(self._paths.items()):
                reverse_key = (dst, src)
                if reverse_key not in self._paths:
                    self._paths[reverse_key] = list(reversed(route))

    @staticmethod
    def _validate(src: int, dst: int, route: List[int]) -> None:
        if len(route) < 2:
            raise ValueError(f"path for ({src}, {dst}) must have at least two nodes")
        if route[0] != src or route[-1] != dst:
            raise ValueError(
                f"path for ({src}, {dst}) must start at {src} and end at {dst}, got {route}"
            )
        if len(set(route)) != len(route):
            raise ValueError(f"path for ({src}, {dst}) revisits a node: {route}")

    # ------------------------------------------------------------------
    # RoutingProtocol interface
    # ------------------------------------------------------------------
    def path(self, src: int, dst: int) -> List[int]:
        route = self._paths.get((src, dst))
        if route is not None:
            return list(route)
        # A node in the middle of a stored path can still forward along it.
        for (stored_src, stored_dst), stored in self._paths.items():
            if stored_dst == dst and src in stored:
                index = stored.index(src)
                return list(stored[index:])
        raise RouteNotFound(f"no static route from {src} to {dst}")

    def pairs(self) -> Iterable[Tuple[int, int]]:
        """All (src, dst) pairs with an explicit (non-derived) path."""
        return list(self._paths.keys())

    def add_path(self, route: Sequence[int], add_reverse: bool = True) -> None:
        """Register an additional path after construction."""
        route = list(route)
        src, dst = route[0], route[-1]
        self._validate(src, dst, route)
        self._paths[(src, dst)] = route
        if add_reverse and (dst, src) not in self._paths:
            self._paths[(dst, src)] = list(reversed(route))
