"""Per-node network layer.

The :class:`NetworkAgent` sits between the transport layer and the MAC of
one node.  Its job is intentionally thin — the interesting behaviour of
every scheme in the paper lives in the MAC/forwarding layer — but it is
the single place where routing decisions are attached to packets:

* packets originated locally (or, for hop-by-hop schemes, packets being
  forwarded) are stamped with a :class:`~repro.mac.base.RouteDecision`
  obtained from the routing protocol and pushed into the MAC;
* packets delivered by the MAC are either handed to the local transport
  layer (when this node is the destination) or forwarded.

For opportunistic MACs (RIPPLE) relaying happens entirely inside the MAC
and the agent only ever sees packets addressed to this node; for
preExOR / MCExOR the forwarder that takes ownership of a packet hands it
back to the agent, which re-routes it from this node exactly as ExOR's
per-hop operation does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.mac.base import MacLayer, RouteDecision
from repro.packet import Packet
from repro.routing.base import RouteNotFound, RoutingProtocol


@dataclass
class NetworkStats:
    """Counters for one node's network layer."""

    sent: int = 0
    forwarded: int = 0
    delivered: int = 0
    no_route: int = 0


class NetworkAgent:
    """Network layer instance for one node."""

    def __init__(
        self,
        node_id: int,
        protocol: RoutingProtocol,
        mac: MacLayer,
        opportunistic: bool = False,
    ) -> None:
        self.node_id = node_id
        self.protocol = protocol
        self.mac = mac
        self.opportunistic = opportunistic
        self.stats = NetworkStats()
        self._local_delivery: Optional[Callable[[Packet], None]] = None
        mac.set_upper_layer(self.on_mac_receive)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_local_delivery(self, callback: Callable[[Packet], None]) -> None:
        """Register the transport-layer receive callback."""
        self._local_delivery = callback

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Route and enqueue a packet originated (or forwarded) by this node."""
        if packet.dst == self.node_id:
            self._deliver_local(packet)
            return True
        try:
            route = self.protocol.route_decision(self.node_id, packet.dst, self.opportunistic)
        except RouteNotFound:
            self.stats.no_route += 1
            return False
        self.stats.sent += 1
        return self.mac.enqueue(packet, route)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def on_mac_receive(self, packet: Packet) -> None:
        """Callback from the MAC: a packet survived the channel and reached us."""
        if packet.dst == self.node_id:
            self._deliver_local(packet)
            return
        self.stats.forwarded += 1
        self.send(packet)

    def _deliver_local(self, packet: Packet) -> None:
        self.stats.delivered += 1
        if self._local_delivery is not None:
            self._local_delivery(packet)
