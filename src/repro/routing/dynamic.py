"""Route maintenance under mobility: live ETX routes with a static fallback.

Predetermined routes (the paper's ROUTE0/1/2 tables) assume the topology
they were written for; once nodes move, a path can silently rot.
:class:`AdaptiveEtxRouting` is the route-maintenance half the paper
leaves to "any routing protocol": it computes minimum-ETX paths over the
*current* connectivity graph and, each time the mobility subsystem
re-estimates links (:meth:`update_graph`), drops its cached routes so
subsequent packets — and the forwarder lists the opportunistic MACs
derive from them — follow the new link state.

A fallback protocol (typically the scenario's :class:`StaticRouting`
table) answers for node pairs the current graph cannot connect, so a
momentary partition degrades to the predetermined path instead of a
routing failure.
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx

from repro.routing.base import RouteNotFound, RoutingProtocol
from repro.routing.shortest_path import Metric, ShortestPathRouting


class AdaptiveEtxRouting(ShortestPathRouting):
    """Minimum-ETX routes over a connectivity graph that changes mid-run.

    All the Dijkstra/route-cache machinery is inherited from
    :class:`ShortestPathRouting`; this class adds the static fallback and
    an update counter for diagnostics.
    """

    def __init__(
        self,
        graph: nx.Graph,
        fallback: Optional[RoutingProtocol] = None,
        metric: Metric = "etx",
        max_forwarders: int = 5,
    ) -> None:
        super().__init__(graph, metric=metric, max_forwarders=max_forwarders)
        self.fallback = fallback
        #: Number of re-estimated graphs accepted so far (tests/diagnostics).
        self.updates = 0

    def path(self, src: int, dst: int) -> List[int]:
        try:
            return super().path(src, dst)
        except RouteNotFound:
            if self.fallback is not None:
                return self.fallback.path(src, dst)
            raise

    def update_graph(self, graph: nx.Graph) -> None:
        """Adopt a freshly re-estimated connectivity graph and forget old routes."""
        super().update_graph(graph)
        self.updates += 1
