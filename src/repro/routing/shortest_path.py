"""Shortest-path routing (SPR) over the connectivity graph.

Two metrics are supported:

* ``"hops"`` — minimum hop count.  With the paper's Fig. 1 layout the
  direct (poor) 0→3 link exists, so hop-count SPR picks the one-hop route;
  this is the "S" scheme in Figs. 3 and 4.
* ``"etx"`` — minimum expected transmission count, which is what ExOR /
  MORE style forwarder selection uses; this yields the good multi-hop
  routes and is the default for auto-selected forwarder lists.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Literal

import networkx as nx

from repro.routing.base import RouteNotFound, RoutingProtocol

Metric = Literal["hops", "etx"]


class ShortestPathRouting(RoutingProtocol):
    """Dijkstra routes over a connectivity graph built from the PHY."""

    def __init__(self, graph: nx.Graph, metric: Metric = "hops", max_forwarders: int = 5) -> None:
        if metric not in ("hops", "etx"):
            raise ValueError(f"unknown metric {metric!r}")
        self.graph = graph
        self.metric = metric
        self.max_forwarders = max_forwarders
        self._cache: dict[tuple[int, int], List[int]] = {}

    def path(self, src: int, dst: int) -> List[int]:
        key = (src, dst)
        cached = self._cache.get(key)
        if cached is not None:
            return list(cached)
        if src not in self.graph or dst not in self.graph:
            raise RouteNotFound(f"node {src} or {dst} not in connectivity graph")
        try:
            route = nx.shortest_path(self.graph, src, dst, weight=self.metric)
        except nx.NetworkXNoPath as exc:
            raise RouteNotFound(f"no path from {src} to {dst}") from exc
        self._cache[key] = list(route)
        return list(route)

    def invalidate(self) -> None:
        """Drop cached routes (after the graph is modified)."""
        self._cache.clear()

    def update_graph(self, graph: nx.Graph) -> None:
        """Swap in a re-estimated connectivity graph (mobility hook)."""
        self.graph = graph
        self.invalidate()
