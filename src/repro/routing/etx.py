"""ETX — expected transmission count link metric (De Couto et al. [14]).

ExOR and MORE select and prioritise forwarders by ETX towards the
destination; the paper keeps forwarder selection orthogonal to RIPPLE but
uses ETX-style selection when no predetermined route is given.  Here ETX
for a link is ``1 / (p_f * p_r)`` where ``p_f`` and ``p_r`` are the
forward and reverse delivery probabilities; with our symmetric shadowing
channel ``p_f == p_r``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import networkx as nx

from repro.phy.channel import WirelessChannel


@dataclass(frozen=True)
class EtxParams:
    """Knobs for graph construction from the physical layer."""

    #: Links with delivery probability below this are not usable at all.
    min_delivery_probability: float = 0.05
    #: Frame size (bits) at which delivery probability is evaluated.
    probe_bits: int = 8000


def link_etx(delivery_probability: float, reverse_probability: Optional[float] = None) -> float:
    """ETX of a link: ``1 / (p_f * p_r)`` (De Couto et al.).

    ``delivery_probability`` is the forward delivery probability ``p_f``.
    When ``reverse_probability`` (``p_r``) is omitted the link is treated
    as symmetric (``p_r == p_f``) — the stationary-shadowing case this
    module was originally written for.  Mobility makes asymmetry real
    (the two directions can be probed at different times/positions), so
    callers with direction-resolved estimates pass both.
    """
    p_forward = delivery_probability
    p_reverse = delivery_probability if reverse_probability is None else reverse_probability
    if p_forward <= 0.0 or p_reverse <= 0.0:
        return float("inf")
    return 1.0 / (p_forward * p_reverse)


def build_connectivity_graph(
    channel: WirelessChannel, params: EtxParams | None = None
) -> nx.Graph:
    """Build a graph whose edges carry delivery probability, ETX and hop weights.

    The closed-form per-link delivery probability (shadowing outage times
    BER frame success) comes from the channel; the per-frame simulation
    never consults this graph — it is only route discovery, mirroring how
    ETX probes would be used in a deployment.
    """
    params = params or EtxParams()
    graph = nx.Graph()
    radios = channel.radios
    for radio in radios:
        graph.add_node(radio.node_id, position=radio.position)
    for i, a in enumerate(radios):
        for b in radios[i + 1 :]:
            probability = channel.link_delivery_probability(a, b, params.probe_bits)
            if probability < params.min_delivery_probability:
                continue
            graph.add_edge(
                a.node_id,
                b.node_id,
                delivery_probability=probability,
                etx=link_etx(probability),
                hops=1.0,
                distance=channel.distance(a, b),
            )
    return graph


def path_etx(graph: nx.Graph, path: list[int]) -> float:
    """Total ETX of a node sequence in ``graph`` (inf if an edge is missing)."""
    total = 0.0
    for a, b in zip(path, path[1:]):
        if not graph.has_edge(a, b):
            return float("inf")
        total += graph.edges[a, b]["etx"]
    return total
