"""The Wigle topology of Fig. 9 (real AP locations, small network diameter).

The paper takes the connected component of a Wigle-database AP map (Fig. 3
of Mishra et al. [22]) — eight access points in a few city blocks — and
adds two stations S and R whose traffic acts as hidden interference.  The
database extract itself is not published, so this module reconstructs a
placement with the same structural properties the evaluation relies on:

* small diameter — the eight randomly picked station pairs the paper
  measures traverse only 1-3 hops;
* an irregular, clustered layout (not a line or grid);
* the S → R flow is hidden from most flow sources but interferes at their
  destinations/relays.

The flows and their relay paths mirror the x-axis labels of Fig. 10
(e.g. flow "1-4-6-8" goes from station 1 to station 8 via 4 and 6).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.topology.spec import FlowSpec, TopologySpec

#: Station S and R identifiers (the hidden-traffic pair added by the paper).
STATION_S = 9
STATION_R = 10


def wigle_topology(include_hidden: bool = True) -> TopologySpec:
    """Reconstruction of the Fig. 9 Wigle topology (8 APs + hidden pair S, R)."""
    positions: Dict[int, Tuple[float, float]] = {
        1: (0.0, 0.0),
        2: (95.0, 70.0),
        3: (60.0, 180.0),
        4: (150.0, 120.0),
        5: (250.0, 60.0),
        6: (260.0, 175.0),
        7: (350.0, 120.0),
        8: (370.0, 230.0),
    }
    # The paper's eight measured flows, labelled by their relay path
    # (Fig. 10 x-axis style): 1-3 hops each because of the small diameter.
    flow_paths: List[List[int]] = [
        [1, 2],                # 1 hop
        [3, 4],                # 1 hop
        [2, 4, 6],             # 2 hops
        [8, 7, 5],             # 2 hops (the paper's '8-7-5' example)
        [1, 4, 6],             # 2 hops
        [5, 6, 8],             # 2 hops
        [1, 4, 6, 8],          # 3 hops (the paper's '1-4-6-8' example)
        [3, 4, 7],             # 2 hops
    ]
    flows: List[FlowSpec] = []
    routes: Dict[Tuple[int, int], List[int]] = {}
    for index, path in enumerate(flow_paths):
        src, dst = path[0], path[-1]
        label = "-".join(str(node) for node in path)
        flows.append(FlowSpec(flow_id=index + 1, src=src, dst=dst, kind="tcp", label=label))
        routes[(src, dst)] = list(path)
    if include_hidden:
        # S and R sit off to one side: S cannot carrier-sense the left-hand
        # sources (>650 m away) but its transmissions are audible around the
        # right-hand relays and destinations.
        positions[STATION_S] = (700.0, 40.0)
        positions[STATION_R] = (610.0, 120.0)
        flows.append(
            FlowSpec(flow_id=100, src=STATION_S, dst=STATION_R, kind="tcp", label="hidden S->R")
        )
        routes[(STATION_S, STATION_R)] = [STATION_S, STATION_R]
    return TopologySpec(
        name="wigle",
        positions=positions,
        flows=flows,
        route_sets={"ROUTE0": routes},
        description="Wigle AP topology of Fig. 9 (reconstructed) with hidden pair S, R.",
    ).validate()


def wigle_flow_paths() -> List[str]:
    """The flow labels in the order Fig. 10 plots them."""
    return [flow.label for flow in wigle_topology(include_hidden=False).flows]
