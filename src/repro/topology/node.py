"""A wireless station: radio + MAC + network agent + transport + applications."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass
class Node:
    """Container wiring together one station's protocol stack.

    The concrete layer objects are created by
    :class:`~repro.topology.network.WirelessNetwork`; this class only holds
    them together so applications and experiments have one handle per
    station.
    """

    node_id: int
    position: Tuple[float, float]
    radio: Any = None
    mac: Any = None
    network: Any = None
    transport: Any = None
    applications: List[Any] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.position = (float(self.position[0]), float(self.position[1]))

    def move_to(self, position: Tuple[float, float]) -> None:
        """Relocate the station, keeping its radio's geometry in sync."""
        self.position = (float(position[0]), float(position[1]))
        if self.radio is not None:
            self.radio.move_to(self.position)

    def distance_to(self, other: "Node") -> float:
        """Euclidean distance to another node in metres."""
        dx = self.position[0] - other.position[0]
        dy = self.position[1] - other.position[1]
        return (dx * dx + dy * dy) ** 0.5

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.node_id} @ {self.position})"
