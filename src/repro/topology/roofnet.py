"""A Roofnet-like large topology (Fig. 11 / Fig. 12 of the paper).

The paper derives its largest topology from the MIT Roofnet GPS coordinate
file.  That file is not bundled here, so this module generates a synthetic
layout with the properties the evaluation actually uses:

* a few dozen rooftop nodes spread over roughly 1 km x 0.5 km with locally
  clustered density (Roofnet's nodes concentrate around a handful of
  blocks);
* enough multi-hop structure that station pairs 3, 4 and 5 relay hops
  apart exist (the paper "focuses on transmissions between stations that
  are 4 or 5 hops apart", plus 3-hop examples in Fig. 12);
* for each measured pair, two nearby stations can be designated as hidden
  terminals.

The layout is deterministic for a given seed, and helpers select the
k-hop source/destination pairs from the connectivity graph exactly the way
the experiments need them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.topology.spec import FlowSpec, TopologySpec

#: Cluster centres (metres) roughly mimicking Roofnet's block structure.
_CLUSTER_CENTRES: List[Tuple[float, float]] = [
    (100.0, 140.0),
    (300.0, 260.0),
    (510.0, 170.0),
    (720.0, 300.0),
    (930.0, 200.0),
    (620.0, 460.0),
    (340.0, 480.0),
]
_NODES_PER_CLUSTER = 5
_CLUSTER_SPREAD_M = 60.0
#: A few isolated rooftops that bridge the clusters and keep the graph connected.
_BRIDGE_NODES: List[Tuple[float, float]] = [(210.0, 360.0), (470.0, 330.0), (820.0, 400.0)]


def roofnet_topology(seed: int = 7) -> TopologySpec:
    """Generate the synthetic Roofnet-like layout (38 nodes, ~1.5 km x 1 km)."""
    # Layout generation draws only from this function's own ``seed`` parameter,
    # which is part of the topology's identity (the generated positions are what
    # the sweep cache hashes).  Routing it through a scenario's RandomStreams
    # would change every committed Roofnet layout and couple the placement to
    # the *simulation* seed, which must stay free to vary per replication.
    # repro: allow[no-unkeyed-rng] seed-scoped layout generation, not simulation randomness
    rng = np.random.default_rng(seed)
    positions: Dict[int, Tuple[float, float]] = {}
    node_id = 0
    for centre_x, centre_y in _CLUSTER_CENTRES:
        for _ in range(_NODES_PER_CLUSTER):
            x = float(centre_x + rng.normal(0.0, _CLUSTER_SPREAD_M))
            y = float(centre_y + rng.normal(0.0, _CLUSTER_SPREAD_M))
            positions[node_id] = (x, y)
            node_id += 1
    for x, y in _BRIDGE_NODES:
        positions[node_id] = (x, y)
        node_id += 1
    return TopologySpec(
        name="roofnet",
        positions=positions,
        flows=[],
        route_sets={},
        description="Synthetic Roofnet-like topology (Fig. 11 substitute).",
    ).validate()


def connectivity_from_positions(
    positions: Dict[int, Tuple[float, float]], good_link_m: float = 160.0
) -> nx.Graph:
    """Geometric connectivity graph: edges between nodes within ``good_link_m``.

    This is only used to *choose* the measured pairs and their relay paths;
    the simulation itself uses the full shadowing channel.
    """
    graph = nx.Graph()
    for node, position in positions.items():
        graph.add_node(node, position=position)
    nodes = sorted(positions)
    for i, a in enumerate(nodes):
        ax, ay = positions[a]
        for b in nodes[i + 1 :]:
            bx, by = positions[b]
            distance = ((ax - bx) ** 2 + (ay - by) ** 2) ** 0.5
            if distance <= good_link_m:
                graph.add_edge(a, b, distance=distance)
    return graph


def pick_khop_pairs(
    spec: TopologySpec,
    hop_counts: Tuple[int, ...] = (3, 3, 4, 4, 5, 5),
    good_link_m: float = 160.0,
) -> List[List[int]]:
    """Pick one shortest path per requested hop count (Fig. 12's 3(1), 3(2), ... labels).

    Pairs are chosen deterministically: for each requested hop count the
    lexicographically smallest (src, dst) pair at exactly that distance is
    used, skipping pairs already taken.
    """
    graph = connectivity_from_positions(spec.positions, good_link_m)
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    used: set[Tuple[int, int]] = set()
    chosen: List[List[int]] = []
    for hops in hop_counts:
        candidate: Optional[Tuple[int, int]] = None
        for src in sorted(lengths):
            for dst in sorted(lengths[src]):
                if src >= dst or lengths[src][dst] != hops:
                    continue
                if (src, dst) in used:
                    continue
                candidate = (src, dst)
                break
            if candidate:
                break
        if candidate is None:
            raise RuntimeError(f"no {hops}-hop pair exists in the generated Roofnet layout")
        used.add(candidate)
        chosen.append(nx.shortest_path(graph, candidate[0], candidate[1]))
    return chosen


def roofnet_scenario(
    hop_counts: Tuple[int, ...] = (3, 3, 4, 4, 5, 5),
    include_hidden: bool = False,
    seed: int = 7,
) -> TopologySpec:
    """The Fig. 12 measurement scenario: k-hop pairs, optionally with hidden terminals.

    Each measured flow gets a predetermined route along its shortest path;
    when ``include_hidden`` is set, two stations near (but not on) each
    path are turned into a saturating one-hop UDP pair, mirroring "two more
    nearby stations are selected to act as the hidden terminals".
    """
    spec = roofnet_topology(seed=seed)
    paths = pick_khop_pairs(spec, hop_counts)
    flows: List[FlowSpec] = []
    routes: Dict[Tuple[int, int], List[int]] = {}
    counts: Dict[int, int] = {}
    for index, path in enumerate(paths):
        hops = len(path) - 1
        counts[hops] = counts.get(hops, 0) + 1
        label = f"{hops}({counts[hops]})"
        src, dst = path[0], path[-1]
        flows.append(FlowSpec(flow_id=index + 1, src=src, dst=dst, kind="tcp", label=label))
        routes[(src, dst)] = list(path)
    if include_hidden:
        on_paths = {node for path in paths for node in path}
        spare = [node for node in spec.node_ids if node not in on_paths]
        graph = connectivity_from_positions(spec.positions)
        hidden_id = 200
        for index, path in enumerate(paths):
            destination = path[-1]
            # Hidden source: a spare node near the destination but at least two
            # (geometric) hops from the flow's source, so the source cannot hear it.
            candidates = sorted(
                spare,
                key=lambda node: nx.shortest_path_length(graph, node, destination)
                if nx.has_path(graph, node, destination)
                else 99,
            )
            if len(candidates) < 2:
                break
            hidden_src, hidden_dst = candidates[0], candidates[1]
            spare = [node for node in spare if node not in (hidden_src, hidden_dst)]
            flows.append(
                FlowSpec(
                    flow_id=hidden_id + index,
                    src=hidden_src,
                    dst=hidden_dst,
                    kind="udp-saturating",
                    label=f"hidden-{index + 1}",
                )
            )
            if nx.has_path(graph, hidden_src, hidden_dst):
                routes[(hidden_src, hidden_dst)] = nx.shortest_path(graph, hidden_src, hidden_dst)
            else:
                routes[(hidden_src, hidden_dst)] = [hidden_src, hidden_dst]
    spec.flows = flows
    spec.route_sets = {"ROUTE0": routes}
    return spec.validate()
