"""Topology specifications: node placements plus the flows/routes defined on them.

The paper does not publish coordinates for its figures, only the structural
properties that matter (which links are good, which end points can barely
hear each other, who is hidden from whom).  Each topology module in this
package therefore *constructs* a placement that satisfies those properties
under the shadowing model of Section IV, and records the paper's flow and
route definitions on top of it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serialization import require_known_keys


class TopologyError(ValueError):
    """Raised when a topology specification is structurally invalid."""


@dataclass(frozen=True)
class FlowSpec:
    """One application flow in a scenario."""

    flow_id: int
    src: int
    dst: int
    kind: str = "tcp"  # "tcp" | "udp-saturating" | "voip" | "web"
    label: str = ""
    #: Per-flow congestion-control override (a TRANSPORT_SCHEMES name);
    #: None defers to the scenario-level TransportSpec (default: reno).
    transport: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (used by the sweep cache)."""
        data: Dict[str, object] = {
            "flow_id": self.flow_id,
            "src": self.src,
            "dst": self.dst,
            "kind": self.kind,
            "label": self.label,
        }
        if self.transport is not None:
            # Emitted only when set, so pre-existing topology digests
            # (which never carried the key) are unchanged.
            data["transport"] = self.transport
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FlowSpec":
        require_known_keys(
            data, ("flow_id", "src", "dst", "kind", "label", "transport"), cls.__name__
        )
        transport = data.get("transport")
        return cls(
            flow_id=int(data["flow_id"]),
            src=int(data["src"]),
            dst=int(data["dst"]),
            kind=str(data["kind"]),
            label=str(data.get("label", "")),
            transport=None if transport is None else str(transport),
        )


@dataclass
class TopologySpec:
    """A named node placement with flows and (optionally) predetermined routes."""

    name: str
    positions: Dict[int, Tuple[float, float]]
    flows: List[FlowSpec] = field(default_factory=list)
    #: Named route tables: route_sets["ROUTE0"][(src, dst)] = [src, ..., dst]
    route_sets: Dict[str, Dict[Tuple[int, int], List[int]]] = field(default_factory=dict)
    description: str = ""

    @property
    def node_ids(self) -> List[int]:
        return sorted(self.positions)

    def routes(self, route_set: str) -> Dict[Tuple[int, int], List[int]]:
        """Look up one of the named route tables (raises KeyError if absent)."""
        return self.route_sets[route_set]

    def flow(self, flow_id: int) -> FlowSpec:
        for flow in self.flows:
            if flow.flow_id == flow_id:
                return flow
        raise KeyError(f"no flow {flow_id} in topology {self.name}")

    def validate(self) -> "TopologySpec":
        """Check structural invariants; returns self so loaders can chain it.

        Raises :class:`TopologyError` on: an empty node set, non-finite or
        malformed positions, duplicate flow ids, flows or routes that
        reference unknown nodes, and routes that do not join their key's
        end points.  Topology loaders call this before handing a spec to
        the experiment harness, so a bad generated/parsed layout fails
        loudly at load time instead of as a mid-run ``KeyError``.
        """
        if not self.positions:
            raise TopologyError(f"topology {self.name!r} has no nodes")
        for node_id, position in self.positions.items():
            try:
                x, y = float(position[0]), float(position[1])
            except (TypeError, ValueError, IndexError) as exc:
                raise TopologyError(
                    f"topology {self.name!r}: node {node_id} position {position!r} is malformed"
                ) from exc
            if not (math.isfinite(x) and math.isfinite(y)):
                raise TopologyError(
                    f"topology {self.name!r}: node {node_id} position {position!r} is not finite"
                )
        seen_flow_ids: set = set()
        for flow in self.flows:
            if flow.flow_id in seen_flow_ids:
                raise TopologyError(
                    f"topology {self.name!r}: duplicate flow id {flow.flow_id}"
                )
            seen_flow_ids.add(flow.flow_id)
            for endpoint in (flow.src, flow.dst):
                if endpoint not in self.positions:
                    raise TopologyError(
                        f"topology {self.name!r}: flow {flow.flow_id} references "
                        f"unknown node {endpoint}"
                    )
        for set_name, routes in self.route_sets.items():
            for (src, dst), path in routes.items():
                if len(path) < 2 or path[0] != src or path[-1] != dst:
                    raise TopologyError(
                        f"topology {self.name!r}: route {set_name}[{src}-{dst}] = {path} "
                        f"does not join its end points"
                    )
                for hop in path:
                    if hop not in self.positions:
                        raise TopologyError(
                            f"topology {self.name!r}: route {set_name}[{src}-{dst}] "
                            f"passes through unknown node {hop}"
                        )
        return self

    # ------------------------------------------------------------------
    # Serialization (sweep cache / cross-process result exchange)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation.

        Dict keys become strings (``positions`` by node id, routes by an
        ``"src-dst"`` pair) so the result round-trips through ``json``.
        """
        return {
            "name": self.name,
            "positions": {
                str(node_id): [float(x), float(y)]
                for node_id, (x, y) in sorted(self.positions.items())
            },
            "flows": [flow.to_dict() for flow in self.flows],
            "route_sets": {
                set_name: {
                    f"{src}-{dst}": list(path)
                    for (src, dst), path in sorted(routes.items())
                }
                for set_name, routes in sorted(self.route_sets.items())
            },
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TopologySpec":
        require_known_keys(
            data, ("name", "positions", "flows", "route_sets", "description"), cls.__name__
        )
        positions = {
            int(node_id): (float(xy[0]), float(xy[1]))
            for node_id, xy in data["positions"].items()
        }
        route_sets = {}
        for set_name, routes in data.get("route_sets", {}).items():
            table = {}
            for key, path in routes.items():
                src, _, dst = key.partition("-")
                table[(int(src), int(dst))] = [int(hop) for hop in path]
            route_sets[set_name] = table
        return cls(
            name=str(data["name"]),
            positions=positions,
            flows=[FlowSpec.from_dict(flow) for flow in data.get("flows", [])],
            route_sets=route_sets,
            description=str(data.get("description", "")),
        )
