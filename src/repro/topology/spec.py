"""Topology specifications: node placements plus the flows/routes defined on them.

The paper does not publish coordinates for its figures, only the structural
properties that matter (which links are good, which end points can barely
hear each other, who is hidden from whom).  Each topology module in this
package therefore *constructs* a placement that satisfies those properties
under the shadowing model of Section IV, and records the paper's flow and
route definitions on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class FlowSpec:
    """One application flow in a scenario."""

    flow_id: int
    src: int
    dst: int
    kind: str = "tcp"  # "tcp" | "udp-saturating" | "voip" | "web"
    label: str = ""


@dataclass
class TopologySpec:
    """A named node placement with flows and (optionally) predetermined routes."""

    name: str
    positions: Dict[int, Tuple[float, float]]
    flows: List[FlowSpec] = field(default_factory=list)
    #: Named route tables: route_sets["ROUTE0"][(src, dst)] = [src, ..., dst]
    route_sets: Dict[str, Dict[Tuple[int, int], List[int]]] = field(default_factory=dict)
    description: str = ""

    @property
    def node_ids(self) -> List[int]:
        return sorted(self.positions)

    def routes(self, route_set: str) -> Dict[Tuple[int, int], List[int]]:
        """Look up one of the named route tables (raises KeyError if absent)."""
        return self.route_sets[route_set]

    def flow(self, flow_id: int) -> FlowSpec:
        for flow in self.flows:
            if flow.flow_id == flow_id:
                return flow
        raise KeyError(f"no flow {flow_id} in topology {self.name}")
