"""Scenario containers and the paper's topologies."""

from repro.topology.network import SCHEMES, SchemeInfo, WirelessNetwork
from repro.topology.node import Node
from repro.topology.registry import TOPOLOGIES, build_topology, register_topology
from repro.topology.roofnet import roofnet_scenario, roofnet_topology
from repro.topology.spec import FlowSpec, TopologyError, TopologySpec
from repro.topology.standard import (
    fig1_topology,
    fig5a_topology,
    fig5b_topology,
    line_topology,
    voip_topology,
    web_topology,
)
from repro.topology.wigle import wigle_topology

__all__ = [
    "TOPOLOGIES",
    "build_topology",
    "register_topology",
    "voip_topology",
    "web_topology",
    "SCHEMES",
    "SchemeInfo",
    "WirelessNetwork",
    "Node",
    "FlowSpec",
    "TopologyError",
    "TopologySpec",
    "fig1_topology",
    "fig5a_topology",
    "fig5b_topology",
    "line_topology",
    "wigle_topology",
    "roofnet_topology",
    "roofnet_scenario",
]
