"""Trace-file topologies: load node placements (and flows/routes) from disk.

External datasets — GPS surveys, testbed inventories, other simulators'
scenario dumps — become runnable topologies through the ``trace:`` prefix
entry of :data:`repro.topology.registry.TOPOLOGIES`::

    python -m repro.experiments run --set topology=trace:site.csv traffic=poisson

Two on-disk formats are accepted, chosen by file extension:

``.csv``
    One record per line, first field is the record type::

        # comment lines and blank lines are ignored
        node,<id>,<x_m>,<y_m>
        flow,<flow_id>,<src>,<dst>[,<kind>]
        route,<route_set>,<src>,<dst>,<hop0>;<hop1>;...;<hopN>

``.json``
    A :meth:`~repro.topology.spec.TopologySpec.from_dict` document (the
    exact shape ``TopologySpec.to_dict`` writes), with everything beyond
    ``positions`` optional.

Validation is deliberately loud: a malformed CSV record raises a
:class:`~repro.topology.spec.TopologyError` naming the file, line number
and offending field, and every loaded spec passes through
:meth:`TopologySpec.validate` before it is handed to the harness.

When the file defines flows but no routes, a ``ROUTE0`` table is derived
from geometric shortest paths (same convention as the bundled Roofnet
topology), so predetermined-route schemes work on plain node+flow files;
files may instead spell out their own ``route`` records.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple

from repro.topology.spec import FlowSpec, TopologyError, TopologySpec

#: Default good-link radius (metres) for the derived-route connectivity graph;
#: matches the bundled Roofnet topology's convention.
DEFAULT_GOOD_LINK_M = 160.0


def load_trace_topology(
    path: str, good_link_m: float = DEFAULT_GOOD_LINK_M
) -> TopologySpec:
    """Load, complete (derived ``ROUTE0`` if needed) and validate one trace file."""
    extension = os.path.splitext(path)[1].lower()
    if extension == ".csv":
        spec = _load_csv(path)
    elif extension == ".json":
        spec = _load_json(path)
    else:
        raise TopologyError(
            f"{path}: unsupported trace-topology extension {extension!r} (expected .csv or .json)"
        )
    # Validate the parsed structure first (so "flow references unknown node"
    # is reported as such, not as a route-derivation failure), then derive
    # routes if needed and validate the completed spec.
    _validate(path, spec)
    if spec.flows and not spec.route_sets:
        spec.route_sets = {"ROUTE0": _derive_routes(path, spec, good_link_m)}
    return _validate(path, spec)


def _validate(path: str, spec: TopologySpec) -> TopologySpec:
    try:
        return spec.validate()
    except TopologyError as exc:
        raise TopologyError(f"{path}: {exc}") from exc


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
def _parse_int(path: str, lineno: int, field_name: str, raw: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise TopologyError(
            f"{path}:{lineno}: field {field_name!r} must be an integer, got {raw.strip()!r}"
        ) from None


def _parse_float(path: str, lineno: int, field_name: str, raw: str) -> float:
    try:
        return float(raw)
    except ValueError:
        raise TopologyError(
            f"{path}:{lineno}: field {field_name!r} must be a number, got {raw.strip()!r}"
        ) from None


def _require_fields(path: str, lineno: int, record: List[str], minimum: int, shape: str) -> None:
    if len(record) < minimum:
        raise TopologyError(
            f"{path}:{lineno}: {record[0]} record needs {shape}, got {len(record) - 1} field(s)"
        )


def _load_csv(path: str) -> TopologySpec:
    positions: Dict[int, Tuple[float, float]] = {}
    flows: List[FlowSpec] = []
    route_sets: Dict[str, Dict[Tuple[int, int], List[int]]] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            record = [cell.strip() for cell in line.split(",")]
            kind = record[0].lower()
            if kind == "node":
                _require_fields(path, lineno, record, 4, "node,<id>,<x>,<y>")
                node_id = _parse_int(path, lineno, "node id", record[1])
                if node_id in positions:
                    raise TopologyError(f"{path}:{lineno}: duplicate node id {node_id}")
                positions[node_id] = (
                    _parse_float(path, lineno, "x", record[2]),
                    _parse_float(path, lineno, "y", record[3]),
                )
            elif kind == "flow":
                _require_fields(path, lineno, record, 4, "flow,<id>,<src>,<dst>[,<kind>]")
                flows.append(
                    FlowSpec(
                        flow_id=_parse_int(path, lineno, "flow id", record[1]),
                        src=_parse_int(path, lineno, "src", record[2]),
                        dst=_parse_int(path, lineno, "dst", record[3]),
                        kind=record[4] if len(record) > 4 and record[4] else "tcp",
                    )
                )
            elif kind == "route":
                _require_fields(
                    path, lineno, record, 5, "route,<set>,<src>,<dst>,<hop0>;...;<hopN>"
                )
                set_name = record[1]
                src = _parse_int(path, lineno, "src", record[2])
                dst = _parse_int(path, lineno, "dst", record[3])
                hops = [
                    _parse_int(path, lineno, "route hop", hop)
                    for hop in record[4].split(";")
                    if hop.strip()
                ]
                if not hops:
                    raise TopologyError(f"{path}:{lineno}: route record has no hops")
                route_sets.setdefault(set_name, {})[(src, dst)] = hops
            else:
                raise TopologyError(
                    f"{path}:{lineno}: unknown record type {record[0]!r} "
                    "(expected node, flow or route)"
                )
    if not positions:
        raise TopologyError(f"{path}: no node records found")
    return TopologySpec(
        name=_trace_name(path),
        positions=positions,
        flows=flows,
        route_sets=route_sets,
        description=f"Trace topology loaded from {os.path.basename(path)}",
    )


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def _load_json(path: str) -> TopologySpec:
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except ValueError as exc:
            raise TopologyError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise TopologyError(
            f"{path}: top level must be a JSON object, got {type(document).__name__}"
        )
    document.setdefault("name", _trace_name(path))
    document.setdefault("description", f"Trace topology loaded from {os.path.basename(path)}")
    try:
        return TopologySpec.from_dict(document)
    except TopologyError:
        raise
    except (KeyError, ValueError, TypeError, AttributeError) as exc:
        raise TopologyError(f"{path}: {exc}") from exc


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _trace_name(path: str) -> str:
    return f"trace:{os.path.splitext(os.path.basename(path))[0]}"


def _derive_routes(
    path: str, spec: TopologySpec, good_link_m: float
) -> Dict[Tuple[int, int], List[int]]:
    """Geometric shortest-path ``ROUTE0`` for files that define only flows."""
    import networkx as nx

    from repro.topology.roofnet import connectivity_from_positions

    graph = connectivity_from_positions(spec.positions, good_link_m=good_link_m)
    routes: Dict[Tuple[int, int], List[int]] = {}
    for flow in spec.flows:
        if (flow.src, flow.dst) in routes:
            continue
        try:
            routes[(flow.src, flow.dst)] = [
                int(hop) for hop in nx.shortest_path(graph, flow.src, flow.dst)
            ]
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise TopologyError(
                f"{path}: cannot derive a route for flow {flow.flow_id} "
                f"({flow.src} -> {flow.dst}): no path within {good_link_m:g} m links; "
                "add route records or increase good_link_m"
            ) from exc
    return routes
