"""The topology registry: every named placement a scenario can reference.

Each entry is a builder ``build(**params) -> TopologySpec``; the params
are the builder's keyword arguments, so a
:class:`~repro.spec.TopologyRef` like ``{"name": "line", "params":
{"n_hops": 6, "cross_traffic": true}}`` — or ``--set topology=line
topology.n_hops=6`` on the CLI — addresses any point of a topology
family without code.  Built specs are validated before being handed out.

Registered builders cover the paper's layouts (``fig1``, ``fig5a``,
``fig5b``, ``line``, ``wigle``, ``roofnet``) plus the re-flavoured Fig. 1
variants carrying VoIP (``fig1-voip``, alias ``voip``) and web flows
(``fig1-web``, alias ``web``).

External datasets load through the ``trace:`` *prefix entry*: a name of
the form ``trace:<path>`` resolves to the CSV/JSON loader of
:mod:`repro.topology.tracefile` with the path as its argument, so
``--set topology=trace:site.csv`` runs a file that was never registered
in code.
"""

from __future__ import annotations

from repro.registry import Registry
from repro.topology.spec import TopologySpec

#: The registry of topology builders.
TOPOLOGIES = Registry("topology")


def register_topology(name: str):
    """Decorator registering a ``build(**params) -> TopologySpec`` factory."""
    return TOPOLOGIES.register(name)


@register_topology("fig1")
def _fig1() -> TopologySpec:
    """The paper's Fig. 1 reference mesh (three TCP flows, ROUTE0/1/2 tables)."""
    from repro.topology.standard import fig1_topology

    return fig1_topology()


@register_topology("fig1-voip")
def _fig1_voip(flows_per_pair: int = 10) -> TopologySpec:
    """Fig. 1 placement re-flavoured with bidirectional VoIP streams per pair."""
    from repro.topology.standard import voip_topology

    return voip_topology(flows_per_pair=int(flows_per_pair))


@register_topology("fig1-web")
def _fig1_web(flows_per_pair: int = 10) -> TopologySpec:
    """Fig. 1 placement re-flavoured with ON/OFF web transfer flows per pair."""
    from repro.topology.standard import web_topology

    return web_topology(flows_per_pair=int(flows_per_pair))


@register_topology("fig5a")
def _fig5a(n_flows: int = 9) -> TopologySpec:
    """Fig. 5(a): parallel single-hop flows contending on one collision domain."""
    from repro.topology.standard import fig5a_topology

    return fig5a_topology(n_flows=int(n_flows))


@register_topology("fig5b")
def _fig5b(n_hidden: int = 9) -> TopologySpec:
    """Fig. 5(b): one measured flow plus hidden-terminal UDP interferers."""
    from repro.topology.standard import fig5b_topology

    return fig5b_topology(n_hidden=int(n_hidden))


@register_topology("line")
def _line(n_hops: int = 5, cross_traffic: bool = False) -> TopologySpec:
    """A straight relay chain of ``n_hops`` reliable hops (Fig. 7), optional cross traffic."""
    from repro.topology.standard import line_topology

    return line_topology(int(n_hops), cross_traffic=bool(cross_traffic))


@register_topology("wigle")
def _wigle(include_hidden: bool = True) -> TopologySpec:
    """The Wigle-derived city block topology (Fig. 9/10) with optional hidden load."""
    from repro.topology.wigle import wigle_topology

    return wigle_topology(include_hidden=bool(include_hidden))


@register_topology("roofnet")
def _roofnet(include_hidden: bool = False, seed: int = 7) -> TopologySpec:
    """The synthetic Roofnet-like rooftop mesh (Fig. 11/12), seeded layout."""
    from repro.topology.roofnet import roofnet_scenario

    return roofnet_scenario(include_hidden=bool(include_hidden), seed=int(seed))


@TOPOLOGIES.register_prefix("trace")
def _trace(path: str, good_link_m: float = 160.0) -> TopologySpec:
    """External CSV/JSON node+flow file loaded (and validated) from ``path``."""
    from repro.topology.tracefile import load_trace_topology

    return load_trace_topology(path, good_link_m=float(good_link_m))


TOPOLOGIES.alias("voip", "fig1-voip")
TOPOLOGIES.alias("web", "fig1-web")


def build_topology(name: str, **params) -> TopologySpec:
    """Build and validate the named topology with ``params`` applied.

    A prefixed name (``trace:<path>``) resolves to the prefix entry with
    the part after the colon as its first argument, so trace files are
    addressed exactly like registered builders.
    """
    builder = TOPOLOGIES.lookup(name)
    prefixed = TOPOLOGIES.split_prefixed(name)
    try:
        spec = builder(prefixed[1], **params) if prefixed is not None else builder(**params)
    except TypeError as exc:
        raise ValueError(f"bad parameters for topology {name!r}: {exc}") from exc
    return spec.validate()
