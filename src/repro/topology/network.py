"""Scenario assembly: nodes, channel and protocol stacks.

:class:`WirelessNetwork` is the top-level object an experiment (or a user
of the library) builds a scenario with:

.. code-block:: python

    net = WirelessNetwork(phy=HIGH_RATE_PHY, error_model=BitErrorModel(1e-6), seed=7)
    for node_id, position in enumerate(positions):
        net.add_node(node_id, position)
    routing = StaticRouting({(0, 3): [0, 1, 2, 3]})
    net.install_stack("ripple", routing)          # or "dcf", "afr", "preexor", ...
    net.install_transport()
    # ... attach traffic sources, then:
    net.run(seconds(10))

Schemes are looked up by name in :data:`repro.mac.registry.MAC_SCHEMES`
(``"dcf"`` — the D bars, ``"afr"`` — A, ``"ripple1"`` — R1 / mTXOP
without aggregation, ``"ripple"`` — R16, plus ``"preexor"`` and
``"mcexor"`` for the Section II comparison); register a new scheme with
:func:`repro.mac.registry.register_mac_scheme` and it becomes installable
here — and addressable from the declarative scenario layer — by name.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.mac.registry import MAC_SCHEMES, SchemeInfo
from repro.mac.timing import DEFAULT_TIMING, MacTiming
from repro.phy.channel import WirelessChannel
from repro.phy.error_models import BitErrorModel
from repro.phy.params import PhyParams
from repro.phy.propagation import PathLossModel
from repro.phy.registry import build_propagation
from repro.phy.radio import Radio
from repro.routing.agent import NetworkAgent
from repro.routing.base import RoutingProtocol
from repro.routing.etx import EtxParams, build_connectivity_graph
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.units import seconds
from repro.topology.node import Node

#: Backward-compatible alias for the scheme registry (a read-only mapping
#: view of :data:`repro.mac.registry.MAC_SCHEMES`).
SCHEMES = MAC_SCHEMES


class WirelessNetwork:
    """A complete simulated wireless network (stations, channel, stacks)."""

    def __init__(
        self,
        phy: Optional[PhyParams] = None,
        propagation: Optional[PathLossModel] = None,
        error_model: Optional[BitErrorModel] = None,
        timing: Optional[MacTiming] = None,
        seed: int = 1,
    ) -> None:
        self.sim = Simulator()
        self.rng = RandomStreams(seed=seed)
        self.phy = phy or PhyParams()
        self.timing = timing or DEFAULT_TIMING
        # The propagation model comes from the PHY's named registry entry
        # (default "shadowing", which inherits the PHY's cull margin — so
        # max_deviation_sigmas stays sweepable from the config/spec layer).
        self.propagation = propagation or build_propagation(self.phy)
        self.error_model = error_model or BitErrorModel()
        self.channel = WirelessChannel(
            self.sim,
            self.phy,
            propagation=self.propagation,
            error_model=self.error_model,
            rng=self.rng,
        )
        self.nodes: Dict[int, Node] = {}
        self.scheme: Optional[SchemeInfo] = None
        self.routing: Optional[RoutingProtocol] = None
        self.mobility = None  # MobilityManager once install_mobility runs

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: int, position: Tuple[float, float]) -> Node:
        """Create a station with a radio at ``position`` (metres)."""
        if node_id in self.nodes:
            raise ValueError(f"node {node_id} already exists")
        node = Node(node_id=node_id, position=position)
        node.radio = Radio(node_id, node.position, self.channel)
        self.nodes[node_id] = node
        return node

    def add_nodes(self, positions: Dict[int, Tuple[float, float]]) -> None:
        """Create several stations at once from a {node_id: position} mapping."""
        for node_id, position in positions.items():
            self.add_node(node_id, position)

    def install_stack(self, scheme: str, routing: RoutingProtocol, **mac_kwargs) -> None:
        """Create the MAC + network agent of ``scheme`` on every node."""
        info = SCHEMES.get(scheme)
        if info is None:
            raise ValueError(f"unknown scheme {scheme!r}; known: {sorted(SCHEMES)}")
        info.validate_kwargs(mac_kwargs)
        self.scheme = info
        self.routing = routing
        for node in self.nodes.values():
            node.mac = info.factory(self, node, **mac_kwargs)
            # Wrapper schemes (rate_adapt) build some inner MAC and record the
            # routing style it actually consumes on the instance; plain
            # schemes fall through to their registry flag.
            opportunistic = getattr(node.mac, "opportunistic_routing", info.opportunistic)
            node.network = NetworkAgent(
                node.node_id, routing, node.mac, opportunistic=opportunistic
            )

    def install_transport(self) -> None:
        """Create a transport host (TCP/UDP dispatch) on every node."""
        from repro.transport.host import TransportHost

        for node in self.nodes.values():
            if node.network is None:
                raise RuntimeError("install_stack must be called before install_transport")
            node.transport = TransportHost(self.sim, node.node_id, node.network)

    def install_mobility(self, spec) -> "object":
        """Attach a mobility subsystem described by a :class:`MobilitySpec`.

        Creates a :class:`~repro.mobility.manager.MobilityManager` fed from
        the dedicated ``"mobility"`` random stream, wires the periodic link
        re-estimation hook (rebuild the ETX graph, push it into the routing
        protocol via :meth:`refresh_routes`), and starts it.  A static spec
        installs a manager that schedules nothing, so static runs stay
        bit-identical to builds without mobility.

        Call after :meth:`install_stack` so re-estimation can reach the
        routing protocol.
        """
        from repro.mobility.manager import MobilityManager

        model = spec.build_model()
        manager = MobilityManager(
            self.sim,
            model,
            self.rng.stream("mobility"),
            update_interval_ns=seconds(spec.update_interval_s),
            move_node=self.move_node,
            mobile_nodes=spec.mobile_nodes,
        )
        if spec.reestimate_interval_s > 0:
            manager.add_reestimation(seconds(spec.reestimate_interval_s), self.refresh_routes)
        manager.start({node_id: node.position for node_id, node in self.nodes.items()})
        self.mobility = manager
        return manager

    def move_node(self, node_id: int, position: Tuple[float, float]) -> None:
        """Relocate one station (mobility tick or manual repositioning)."""
        self.nodes[node_id].move_to(position)

    def refresh_routes(self, params: Optional[EtxParams] = None) -> nx.Graph:
        """Re-estimate links from current positions and refresh routes.

        This is the route-maintenance step of the mobility subsystem: the
        ETX connectivity graph is rebuilt from where the radios are *now*
        and handed to the routing protocol's ``update_graph`` hook, so both
        next-hop and opportunistic forwarder-list queries made afterwards
        reflect the new link state.
        """
        graph = self.connectivity_graph(params)
        if self.routing is not None:
            self.routing.update_graph(graph)
        return graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def connectivity_graph(self, params: Optional[EtxParams] = None) -> nx.Graph:
        """Connectivity/ETX graph used by SPR and forwarder selection."""
        return build_connectivity_graph(self.channel, params)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, duration_ns: int) -> None:
        """Advance the simulation by ``duration_ns`` nanoseconds."""
        self.sim.run(until=self.sim.now + int(duration_ns))

    def run_seconds(self, duration_s: float) -> None:
        """Advance the simulation by ``duration_s`` seconds."""
        self.run(seconds(duration_s))
