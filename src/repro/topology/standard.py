"""The paper's hand-built topologies: Fig. 1, Fig. 5(a), Fig. 5(b) and the line.

Coordinates are chosen so that, under the shadowing model with the paper's
parameters (path-loss exponent 5, deviation 8 dB, 281 mW), the qualitative
link structure the paper describes holds:

* consecutive relay hops (~115 m) deliver frames with >95 % probability;
* "shortcut" links that skip one relay (~190-220 m) work only about half
  of the time;
* the direct source-destination links the S bars use (~300 m) succeed for
  roughly a quarter of frames, which is why one-hop routing is inefficient
  (Section IV-A);
* stations more than ~650 m apart cannot even carrier-sense each other,
  which is how the hidden-terminal scenarios of Fig. 5(b) are built.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.topology.spec import FlowSpec, TopologySpec

#: Inter-relay spacing giving a high-quality link under the default PHY.
GOOD_HOP_M = 115.0


def fig1_topology() -> TopologySpec:
    """The 8-station multi-flow topology of Fig. 1 with ROUTE0/1/2 from Table II.

    Flows (as in Section IV): flow 1 from station 0 to 3, flow 2 from 0 to
    4, flow 3 from 5 to 7.
    """
    positions: Dict[int, Tuple[float, float]] = {
        0: (0.0, 0.0),
        1: (115.0, 0.0),
        2: (230.0, 0.0),
        3: (281.6, 91.4),
        4: (281.6, -91.4),
        5: (20.0, 230.0),
        6: (115.0, 115.0),
        7: (230.0, 115.0),
    }
    flows = [
        FlowSpec(flow_id=1, src=0, dst=3, kind="tcp", label="flow1 0->3"),
        FlowSpec(flow_id=2, src=0, dst=4, kind="tcp", label="flow2 0->4"),
        FlowSpec(flow_id=3, src=5, dst=7, kind="tcp", label="flow3 5->7"),
    ]
    route_sets = {
        # Table II of the paper.
        "ROUTE0": {
            (0, 3): [0, 1, 2, 3],
            (0, 4): [0, 1, 2, 4],
            (5, 7): [5, 6, 1, 7],
        },
        "ROUTE1": {
            (0, 3): [0, 1, 3],
            (0, 4): [0, 1, 4],
            (5, 7): [5, 6, 7],
        },
        "ROUTE2": {
            (0, 3): [0, 2, 3],
            (0, 4): [0, 2, 4],
            (5, 7): [5, 1, 7],
        },
        # The "S" bars: shortest-path (direct) routes between the end points.
        "DIRECT": {
            (0, 3): [0, 3],
            (0, 4): [0, 4],
            (5, 7): [5, 7],
        },
    }
    return TopologySpec(
        name="fig1",
        positions=positions,
        flows=flows,
        route_sets=route_sets,
        description="Multi-flow topology of Fig. 1 (three flows, shared relays).",
    )


def fig5a_topology(n_flows: int = 9, hop_m: float = GOOD_HOP_M) -> TopologySpec:
    """Fig. 5(a): everything within carrier-sense range, so collisions are 'regular'.

    Each flow is a two-hop source → relay → destination chain; the chains are
    packed side by side with small vertical spacing so every station senses
    every other station (no hidden terminals).
    """
    if not 1 <= n_flows <= 9:
        raise ValueError("the paper evaluates 1..9 regular-collision flows")
    positions: Dict[int, Tuple[float, float]] = {}
    flows: List[FlowSpec] = []
    routes: Dict[Tuple[int, int], List[int]] = {}
    spacing_y = 30.0
    for index in range(n_flows):
        base = index * 3
        y = index * spacing_y
        src, relay, dst = base, base + 1, base + 2
        positions[src] = (0.0, y)
        positions[relay] = (hop_m, y)
        positions[dst] = (2 * hop_m, y)
        flows.append(FlowSpec(flow_id=index + 1, src=src, dst=dst, kind="tcp", label=f"flow{index + 1}"))
        routes[(src, dst)] = [src, relay, dst]
    return TopologySpec(
        name="fig5a",
        positions=positions,
        flows=flows,
        route_sets={"ROUTE0": routes},
        description="Regular-collision topology of Fig. 5(a): parallel 2-hop flows in range.",
    )


def fig5b_topology(n_hidden: int = 9, hop_m: float = GOOD_HOP_M) -> TopologySpec:
    """Fig. 5(b): sources of flows 2..10 are hidden from the source of flow 1.

    Flow 1 is a three-hop chain 0 → 1 → 2 → 3.  The hidden sources sit far
    enough from station 0 that they cannot carrier-sense it (>650 m), but
    close enough to flow 1's later relays and destination that their
    transmissions interfere there.  Each hidden source saturates a one-hop
    UDP flow to its own destination.
    """
    if not 0 <= n_hidden <= 9:
        raise ValueError("the paper evaluates 0..9 hidden flows")
    positions: Dict[int, Tuple[float, float]] = {
        0: (0.0, 0.0),
        1: (hop_m, 0.0),
        2: (2 * hop_m, 0.0),
        3: (3 * hop_m, 0.0),
    }
    flows: List[FlowSpec] = [FlowSpec(flow_id=1, src=0, dst=3, kind="tcp", label="flow1 0->3")]
    routes: Dict[Tuple[int, int], List[int]] = {(0, 3): [0, 1, 2, 3]}
    hidden_x = 700.0  # > carrier-sense range from station 0, < from stations 2 and 3
    for index in range(n_hidden):
        src = 10 + 2 * index
        dst = 11 + 2 * index
        y = (index - (n_hidden - 1) / 2.0) * 40.0
        positions[src] = (hidden_x, y)
        positions[dst] = (hidden_x + hop_m, y)
        flows.append(
            FlowSpec(
                flow_id=2 + index,
                src=src,
                dst=dst,
                kind="udp-saturating",
                label=f"hidden{index + 1}",
            )
        )
        routes[(src, dst)] = [src, dst]
    return TopologySpec(
        name="fig5b",
        positions=positions,
        flows=flows,
        route_sets={"ROUTE0": routes},
        description="Hidden-collision topology of Fig. 5(b): flow 1 throttled by hidden sources.",
    )


def line_topology(n_hops: int, cross_traffic: bool = False, hop_m: float = GOOD_HOP_M) -> TopologySpec:
    """The line topology of Fig. 7 with 2..7 hops and optional crossing 3-hop flow.

    The main flow runs from node 0 to node ``n_hops`` along the line; the
    optional cross flow is a 3-hop chain that intersects the line at its
    middle node (sharing that relay), as in Fig. 7(b).
    """
    if not 2 <= n_hops <= 7:
        raise ValueError("the paper evaluates lines of 2..7 hops")
    positions: Dict[int, Tuple[float, float]] = {
        i: (i * hop_m, 0.0) for i in range(n_hops + 1)
    }
    flows = [FlowSpec(flow_id=1, src=0, dst=n_hops, kind="tcp", label=f"line {n_hops} hops")]
    routes: Dict[Tuple[int, int], List[int]] = {(0, n_hops): list(range(n_hops + 1))}
    if cross_traffic:
        middle = n_hops // 2
        mx = middle * hop_m
        top, above = 100, 101
        below = 102
        positions[top] = (mx, 2 * hop_m)
        positions[above] = (mx, hop_m)
        positions[below] = (mx, -hop_m)
        flows.append(
            FlowSpec(flow_id=2, src=top, dst=below, kind="udp-saturating", label="cross 3-hop")
        )
        routes[(top, below)] = [top, above, middle, below]
    return TopologySpec(
        name=f"line{n_hops}" + ("_cross" if cross_traffic else ""),
        positions=positions,
        flows=flows,
        route_sets={"ROUTE0": routes},
        description="Line topology of Fig. 7.",
    )


def _fig1_multiflow(kind: str, flows_per_pair: int, label_prefix: str) -> TopologySpec:
    """The Fig. 1 placement re-flavoured with ``flows_per_pair`` flows per pair."""
    base = fig1_topology()
    pairs = [(0, 3), (0, 4), (5, 7)]
    flows: List[FlowSpec] = []
    flow_id = 1
    for src, dst in pairs:
        for _ in range(flows_per_pair):
            flows.append(
                FlowSpec(
                    flow_id=flow_id, src=src, dst=dst, kind=kind,
                    label=f"{label_prefix} {src}->{dst}",
                )
            )
            flow_id += 1
    base.flows = flows
    return base


def voip_topology(flows_per_pair: int = 10) -> TopologySpec:
    """The Fig. 1 topology carrying VoIP streams instead of TCP flows (Table III)."""
    return _fig1_multiflow("voip", flows_per_pair, "voip")


def web_topology(flows_per_pair: int = 10) -> TopologySpec:
    """The Fig. 1 topology carrying ON/OFF web flows (Fig. 8)."""
    return _fig1_multiflow("web", flows_per_pair, "web")
