"""Named component registries: the extension seam of the scenario API.

Every pluggable layer of the simulator — MAC schemes, routing strategies,
traffic kinds, topologies, mobility models — owns one :class:`Registry`
and populates it with a ``@register("name")`` decorator at import time.
The declarative spec layer (:mod:`repro.spec`) then refers to components
purely by name, which is what makes a scenario a JSON document instead of
a code change: ``{"mac": {"name": "ripple"}, "routing": {"name":
"static"}}`` resolves through the registries at build time.

Adding a component is therefore one decorated function::

    from repro.topology.registry import register_topology

    @register_topology("campus")
    def campus(n_buildings: int = 4) -> TopologySpec:
        ...

after which ``--set topology=campus topology.n_buildings=6`` works from
the CLI with no other code touched.

Registries are *closed* against accidents: registering a name twice
raises (a silent overwrite would make behaviour depend on import order),
and looking up an unknown name raises an error that lists what *is*
registered.

Besides plain names, a registry can hold **prefix entries**
(:meth:`Registry.add_prefix`): an entry addressed as ``prefix:argument``,
where the argument is free-form — the mechanism behind path-addressed
components like ``topology=trace:nodes.csv``.  A prefixed name is
resolved by its prefix alone; :meth:`Registry.split_prefixed` recovers
the argument for the caller to hand to the entry.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class RegistryError(ValueError):
    """Raised on duplicate registration or lookup of an unknown name."""


class Registry:
    """A named, write-once mapping of component names to entries.

    Implements the read side of the ``Mapping`` protocol (``in``,
    ``len``, iteration, ``get``, ``items`` ...), so existing code that
    treated the old hard-coded dicts as plain mappings keeps working when
    handed a registry instead.
    """

    def __init__(self, kind: str) -> None:
        #: Human-readable component kind, used in error messages
        #: (e.g. ``"MAC scheme"``, ``"topology"``).
        self.kind = kind
        self._entries: Dict[str, object] = {}
        self._aliases: Dict[str, str] = {}
        self._prefixes: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def add(self, name: str, entry: T) -> T:
        """Register ``entry`` under ``name``; duplicate names raise."""
        if not name or not isinstance(name, str):
            raise RegistryError(f"{self.kind} name must be a non-empty string, got {name!r}")
        if name in self._entries or name in self._aliases:
            raise RegistryError(
                f"duplicate {self.kind} registration {name!r}: "
                f"already provided by {self._entries.get(name, self._aliases.get(name))!r}"
            )
        self._entries[name] = entry
        return entry

    def register(self, name: str) -> Callable[[T], T]:
        """Decorator form of :meth:`add`; returns the decorated object unchanged."""

        def decorate(entry: T) -> T:
            self.add(name, entry)
            return entry

        return decorate

    def add_prefix(self, prefix: str, entry: T) -> T:
        """Register ``entry`` for every name of the form ``prefix:<argument>``.

        The argument after the colon is free-form (a file path, a URL, an
        expression) and is recovered with :meth:`split_prefixed`; how it is
        interpreted is entirely the entry's business.
        """
        if not prefix or not isinstance(prefix, str) or ":" in prefix:
            raise RegistryError(
                f"{self.kind} prefix must be a non-empty string without ':', got {prefix!r}"
            )
        if prefix in self._entries or prefix in self._aliases or prefix in self._prefixes:
            raise RegistryError(f"duplicate {self.kind} registration {prefix!r}")
        self._prefixes[prefix] = entry
        return entry

    def register_prefix(self, prefix: str) -> Callable[[T], T]:
        """Decorator form of :meth:`add_prefix`; returns the object unchanged."""

        def decorate(entry: T) -> T:
            self.add_prefix(prefix, entry)
            return entry

        return decorate

    def alias(self, alias: str, target: str) -> None:
        """Make ``alias`` resolve to the already-registered ``target``."""
        if target not in self._entries:
            raise RegistryError(
                f"cannot alias {alias!r}: unknown {self.kind} {target!r}; "
                f"known: {sorted(self._entries)}"
            )
        if alias in self._entries or alias in self._aliases:
            raise RegistryError(f"duplicate {self.kind} registration {alias!r}")
        self._aliases[alias] = target

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def canonical_name(self, name: str) -> str:
        """Resolve an alias to its canonical name (identity for canonical names)."""
        return self._aliases.get(name, name)

    def split_prefixed(self, name: object) -> Optional[Tuple[str, str]]:
        """``(prefix, argument)`` when ``name`` addresses a prefix entry, else None."""
        if not isinstance(name, str) or ":" not in name:
            return None
        prefix, _, argument = name.partition(":")
        if prefix not in self._prefixes:
            return None
        return prefix, argument

    def lookup(self, name: str):
        """The entry registered under ``name`` (or an alias/prefix); raises if unknown.

        For a prefixed name (``trace:nodes.csv``) this returns the prefix
        entry; pair with :meth:`split_prefixed` to recover the argument.
        """
        prefixed = self.split_prefixed(name)
        if prefixed is not None:
            return self._prefixes[prefixed[0]]
        canonical = self.canonical_name(name)
        try:
            return self._entries[canonical]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; known: {self.known_names()}"
            ) from None

    def get(self, name: str, default=None):
        """Mapping-style lookup returning ``default`` for unknown names."""
        prefixed = self.split_prefixed(name)
        if prefixed is not None:
            return self._prefixes[prefixed[0]]
        return self._entries.get(self._aliases.get(name, name), default)

    def known_names(self) -> List[str]:
        """Canonical names plus aliases and prefix forms, sorted (for errors/help)."""
        return sorted([*self._entries, *self._aliases, *(f"{p}:<arg>" for p in self._prefixes)])

    def prefixes(self) -> Tuple[str, ...]:
        """Registered prefixes in registration order."""
        return tuple(self._prefixes)

    def aliases_of(self, name: str) -> List[str]:
        """Aliases resolving to canonical ``name``, sorted (for docs/help)."""
        return sorted(alias for alias, target in self._aliases.items() if target == name)

    def alias_items(self):
        """``(alias, canonical target)`` pairs in registration order."""
        return self._aliases.items()

    def prefix_items(self):
        return self._prefixes.items()

    def names(self) -> Tuple[str, ...]:
        """Canonical names in registration order."""
        return tuple(self._entries)

    def summary(self) -> str:
        """One-line inventory: ``<kind>: name, alias, prefix:<arg>, ...``.

        The introspection hook behind ``python -m repro.experiments list``
        and the corpus enumeration docs — one stable rendering of what a
        registry holds, instead of each CLI joining ``known_names()`` its
        own way.
        """
        return f"{self.kind}: {', '.join(self.known_names())}"

    def items(self):
        return self._entries.items()

    def values(self):
        return self._entries.values()

    def keys(self):
        return self._entries.keys()

    def __contains__(self, name: object) -> bool:
        return (
            name in self._entries
            or name in self._aliases
            or self.split_prefixed(name) is not None
        )

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, name: str):
        return self.lookup(name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Registry({self.kind!r}, {sorted(self._entries)})"
