"""Time units for the simulator.

All simulation time is kept as integer **nanoseconds**.  Integer time
makes event ordering exact and reproducible, which matters because the
protocols under study (Section III of the paper) are defined in terms of
precise timing relationships such as ``i * T_slot + T_SIFS``: two events
that the protocol defines to be simultaneous must compare equal, and two
events separated by one slot must never be reordered by floating-point
round-off.

Helper constructors (:func:`us`, :func:`ms`, :func:`seconds`) convert
human-friendly quantities into integer nanoseconds, rounding to the
nearest nanosecond.  Conversion back to floating-point seconds is only
done at the reporting boundary (:func:`ns_to_seconds`).
"""

from __future__ import annotations

NANOSECOND: int = 1
MICROSECOND: int = 1_000
MILLISECOND: int = 1_000_000
SECOND: int = 1_000_000_000


def us(value: float) -> int:
    """Convert microseconds to integer nanoseconds (rounded)."""
    return int(round(value * MICROSECOND))


def ms(value: float) -> int:
    """Convert milliseconds to integer nanoseconds (rounded)."""
    return int(round(value * MILLISECOND))


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds (rounded)."""
    return int(round(value * SECOND))


def ns_to_seconds(value: int) -> float:
    """Convert integer nanoseconds back to floating-point seconds."""
    return value / SECOND


def ns_to_us(value: int) -> float:
    """Convert integer nanoseconds back to floating-point microseconds."""
    return value / MICROSECOND


def transmission_time_ns(bits: int | float, rate_bps: float) -> int:
    """Airtime of ``bits`` at ``rate_bps`` in integer nanoseconds (rounded up).

    Rounding up guarantees a transmission never finishes "early", which keeps
    the MAC timing conservative in the same way NS-2's PHY does.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate_bps must be positive, got {rate_bps}")
    exact = bits * SECOND / rate_bps
    return int(-(-exact // 1))  # ceiling without math.ceil on floats near ints
