"""Event-heap discrete-event simulator.

This is the from-scratch replacement for the NS-2 scheduler the paper's
implementation runs on.  The design is deliberately small:

* :class:`Event` — a cancellable callback scheduled at an absolute
  integer-nanosecond timestamp.
* :class:`Simulator` — a binary-heap event queue with a monotonically
  increasing sequence number used as a tie-breaker so that events
  scheduled at the same timestamp fire in scheduling order
  (deterministic FIFO among ties).

Protocol code schedules relative timers with :meth:`Simulator.schedule`
and cancels them with :meth:`Event.cancel` (cancellation is lazy: the
heap entry stays in place and is skipped when popped, which is O(1) and
avoids heap surgery).

Performance notes
-----------------
The heap holds plain ``(time, seq, event)`` tuples rather than the
:class:`Event` objects themselves: tuple comparison is a single C-level
operation, whereas comparing objects dispatches to Python ``__lt__``
once per sift step — on simulation workloads that comparison alone was
~15 % of total runtime.  :class:`Event` itself uses ``__slots__`` so the
per-event allocation is one object without a ``__dict__``.  The run loop
peeks/pops on a local alias of the heap; :meth:`Simulator._compact` must
therefore rebuild the heap *in place* (``self._heap[:] = ...``) so the
alias never goes stale when a callback's cancellation triggers
compaction mid-run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A single scheduled callback.

    Events are ordered by ``(time, seq)``: ``time`` is absolute simulation
    time in nanoseconds and ``seq`` is the scheduling sequence number used
    to break ties deterministically.  The ordering lives in the heap's
    ``(time, seq, event)`` tuples, not on the object, so :class:`Event`
    defines no comparison methods.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "on_cancel")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple = (),
        on_cancel: Optional[Callable[[], None]] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.on_cancel = on_cancel

    def cancel(self) -> None:
        """Mark the event so that it is skipped when its time arrives.

        Cancelling an event that has already fired (a stale handle) is a
        no-op: firing marks the event cancelled first, so the early return
        below keeps the simulator's cancellation accounting untouched.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel()

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not cancelled, not fired)."""
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(time={self.time}, seq={self.seq}, {state})"


#: One heap entry: ``(time, seq, event)``.
HeapEntry = Tuple[int, int, Event]


class SimulationError(RuntimeError):
    """Raised when the simulator is used incorrectly (e.g. scheduling in the past)."""


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial simulation clock value in nanoseconds (defaults to 0).

    Notes
    -----
    The simulator only advances time when :meth:`run` (or :meth:`step`)
    is called; callbacks scheduled by other callbacks at the current time
    are executed in FIFO order before the clock moves on.
    """

    __slots__ = ("_now", "_heap", "_seq", "_running", "_processed", "_cancelled_pending")

    #: Minimum heap size before lazy-cancellation compaction kicks in; below
    #: this the scan costs more than the memory it reclaims.
    COMPACT_MIN_HEAP = 64

    def __init__(self, start_time: int = 0) -> None:
        self._now: int = int(start_time)
        self._heap: List[HeapEntry] = []
        self._seq: int = 0
        self._running: bool = False
        self._processed: int = 0
        self._cancelled_pending: int = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still on the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def cancelled_pending_events(self) -> int:
        """Number of cancelled events still occupying heap slots."""
        return self._cancelled_pending

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + int(delay), callback, *args)

    def schedule_at(self, when: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run at absolute time ``when``."""
        when = int(when)
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} ns, current time is {self._now} ns"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(when, seq, callback, args, self._note_cancelled)
        heapq.heappush(self._heap, (when, seq, event))
        return event

    def schedule_signal(self, when: int, callback: Callable[..., None], arg: Any) -> None:
        """Hot-path variant of :meth:`schedule_at` for channel signal events.

        Skips the public-API conveniences — integer coercion, the
        past-scheduling guard, and returning a handle — because the caller
        (PHY dispatch) schedules two of these per sensed receiver per
        frame, always in the future, and never cancels them.  Cancellation
        accounting stays correct regardless: no handle escapes, so
        :meth:`Event.cancel` can only be reached by the engine itself.
        """
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(
            self._heap, (when, seq, Event(when, seq, callback, (arg,), self._note_cancelled))
        )

    def _note_cancelled(self) -> None:
        """Bookkeeping hook invoked by :meth:`Event.cancel`.

        Lazy cancellation leaves the heap entry in place; once more than half
        of the heap is dead weight the whole structure is rebuilt so that long
        runs with heavy timer churn cannot grow memory unboundedly.
        """
        self._cancelled_pending += 1
        if (
            len(self._heap) >= self.COMPACT_MIN_HEAP
            and self._cancelled_pending * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (in place: see module notes)."""
        self._heap[:] = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        heap = self._heap
        while heap:
            when, _seq, event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            if when < self._now:
                raise SimulationError("event heap corrupted: time went backwards")
            self._now = when
            event.cancelled = True  # guards against double-execution via stale handles
            event.callback(*event.args)
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Run until the event queue empties, ``until`` is reached, or ``max_events`` fire.

        ``until`` is an absolute time in nanoseconds; events scheduled exactly
        at ``until`` are executed, later ones are left pending and the clock
        is advanced to ``until``.  When ``max_events`` stops the run first the
        clock only advances to ``until`` if no runnable event at or before
        ``until`` remains pending — otherwise it stays at the last executed
        event so a later ``run`` call can resume without time going backwards.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run call)")
        self._running = True
        executed = 0
        truncated = False
        # The hot loop: local aliases save an attribute lookup per event, and
        # the pop/dispatch is inlined rather than routed through step().
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap:
                if max_events is not None and executed >= max_events:
                    truncated = True
                    break
                when, _seq, event = heap[0]
                if event.cancelled:
                    heappop(heap)
                    self._cancelled_pending -= 1
                    continue
                if until is not None and when > until:
                    break
                heappop(heap)
                if when < self._now:
                    raise SimulationError("event heap corrupted: time went backwards")
                self._now = when
                event.cancelled = True  # guards against stale-handle re-execution
                event.callback(*event.args)
                self._processed += 1
                executed += 1
            if until is not None and until > self._now:
                if not truncated or not self._has_runnable_event_before(until):
                    self._now = until
        finally:
            self._running = False

    def _has_runnable_event_before(self, when: int) -> bool:
        """Whether any non-cancelled event at or before ``when`` is pending."""
        return any(entry[0] <= when and not entry[2].cancelled for entry in self._heap)

    def run_for(self, duration: int) -> None:
        """Run for ``duration`` nanoseconds of simulated time from now."""
        self.run(until=self._now + int(duration))
