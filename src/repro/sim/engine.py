"""Event-heap discrete-event simulator.

This is the from-scratch replacement for the NS-2 scheduler the paper's
implementation runs on.  The design is deliberately small:

* :class:`Event` — a cancellable callback scheduled at an absolute
  integer-nanosecond timestamp.
* :class:`Simulator` — a binary-heap event queue with a monotonically
  increasing sequence number used as a tie-breaker so that events
  scheduled at the same timestamp fire in scheduling order
  (deterministic FIFO among ties).

Protocol code schedules relative timers with :meth:`Simulator.schedule`
and cancels them with :meth:`Event.cancel` (cancellation is lazy: the
heap entry stays in place and is skipped when popped, which is O(1) and
avoids heap surgery).

Performance notes
-----------------
The heap holds plain tuples rather than the :class:`Event` objects
themselves: tuple comparison is a single C-level operation, whereas
comparing objects dispatches to Python ``__lt__`` once per sift step —
on simulation workloads that comparison alone was ~15 % of total
runtime.  Two entry shapes share the heap, distinguished by length:

* ``(time, seq, event)`` — a cancellable :class:`Event` timer.
* ``(time, seq, callback, payload)`` — a *signal* entry: the fixed-shape,
  never-cancelled events of the PHY signal window (reception start/end,
  transmission end).  These carry no :class:`Event` at all, so the
  busiest event class in every workload allocates nothing but its heap
  tuple.

:class:`Event` objects themselves are recycled through a freelist: an
event returns to the free pool when its heap entry is consumed (fired,
popped-as-cancelled, or dropped by compaction), never earlier.  Because
recycling waits for the heap entry, an :class:`Event` is referenced by
at most one heap entry at any time and a fired/cancelled handle can
never alias a live timer.  Stale ``cancel()`` calls on a recycled
handle are already no-ops by the handle discipline every caller follows
(clear-your-handle-before-reuse), and events sitting in the freelist
always have ``cancelled=True`` so a late cancel cannot corrupt
accounting.

The run loop peeks/pops on a local alias of the heap;
:meth:`Simulator._compact` must therefore rebuild the heap *in place*
(``self._heap[:] = ...``) so the alias never goes stale when a
callback's cancellation triggers compaction mid-run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A single scheduled callback.

    Events are ordered by ``(time, seq)``: ``time`` is absolute simulation
    time in nanoseconds and ``seq`` is the scheduling sequence number used
    to break ties deterministically.  The ordering lives in the heap's
    ``(time, seq, event)`` tuples, not on the object, so :class:`Event`
    defines no comparison methods.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "on_cancel")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple = (),
        on_cancel: Optional[Callable[[], None]] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.on_cancel = on_cancel

    def cancel(self) -> None:
        """Mark the event so that it is skipped when its time arrives.

        Cancelling an event that has already fired (a stale handle) is a
        no-op: firing marks the event cancelled first, so the early return
        below keeps the simulator's cancellation accounting untouched.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel()

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not cancelled, not fired)."""
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(time={self.time}, seq={self.seq}, {state})"


#: An Event heap entry ``(time, seq, event)``; signal entries are the
#: four-tuple ``(time, seq, callback, payload)`` — see the module notes.
HeapEntry = Tuple[Any, ...]


class SimulationError(RuntimeError):
    """Raised when the simulator is used incorrectly (e.g. scheduling in the past)."""


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial simulation clock value in nanoseconds (defaults to 0).

    Notes
    -----
    The simulator only advances time when :meth:`run` (or :meth:`step`)
    is called; callbacks scheduled by other callbacks at the current time
    are executed in FIFO order before the clock moves on.
    """

    __slots__ = (
        "_now",
        "_heap",
        "_seq",
        "_running",
        "_processed",
        "_cancelled_pending",
        "_free",
    )

    #: Minimum heap size before lazy-cancellation compaction kicks in; below
    #: this the scan costs more than the memory it reclaims.
    COMPACT_MIN_HEAP = 64

    #: Largest number of recycled Event objects kept on the freelist; beyond
    #: this the spike is returned to the allocator instead of being pinned
    #: forever.  A class attribute so tests can subclass with ``0`` to get a
    #: no-freelist reference engine.
    FREELIST_MAX = 4096

    def __init__(self, start_time: int = 0) -> None:
        self._now: int = int(start_time)
        self._heap: List[HeapEntry] = []
        self._seq: int = 0
        self._running: bool = False
        self._processed: int = 0
        self._cancelled_pending: int = 0
        self._free: List[Event] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still on the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def cancelled_pending_events(self) -> int:
        """Number of cancelled events still occupying heap slots."""
        return self._cancelled_pending

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        when = self._now + int(delay)
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = when
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
        else:
            event = Event(when, seq, callback, args, self._note_cancelled)
        heapq.heappush(self._heap, (when, seq, event))
        return event

    def schedule_at(self, when: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run at absolute time ``when``."""
        when = int(when)
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} ns, current time is {self._now} ns"
            )
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = when
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
        else:
            event = Event(when, seq, callback, args, self._note_cancelled)
        heapq.heappush(self._heap, (when, seq, event))
        return event

    def schedule_signal(self, when: int, callback: Callable[..., None], arg: Any) -> None:
        """Hot-path variant of :meth:`schedule_at` for channel signal events.

        Skips the public-API conveniences — integer coercion, the
        past-scheduling guard, and returning a handle — because the caller
        (PHY dispatch) schedules these in bulk, always in the future, and
        never cancels them.  No :class:`Event` is allocated at all: the
        heap entry *is* the event (``(when, seq, callback, arg)``), which
        is what makes the signal path allocation-free.
        """
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (when, seq, callback, arg))

    def schedule_window(
        self,
        start: int,
        end: int,
        open_callback: Callable[..., None],
        close_callback: Callable[..., None],
        payload: Any,
    ) -> None:
        """Schedule one reception's two-entry signal window in a single call.

        Every sensed reception produces exactly two fixed-shape events —
        signal start at ``start`` and signal end at ``end`` — sharing one
        payload.  Both ride the four-tuple signal fast path (no
        :class:`Event`, no handle), halving the per-reception scheduling
        call overhead of the PHY dispatch loop.
        """
        seq = self._seq
        self._seq = seq + 2
        heap = self._heap
        heapq.heappush(heap, (start, seq, open_callback, payload))
        heapq.heappush(heap, (end, seq + 1, close_callback, payload))

    def _note_cancelled(self) -> None:
        """Bookkeeping hook invoked by :meth:`Event.cancel`.

        Lazy cancellation leaves the heap entry in place; once more than half
        of the heap is dead weight the whole structure is rebuilt so that long
        runs with heavy timer churn cannot grow memory unboundedly.
        """
        self._cancelled_pending += 1
        if (
            len(self._heap) >= self.COMPACT_MIN_HEAP
            and self._cancelled_pending * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (in place: see module notes).

        Dropped entries release their :class:`Event` objects back to the
        freelist — compaction is one of the three places a heap entry is
        consumed (with fire and popped-as-cancelled), and recycling is
        tied to entry consumption, never to ``cancel()`` itself.
        """
        live: List[HeapEntry] = []
        append = live.append
        free = self._free
        free_max = self.FREELIST_MAX
        for entry in self._heap:
            if len(entry) == 3 and entry[2].cancelled:
                if len(free) < free_max:
                    free.append(entry[2])
            else:
                append(entry)
        self._heap[:] = live
        heapq.heapify(self._heap)
        self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        heap = self._heap
        free = self._free
        free_max = self.FREELIST_MAX
        while heap:
            entry = heapq.heappop(heap)
            when = entry[0]
            if len(entry) == 4:
                if when < self._now:
                    raise SimulationError("event heap corrupted: time went backwards")
                self._now = when
                entry[2](entry[3])
                self._processed += 1
                return True
            event = entry[2]
            if event.cancelled:
                self._cancelled_pending -= 1
                if len(free) < free_max:
                    free.append(event)
                continue
            if when < self._now:
                raise SimulationError("event heap corrupted: time went backwards")
            self._now = when
            event.cancelled = True  # guards against double-execution via stale handles
            event.callback(*event.args)
            if len(free) < free_max:
                free.append(event)
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Run until the event queue empties, ``until`` is reached, or ``max_events`` fire.

        ``until`` is an absolute time in nanoseconds; events scheduled exactly
        at ``until`` are executed, later ones are left pending and the clock
        is advanced to ``until``.  When ``max_events`` stops the run first the
        clock only advances to ``until`` if no runnable event at or before
        ``until`` remains pending — otherwise it stays at the last executed
        event so a later ``run`` call can resume without time going backwards.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run call)")
        self._running = True
        executed = 0
        truncated = False
        # The hot loop: local aliases save an attribute lookup per event, the
        # pop/dispatch is inlined rather than routed through step(), and the
        # optional bounds collapse to plain integer compares (budget counts
        # down from -1 forever when max_events is None and never hits zero;
        # horizon is pushed beyond any event time when until is None).
        heap = self._heap
        heappop = heapq.heappop
        free = self._free
        free_max = self.FREELIST_MAX
        budget = -1 if max_events is None else max_events
        unbounded = until is None
        horizon = 0 if until is None else until
        try:
            while heap:
                entry = heap[0]
                when = entry[0]
                if not unbounded and when > horizon:
                    break
                if budget == 0:
                    truncated = True
                    break
                budget -= 1
                heappop(heap)
                if len(entry) == 4:
                    # Signal fast path: fixed-shape, never cancelled.
                    if when < self._now:
                        raise SimulationError("event heap corrupted: time went backwards")
                    self._now = when
                    entry[2](entry[3])
                    executed += 1
                    continue
                event = entry[2]
                if event.cancelled:
                    self._cancelled_pending -= 1
                    if len(free) < free_max:
                        free.append(event)
                    budget += 1  # consumed a dead entry, not an event
                    continue
                if when < self._now:
                    raise SimulationError("event heap corrupted: time went backwards")
                self._now = when
                event.cancelled = True  # guards against stale-handle re-execution
                event.callback(*event.args)
                if len(free) < free_max:
                    free.append(event)
                executed += 1
            if until is not None and until > self._now:
                if not truncated or not self._has_runnable_event_before(until):
                    self._now = until
        finally:
            self._processed += executed
            self._running = False

    def _has_runnable_event_before(self, when: int) -> bool:
        """Whether any non-cancelled event at or before ``when`` is pending."""
        return any(
            entry[0] <= when and (len(entry) == 4 or not entry[2].cancelled)
            for entry in self._heap
        )

    def run_for(self, duration: int) -> None:
        """Run for ``duration`` nanoseconds of simulated time from now."""
        self.run(until=self._now + int(duration))
