"""Named, seeded random-number streams.

Every source of randomness in the simulator (MAC backoff draws, channel
shadowing, bit errors, traffic inter-arrivals, ...) pulls from its own
named stream derived from a single root seed.  This has two benefits:

* **Reproducibility** — a scenario with a given seed produces exactly the
  same packet-level trace on every run, which the test-suite and the
  property-based tests rely on.
* **Variance isolation** — changing, say, the traffic model does not
  perturb the channel-noise sample path, so scheme comparisons (the bar
  charts in the paper's Figs. 3-12) see the same channel realisations.

Streams are derived with :class:`numpy.random.SeedSequence` spawning keyed
by the stream name, so the mapping name → stream is stable regardless of
the order in which streams are first requested.

Keyed substreams
----------------
:meth:`RandomStreams.stream_for` extends the same derivation with integer
keys: ``stream_for("shadowing", sender_id, receiver_id)`` is one
independent stream *per link*, derived only from ``(seed, name, keys)``.
This is what lets the channel skip receivers that are provably out of
range without perturbing any other link's sample path — under a single
shared stream, every skipped draw would shift the randomness of every
radio registered after it.  It is also the paper's own independence
assumption made literal: "losses between the source and different
forwarders are independent" (Section IV).
"""

from __future__ import annotations

import zlib
from typing import Dict, Tuple

import numpy as np

#: Mask applied to user keys so arbitrary ints fit SeedSequence's uint32 words.
_KEY_MASK = 0xFFFFFFFF

#: Marker word separating keyed substreams from plain named streams, so
#: ``stream_for("x", 0)`` can never collide with ``stream("y")`` whatever
#: the CRC of the names.
_KEYED_MARKER = 0x9E3779B9


class RandomStreams:
    """A registry of named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 1) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        self._keyed: Dict[Tuple[str, Tuple[int, ...]], np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed from which every named stream is derived."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream only depends on ``(seed, name)``, never on creation
        order, so adding a new consumer of randomness does not disturb
        existing streams.
        """
        generator = self._streams.get(name)
        if generator is None:
            key = zlib.crc32(name.encode("utf-8"))
            sequence = np.random.SeedSequence(entropy=self._seed, spawn_key=(key,))
            generator = np.random.default_rng(sequence)
            self._streams[name] = generator
        return generator

    def stream_for(self, name: str, *keys: int) -> np.random.Generator:
        """Return the generator for ``name`` keyed by ``keys`` (e.g. a link).

        The stream depends only on ``(seed, name, keys)`` — not on creation
        order, not on how many other streams exist — so per-link draws such
        as ``stream_for("shadowing", sender, receiver)`` are reproducible
        even when the set of links actually exercised changes (receiver
        culling, mobility, registration-order changes).

        Generators are cached: repeated calls with the same key return the
        *same* generator object, whose state advances across calls — that
        is what keeps a link's fading sample path continuous over a run.
        ``stream_for(name)`` with no keys is identical to ``stream(name)``.
        """
        if not keys:
            return self.stream(name)
        cache_key = (name, keys)
        generator = self._keyed.get(cache_key)
        if generator is None:
            spawn_key = (
                zlib.crc32(name.encode("utf-8")),
                _KEYED_MARKER,
                *(int(k) & _KEY_MASK for k in keys),
            )
            sequence = np.random.SeedSequence(entropy=self._seed, spawn_key=spawn_key)
            generator = np.random.default_rng(sequence)
            self._keyed[cache_key] = generator
        return generator

    def fork(self, offset: int) -> "RandomStreams":
        """A new registry with a seed offset; used for independent replications."""
        return RandomStreams(seed=self._seed + int(offset))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        keyed = sorted(f"{name}{list(keys)}" for name, keys in self._keyed)
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)}, keyed={keyed})"
