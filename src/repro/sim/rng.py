"""Named, seeded random-number streams.

Every source of randomness in the simulator (MAC backoff draws, channel
shadowing, bit errors, traffic inter-arrivals, ...) pulls from its own
named stream derived from a single root seed.  This has two benefits:

* **Reproducibility** — a scenario with a given seed produces exactly the
  same packet-level trace on every run, which the test-suite and the
  property-based tests rely on.
* **Variance isolation** — changing, say, the traffic model does not
  perturb the channel-noise sample path, so scheme comparisons (the bar
  charts in the paper's Figs. 3-12) see the same channel realisations.

Streams are derived with :class:`numpy.random.SeedSequence` spawning keyed
by the stream name, so the mapping name → stream is stable regardless of
the order in which streams are first requested.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A registry of named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 1) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed from which every named stream is derived."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream only depends on ``(seed, name)``, never on creation
        order, so adding a new consumer of randomness does not disturb
        existing streams.
        """
        generator = self._streams.get(name)
        if generator is None:
            key = zlib.crc32(name.encode("utf-8"))
            sequence = np.random.SeedSequence(entropy=self._seed, spawn_key=(key,))
            generator = np.random.default_rng(sequence)
            self._streams[name] = generator
        return generator

    def fork(self, offset: int) -> "RandomStreams":
        """A new registry with a seed offset; used for independent replications."""
        return RandomStreams(seed=self._seed + int(offset))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"
