"""Named, seeded random-number streams.

Every source of randomness in the simulator (MAC backoff draws, channel
shadowing, bit errors, traffic inter-arrivals, ...) pulls from its own
named stream derived from a single root seed.  This has two benefits:

* **Reproducibility** — a scenario with a given seed produces exactly the
  same packet-level trace on every run, which the test-suite and the
  property-based tests rely on.
* **Variance isolation** — changing, say, the traffic model does not
  perturb the channel-noise sample path, so scheme comparisons (the bar
  charts in the paper's Figs. 3-12) see the same channel realisations.

Streams are backed by the **Philox counter-based generator**: each stream
is ``Generator(Philox(key=...))`` with a 128-bit key derived by hashing
``(seed, name, keys)``.  A counter-based generator's output is a pure
function of (key, counter), so the mapping name → stream is stable
regardless of the order in which streams are first requested, and
deriving a stream is a single hash — no SeedSequence spawning tree, no
entropy-pool state shared between streams.

Keyed substreams
----------------
:meth:`RandomStreams.stream_for` extends the same derivation with integer
keys: ``stream_for("shadowing", sender_id, receiver_id)`` is one
independent stream *per link*, derived only from ``(seed, name, keys)``.
This is what lets the channel skip receivers that are provably out of
range without perturbing any other link's sample path — under a single
shared stream, every skipped draw would shift the randomness of every
radio registered after it.  It is also the paper's own independence
assumption made literal: "losses between the source and different
forwarders are independent" (Section IV).

Batching contract
-----------------
numpy Generators fill vectorised draws from the same bit stream as
repeated scalar calls, so ``generator.standard_normal(n)`` equals ``n``
scalar draws element for element (same for ``random``, ``normal``,
``standard_exponential``).  The channel's per-link fade buffers and the
:class:`UniformStream` helper below rely on this: buffering draws in
blocks is invisible to any consumer of the value sequence.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

import numpy as np


def _philox_generator(seed: int, name: str, keys: Tuple[int, ...]) -> np.random.Generator:
    """A Philox generator keyed purely by ``(seed, name, keys)``.

    The 128-bit Philox key is the truncated SHA-256 of an unambiguous
    encoding of the triple (the name is length-prefixed so no
    ``(name, keys)`` pair can collide with another by sliding bytes
    between the fields).  Collision probability between any two distinct
    triples is 2**-128 — far below SeedSequence's spawn-key guarantees —
    and the derivation is order-free by construction: no generator's
    stream depends on which other streams exist.
    """
    material = f"{seed}|{len(name)}:{name}|" + ",".join(str(int(k)) for k in keys)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    key = np.frombuffer(digest[:16], dtype=np.uint64)
    return np.random.Generator(np.random.Philox(key=key))


class RandomStreams:
    """A registry of named :class:`numpy.random.Generator` streams."""

    __slots__ = ("_seed", "_streams", "_keyed")

    def __init__(self, seed: int = 1) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        self._keyed: Dict[Tuple[str, Tuple[int, ...]], np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed from which every named stream is derived."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream only depends on ``(seed, name)``, never on creation
        order, so adding a new consumer of randomness does not disturb
        existing streams.
        """
        generator = self._streams.get(name)
        if generator is None:
            generator = _philox_generator(self._seed, name, ())
            self._streams[name] = generator
        return generator

    def stream_for(self, name: str, *keys: int) -> np.random.Generator:
        """Return the generator for ``name`` keyed by ``keys`` (e.g. a link).

        The stream depends only on ``(seed, name, keys)`` — not on creation
        order, not on how many other streams exist — so per-link draws such
        as ``stream_for("shadowing", sender, receiver)`` are reproducible
        even when the set of links actually exercised changes (receiver
        culling, mobility, registration-order changes).

        Generators are cached: repeated calls with the same key return the
        *same* generator object, whose state advances across calls — that
        is what keeps a link's fading sample path continuous over a run.
        ``stream_for(name)`` with no keys is identical to ``stream(name)``.
        """
        if not keys:
            return self.stream(name)
        cache_key = (name, keys)
        generator = self._keyed.get(cache_key)
        if generator is None:
            generator = _philox_generator(self._seed, name, keys)
            self._keyed[cache_key] = generator
        return generator

    def fork(self, offset: int) -> "RandomStreams":
        """A new registry with a seed offset; used for independent replications."""
        return RandomStreams(seed=self._seed + int(offset))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        keyed = sorted(f"{name}{list(keys)}" for name, keys in self._keyed)
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)}, keyed={keyed})"


class UniformStream:
    """Buffered uniform [0, 1) draws from one generator.

    Scalar ``generator.random()`` calls cost ~1 µs each in numpy dispatch
    overhead; this helper refills a 128-draw block at a time and serves
    plain Python floats.  By the batching contract above the served
    sequence is *identical* to scalar draws, so swapping a call site from
    ``rng.random()`` to ``uniforms.take(1)[0]`` (or :meth:`next_float`)
    changes nothing but the wall-clock cost.  Refills splice the unserved
    tail onto the fresh block, so :meth:`take` spans block boundaries
    without skipping or reordering draws.
    """

    BLOCK = 128

    __slots__ = ("generator", "_buffer", "_index")

    def __init__(self, generator: np.random.Generator) -> None:
        self.generator = generator
        self._buffer: List[float] = []
        self._index = 0

    def take(self, count: int) -> List[float]:
        """The stream's next ``count`` uniforms, as plain Python floats."""
        index = self._index
        buffer = self._buffer
        if index + count > len(buffer):
            buffer = buffer[index:] + self.generator.random(self.BLOCK).tolist()
            self._buffer = buffer
            index = 0
        self._index = index + count
        return buffer[index : index + count]

    def next_float(self) -> float:
        """The stream's single next uniform (the scalar hot-path entry point)."""
        index = self._index
        buffer = self._buffer
        if index >= len(buffer):
            buffer = self.generator.random(self.BLOCK).tolist()
            self._buffer = buffer
            index = 0
        self._index = index + 1
        return buffer[index]
