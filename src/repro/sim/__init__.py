"""Discrete-event simulation substrate.

The paper evaluates RIPPLE inside NS-2.  This package provides the
equivalent substrate built from scratch: a deterministic event-heap
simulator (:class:`~repro.sim.engine.Simulator`), cancellable events
(:class:`~repro.sim.engine.Event`), integer-nanosecond time units
(:mod:`repro.sim.units`) and named, seeded random-number streams
(:class:`~repro.sim.rng.RandomStreams`).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RandomStreams
from repro.sim.units import MICROSECOND, MILLISECOND, SECOND, ns_to_seconds, seconds, us

__all__ = [
    "Event",
    "Simulator",
    "RandomStreams",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "ns_to_seconds",
    "seconds",
    "us",
]
