"""The ``corpus`` experiment family: cached sweeps over sampled scenarios.

``python -m repro.corpus`` gates invariants; this family runs the *same*
seeded sample through the ordinary sweep runner and result cache, so the
corpus scenarios become reportable experiments like any figure:

::

    python -m repro.experiments run corpus --jobs 4
    python -m repro.experiments report corpus           # from cache only

The sample is addressed exactly like the gate's (``--seeds N`` maps to
sampling seeds 1..N), so a nightly ``run corpus`` populates the cache the
invariant gate's scenarios hash to — cross-checking that the corpus and
the experiment pipeline agree on what a scenario *is*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.parallel import SweepRunner

#: Default sample size of the experiment family (smaller than the CLI
#: gate's: these runs are long enough to produce meaningful throughput).
CORPUS_SAMPLE = 12

#: Default simulated duration per sampled scenario.
CORPUS_DURATION_S = 0.05


@dataclass(frozen=True)
class CorpusSweepResult:
    """Per-scenario headline numbers of one corpus sweep."""

    #: Stable one-line scenario labels, in sample order.
    labels: List[str]
    throughput_mbps: Dict[str, float]
    events: Dict[str, int]


def run_corpus(
    seed: int = 0,
    sample: int = CORPUS_SAMPLE,
    duration_s: float = CORPUS_DURATION_S,
    runner: Optional[SweepRunner] = None,
) -> CorpusSweepResult:
    """Run ``sample`` seed-determined corpus scenarios through ``runner``."""
    from repro.corpus.space import default_space

    if runner is None:
        runner = SweepRunner()
    space = default_space(duration_s=duration_s)
    combos = space.sample(sample, sample_seed=seed)
    labels = [space.describe(combo) for combo in combos]
    configs = [space.spec_for(combo).to_config() for combo in combos]
    results = runner.run(configs)
    throughput = {}
    events = {}
    for label, result in zip(labels, results):
        throughput[label] = result.total_throughput_mbps
        events[label] = result.events_processed
    return CorpusSweepResult(labels=labels, throughput_mbps=throughput, events=events)
