"""Short-lived TCP transfers (web traffic): Fig. 8.

The Fig. 1 topology carries 10 ON/OFF web flows between each of the three
source/destination pairs (flows 1-10 on 0→3, 11-20 on 0→4, 21-30 on
5→7): Pareto transfer sizes (mean 80 KB, shape 1.5) separated by
exponential think times (mean 1 s).  Fig. 8 plots the sum throughput of
all active flows for DCF, AFR and RIPPLE on ROUTE0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.parallel import SweepRunner
from repro.experiments.runner import ScenarioConfig
from repro.topology.spec import FlowSpec, TopologySpec
from repro.topology.standard import fig1_topology

#: Schemes plotted in Fig. 8.
WEB_SCHEMES: tuple[str, ...] = ("D", "A", "R16")
#: Number of web users per source/destination pair (Section IV-D).
WEB_FLOWS_PER_PAIR = 10


def web_topology(flows_per_pair: int = WEB_FLOWS_PER_PAIR) -> TopologySpec:
    """The Fig. 1 topology re-flavoured with ``flows_per_pair`` web flows per pair."""
    base = fig1_topology()
    pairs = [(0, 3), (0, 4), (5, 7)]
    flows: List[FlowSpec] = []
    flow_id = 1
    for src, dst in pairs:
        for _ in range(flows_per_pair):
            flows.append(FlowSpec(flow_id=flow_id, src=src, dst=dst, kind="web", label=f"web {src}->{dst}"))
            flow_id += 1
    base.flows = flows
    return base


@dataclass
class WebResult:
    """Fig. 8: sum throughput of all active web flows per scheme."""

    #: total_mbps[scheme_label] = sum throughput of the 30 web flows
    total_mbps: Dict[str, float] = field(default_factory=dict)
    #: transfers_completed[scheme_label] = completed web objects across flows
    transfers_completed: Dict[str, int] = field(default_factory=dict)


def web_grid(
    schemes: Sequence[str] = WEB_SCHEMES,
    flows_per_pair: int = WEB_FLOWS_PER_PAIR,
    bit_error_rate: float = 1e-6,
    duration_s: float = 2.0,
    seed: int = 1,
) -> List[ScenarioConfig]:
    """The declarative config grid for Fig. 8: one run per scheme."""
    topology = web_topology(flows_per_pair)
    return [
        ScenarioConfig(
            topology=topology,
            scheme_label=label,
            route_set="ROUTE0",
            bit_error_rate=bit_error_rate,
            duration_s=duration_s,
            seed=seed,
        )
        for label in schemes
    ]


def run_web_traffic(
    schemes: Sequence[str] = WEB_SCHEMES,
    flows_per_pair: int = WEB_FLOWS_PER_PAIR,
    bit_error_rate: float = 1e-6,
    duration_s: float = 2.0,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
) -> WebResult:
    """Reproduce Fig. 8 (sum throughput of the short-transfer mix)."""
    configs = web_grid(schemes, flows_per_pair, bit_error_rate, duration_s, seed)
    outcomes = (runner or SweepRunner()).run(configs)
    result = WebResult()
    for label, outcome in zip(schemes, outcomes):
        result.total_mbps[label] = outcome.total_throughput_mbps
        result.transfers_completed[label] = sum(
            flow.packets_received for flow in outcome.flows
        )
    return result
