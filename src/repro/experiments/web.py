"""Short-lived TCP transfers (web traffic): Fig. 8.

The Fig. 1 topology carries 10 ON/OFF web flows between each of the three
source/destination pairs (flows 1-10 on 0→3, 11-20 on 0→4, 21-30 on
5→7): Pareto transfer sizes (mean 80 KB, shape 1.5) separated by
exponential think times (mean 1 s).  Fig. 8 plots the sum throughput of
all active flows for DCF, AFR and RIPPLE on ROUTE0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.grids import scenario_grid
from repro.experiments.parallel import SweepRunner
from repro.experiments.runner import ScenarioConfig
from repro.topology.spec import TopologySpec
from repro.topology.standard import web_topology as _web_topology

#: Schemes plotted in Fig. 8.
WEB_SCHEMES: tuple[str, ...] = ("D", "A", "R16")
#: Number of web users per source/destination pair (Section IV-D).
WEB_FLOWS_PER_PAIR = 10


def web_topology(flows_per_pair: int = WEB_FLOWS_PER_PAIR) -> TopologySpec:
    """The Fig. 1 topology re-flavoured with ``flows_per_pair`` web flows per pair.

    Now lives in :mod:`repro.topology.standard` (registered as
    ``fig1-web``/``web`` in the topology registry); re-exported here for
    backward compatibility.
    """
    return _web_topology(flows_per_pair=flows_per_pair)


@dataclass
class WebResult:
    """Fig. 8: sum throughput of all active web flows per scheme."""

    #: total_mbps[scheme_label] = sum throughput of the 30 web flows
    total_mbps: Dict[str, float] = field(default_factory=dict)
    #: transfers_completed[scheme_label] = completed web objects across flows
    transfers_completed: Dict[str, int] = field(default_factory=dict)


def web_grid(
    schemes: Sequence[str] = WEB_SCHEMES,
    flows_per_pair: int = WEB_FLOWS_PER_PAIR,
    bit_error_rate: float = 1e-6,
    duration_s: float = 2.0,
    seed: int = 1,
) -> List[ScenarioConfig]:
    """The declarative config grid for Fig. 8: one run per scheme."""
    base = ScenarioConfig(
        topology=web_topology(flows_per_pair),
        route_set="ROUTE0",
        bit_error_rate=bit_error_rate,
        duration_s=duration_s,
        seed=seed,
    )
    configs, _keys = scenario_grid(base, {"scheme_label": schemes})
    return configs


def run_web_traffic(
    schemes: Sequence[str] = WEB_SCHEMES,
    flows_per_pair: int = WEB_FLOWS_PER_PAIR,
    bit_error_rate: float = 1e-6,
    duration_s: float = 2.0,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
) -> WebResult:
    """Reproduce Fig. 8 (sum throughput of the short-transfer mix)."""
    configs = web_grid(schemes, flows_per_pair, bit_error_rate, duration_s, seed)
    outcomes = (runner or SweepRunner()).run(configs)
    result = WebResult()
    for label, outcome in zip(schemes, outcomes):
        result.total_mbps[label] = outcome.total_throughput_mbps
        result.transfers_completed[label] = sum(
            flow.packets_received for flow in outcome.flows
        )
    return result
