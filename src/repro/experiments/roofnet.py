"""Roofnet topology throughput measurements: Fig. 12(a)-(d).

Source/destination pairs 3, 4 and 5 relay hops apart (two examples of
each, labelled ``3(1)``, ``3(2)``, ... as in the paper) are measured one
at a time on the synthetic Roofnet-like layout, at 6 Mb/s and 216 Mb/s,
with and without nearby hidden terminals, under DCF, AFR and RIPPLE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.grids import Axis, scenario_grid
from repro.experiments.parallel import SweepRunner
from repro.experiments.runner import ScenarioConfig
from repro.phy.params import HIGH_RATE_PHY, LOW_RATE_PHY, PhyParams
from repro.topology.roofnet import roofnet_scenario

#: Schemes plotted in Fig. 12.
ROOFNET_SCHEMES: tuple[str, ...] = ("D", "A", "R16")


@dataclass
class RoofnetResult:
    """One panel of Fig. 12: per-pair throughput for each scheme."""

    data_rate_mbps: float
    hidden_terminals: bool
    #: throughput_mbps[scheme_label][pair_label] = measured flow throughput
    throughput_mbps: Dict[str, Dict[str, float]] = field(default_factory=dict)


def _phy_for_rate(data_rate_mbps: float) -> PhyParams:
    if data_rate_mbps >= 100:
        return HIGH_RATE_PHY
    return LOW_RATE_PHY


def roofnet_grid(
    data_rate_mbps: float = 6.0,
    hidden_terminals: bool = False,
    schemes: Sequence[str] = ROOFNET_SCHEMES,
    hop_counts: Tuple[int, ...] = (3, 3, 4, 4, 5, 5),
    bit_error_rate: float = 1e-6,
    duration_s: float = 1.0,
    seed: int = 7,
    max_flows: int | None = None,
) -> Tuple[List[ScenarioConfig], List[Tuple[str, int, str]]]:
    """The declarative config grid for one Fig. 12 panel.

    Returns ``(configs, keys)`` where each key is the ``(scheme label,
    measured flow id, pair label)`` the same-index config measures.
    """
    from dataclasses import replace

    topology = roofnet_scenario(hop_counts=hop_counts, include_hidden=hidden_terminals, seed=seed)
    measured = [flow for flow in topology.flows if flow.kind == "tcp"]
    if max_flows is not None:
        measured = measured[:max_flows]
    hidden = {flow.flow_id: flow for flow in topology.flows if flow.kind != "tcp"}

    def activate(config: ScenarioConfig, indexed) -> ScenarioConfig:
        index, flow = indexed
        active = [flow.flow_id]
        if hidden_terminals:
            hidden_id = 200 + index
            if hidden_id in hidden:
                active.append(hidden_id)
        return replace(config, active_flows=active)

    base = ScenarioConfig(
        topology=topology,
        route_set="ROUTE0",
        bit_error_rate=bit_error_rate,
        duration_s=duration_s,
        seed=seed,
        phy=_phy_for_rate(data_rate_mbps),
    )
    configs, keys = scenario_grid(
        base,
        {
            "scheme_label": schemes,
            "pair": Axis(
                list(enumerate(measured)),
                bind=activate,
                key=lambda indexed: (indexed[1].flow_id, indexed[1].label),
            ),
        },
    )
    return configs, [(label, flow_id, flow_label) for label, (flow_id, flow_label) in keys]


def run_roofnet(
    data_rate_mbps: float = 6.0,
    hidden_terminals: bool = False,
    schemes: Sequence[str] = ROOFNET_SCHEMES,
    hop_counts: Tuple[int, ...] = (3, 3, 4, 4, 5, 5),
    bit_error_rate: float = 1e-6,
    duration_s: float = 1.0,
    seed: int = 7,
    max_flows: int | None = None,
    runner: Optional[SweepRunner] = None,
) -> RoofnetResult:
    """Reproduce one panel of Fig. 12."""
    configs, keys = roofnet_grid(
        data_rate_mbps,
        hidden_terminals,
        schemes,
        hop_counts,
        bit_error_rate,
        duration_s,
        seed,
        max_flows,
    )
    outcomes = (runner or SweepRunner()).run(configs)
    result = RoofnetResult(data_rate_mbps=data_rate_mbps, hidden_terminals=hidden_terminals)
    for (label, flow_id, pair_label), outcome in zip(keys, outcomes):
        result.throughput_mbps.setdefault(label, {})[pair_label] = outcome.flow_throughput(flow_id)
    return result
