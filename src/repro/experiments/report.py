"""Plain-text rendering of experiment results.

The paper reports bar charts and tables; since this library runs headless,
each experiment's results can be rendered as an aligned text table whose
rows/series correspond one-to-one with what the paper plots.  Examples and
the EXPERIMENTS.md regeneration script use these helpers.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence


def format_table(
    title: str,
    column_labels: Sequence[str],
    rows: Mapping[str, Sequence[float]],
    value_format: str = "{:8.2f}",
    row_header: str = "scheme",
) -> str:
    """Render ``rows`` (label -> series) as an aligned text table."""
    label_width = max(len(row_header), *(len(str(label)) for label in rows)) if rows else len(row_header)
    header_cells = [f"{row_header:<{label_width}}"] + [f"{label:>10}" for label in column_labels]
    lines = [title, "  ".join(header_cells)]
    for label, values in rows.items():
        cells = [f"{str(label):<{label_width}}"]
        for value in values:
            cells.append(f"{value_format.format(value):>10}")
        lines.append("  ".join(cells))
    return "\n".join(lines)


def nested_to_rows(
    nested: Mapping[str, Mapping[object, float]], column_keys: Sequence[object]
) -> Dict[str, list]:
    """Flatten {series: {x: y}} into {series: [y for x in column_keys]}."""
    rows: Dict[str, list] = {}
    for series, mapping in nested.items():
        rows[series] = [mapping.get(key, float("nan")) for key in column_keys]
    return rows


def render_panel(
    title: str, nested: Mapping[str, Mapping[object, float]], column_keys: Sequence[object]
) -> str:
    """Convenience wrapper: title + table for a {scheme: {x: throughput}} panel."""
    rows = nested_to_rows(nested, column_keys)
    return format_table(title, [str(key) for key in column_keys], rows)
