"""Propagation-model comparison: the component pack's demo experiment family.

The same 4-hop relay line carrying one long-lived TCP flow, evaluated
under every registered propagation model (log-normal ``shadowing``,
``rayleigh``, ``rician``) × the paper's D and R16 schemes — the smallest
grid that shows what the propagation registry buys: the opportunistic
schemes' advantage grows as the channel's per-frame variance grows,
because independent per-link fades are exactly what forwarder diversity
harvests.

Like every family, the grid is declarative (:func:`fading_grid`) and the
sweep flows through the shared runner/cache; ``python -m
repro.experiments run fading`` is the CLI face.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.grids import propagation_axis, scenario_grid
from repro.experiments.parallel import SweepRunner
from repro.experiments.runner import ScenarioConfig
from repro.topology.standard import line_topology

#: Propagation models compared (all registered entries).
FADING_MODELS: Tuple[str, ...] = ("shadowing", "rayleigh", "rician")

#: Schemes plotted per model.
FADING_SCHEMES: Tuple[str, ...] = ("D", "R16")

#: Model-specific builder parameters used by the family (the Rician point
#: uses a moderate K so it sits visibly between Rayleigh and shadowing).
FADING_PARAMS: Mapping[str, Dict[str, object]] = {"rician": {"k_factor": 4.0}}


@dataclass
class FadingResult:
    """Flow-1 throughput per (scheme, propagation model)."""

    #: throughput_mbps[scheme_label][model_name] = flow 1 throughput in Mb/s
    throughput_mbps: Dict[str, Dict[str, float]] = field(default_factory=dict)


def fading_grid(
    models: Sequence[str] = FADING_MODELS,
    schemes: Sequence[str] = FADING_SCHEMES,
    n_hops: int = 4,
    bit_error_rate: float = 1e-6,
    duration_s: float = 1.0,
    seed: int = 1,
) -> Tuple[List[ScenarioConfig], List[Tuple[str, str]]]:
    """The declarative config grid: scheme × propagation model."""
    base = ScenarioConfig(
        topology=line_topology(n_hops),
        route_set="ROUTE0",
        bit_error_rate=bit_error_rate,
        duration_s=duration_s,
        seed=seed,
    )
    return scenario_grid(
        base,
        {
            "scheme_label": schemes,
            "propagation": propagation_axis(models, params=FADING_PARAMS),
        },
    )


def run_fading(
    models: Sequence[str] = FADING_MODELS,
    schemes: Sequence[str] = FADING_SCHEMES,
    n_hops: int = 4,
    bit_error_rate: float = 1e-6,
    duration_s: float = 1.0,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
) -> FadingResult:
    """Run the scheme × propagation grid and collect flow-1 throughput."""
    configs, keys = fading_grid(models, schemes, n_hops, bit_error_rate, duration_s, seed)
    outcomes = (runner or SweepRunner()).run(configs)
    result = FadingResult()
    for (label, model), outcome in zip(keys, outcomes):
        result.throughput_mbps.setdefault(label, {})[model] = outcome.flow_throughput(1)
    return result
