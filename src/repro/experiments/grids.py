"""Declarative scenario grids: experiment families as data, not loops.

Every figure/table of the paper is a Cartesian sweep over a handful of
axes (scheme label × flow count, scheme × node speed, ...).  This module
lets an experiment family state that grid declaratively:

.. code-block:: python

    configs, keys = scenario_grid(
        base_config,
        {
            "scheme_label": ("D", "A", "R16"),
            "n_flows": Axis((1, 3, 5), bind=lambda cfg, n:
                            replace(cfg, topology=fig5a_topology(n_flows=n))),
        },
    )

Axes are swept in declaration order with the last axis fastest (exactly
like nested for-loops, and like
:func:`~repro.experiments.parallel.expand_grid`).  A plain sequence axis
whose name is a :class:`~repro.experiments.runner.ScenarioConfig` field
binds with ``dataclasses.replace``; an :class:`Axis` can carry a custom
``bind`` (for values that construct topologies, mobility specs, active
flow lists, ...) and a custom ``key`` (the label the result tables use —
e.g. the *length* of an active-flow tuple).

``keys`` come back as one tuple per config (scalars for one-axis grids),
which is what the family modules zip against the sweep results.
"""

from __future__ import annotations

import dataclasses
from itertools import product
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.runner import ScenarioConfig
from repro.phy.params import PhyParams


@dataclasses.dataclass(frozen=True)
class Axis:
    """One sweep dimension: its values plus how they bind and label.

    ``bind(config, value)`` returns the config with the value applied
    (default: ``dataclasses.replace`` on the field named like the axis);
    ``key(value)`` is the table label for the grid cell (default: the
    value itself).
    """

    values: Sequence
    bind: Optional[Callable[[ScenarioConfig, object], ScenarioConfig]] = None
    key: Optional[Callable[[object], object]] = None


def _as_axis(name: str, axis: Union[Axis, Sequence]) -> Axis:
    if isinstance(axis, Axis):
        return axis
    field_names = {f.name for f in dataclasses.fields(ScenarioConfig)}
    if name not in field_names:
        raise TypeError(
            f"axis {name!r} is not a ScenarioConfig field; pass an Axis with "
            f"an explicit bind for derived axes"
        )
    return Axis(values=tuple(axis))


def scenario_grid(
    base: ScenarioConfig,
    axes: Mapping[str, Union[Axis, Sequence]],
) -> Tuple[List[ScenarioConfig], List[object]]:
    """Expand ``base`` over ``axes``; returns ``(configs, keys)``.

    ``keys[i]`` is the tuple of per-axis labels for ``configs[i]``
    (unwrapped to a scalar when there is a single axis), in the same
    declaration order as ``axes``.
    """
    named: Dict[str, Axis] = {name: _as_axis(name, axis) for name, axis in axes.items()}
    names = list(named)
    configs: List[ScenarioConfig] = []
    keys: List[object] = []
    for combo in product(*(named[name].values for name in names)):
        config = base
        key_parts = []
        for name, value in zip(names, combo):
            axis = named[name]
            if axis.bind is not None:
                config = axis.bind(config, value)
            else:
                config = dataclasses.replace(config, **{name: value})
            key_parts.append(axis.key(value) if axis.key is not None else value)
        configs.append(config)
        keys.append(tuple(key_parts) if len(key_parts) > 1 else key_parts[0])
    return configs, keys


def propagation_axis(
    names: Sequence[str],
    params: Optional[Mapping[str, Dict[str, object]]] = None,
    key: Optional[Callable] = None,
) -> Axis:
    """An axis sweeping the PHY's propagation model by registered name.

    Each value is a name in :data:`repro.phy.registry.PROPAGATION_MODELS`;
    ``params`` optionally maps a name to its ``propagation_params`` dict
    (e.g. ``{"rician": {"k_factor": 8}}``).  The bound config keeps its
    existing PHY profile (or the default) with only the propagation
    fields replaced, so rate/threshold sweeps compose with this axis.
    """
    model_params = dict(params or {})

    def bind(config: ScenarioConfig, name: str) -> ScenarioConfig:
        phy = config.phy if config.phy is not None else PhyParams()
        phy = dataclasses.replace(
            phy, propagation=name, propagation_params=model_params.get(name)
        )
        return dataclasses.replace(config, phy=phy)

    return Axis(values=tuple(names), bind=bind, key=key)


def topology_axis(values: Sequence, build: Callable, key: Optional[Callable] = None) -> Axis:
    """An axis whose values parameterise the *topology* (built once per value).

    ``build(value)`` constructs the :class:`TopologySpec`; construction is
    memoised up front so a multi-scheme grid reuses one spec object per
    value instead of regenerating it for every scheme.
    """
    built = {value: build(value) for value in values}
    return Axis(
        values=tuple(values),
        bind=lambda config, value: dataclasses.replace(config, topology=built[value]),
        key=key,
    )
