"""Long-lived TCP transfers: Figs. 3 and 4 of the paper.

Each panel of Fig. 3 (BER 1e-6) and Fig. 4 (BER 1e-5) uses one of the
predetermined route sets of Table II (ROUTE0/1/2) and plots, for 1, 2 and
3 simultaneously active flows, the throughput of the five schemes
S / D / R1 / A / R16.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.grids import Axis, scenario_grid
from repro.experiments.parallel import SweepRunner
from repro.experiments.runner import (
    DEFAULT_SCHEME_LABELS,
    ScenarioConfig,
)
from repro.topology.standard import fig1_topology

#: Flow activation sets used by the figures: flow 1, flows 1+2, flows 1+2+3.
FLOW_SETS: Tuple[Tuple[int, ...], ...] = ((1,), (1, 2), (1, 2, 3))


@dataclass
class LongLivedPanel:
    """One panel of Fig. 3 / Fig. 4: total throughput per scheme per flow count."""

    route_set: str
    bit_error_rate: float
    #: throughput_mbps[scheme_label][n_flows] = total TCP throughput in Mb/s
    throughput_mbps: Dict[str, Dict[int, float]] = field(default_factory=dict)
    #: per_flow_mbps[scheme_label][n_flows] = list of per-flow throughputs
    per_flow_mbps: Dict[str, Dict[int, List[float]]] = field(default_factory=dict)


def longlived_panel_grid(
    route_set: str = "ROUTE0",
    bit_error_rate: float = 1e-6,
    scheme_labels: Sequence[str] = DEFAULT_SCHEME_LABELS,
    flow_sets: Sequence[Tuple[int, ...]] = FLOW_SETS,
    duration_s: float = 1.0,
    seed: int = 1,
) -> Tuple[List[ScenarioConfig], List[Tuple[str, int]]]:
    """The declarative config grid for one panel.

    Returns ``(configs, keys)`` where each key is the ``(scheme label,
    flow count)`` cell the same-index config fills.
    """
    base = ScenarioConfig(
        topology=fig1_topology(),
        route_set=route_set,
        bit_error_rate=bit_error_rate,
        duration_s=duration_s,
        seed=seed,
    )
    return scenario_grid(
        base,
        {
            "scheme_label": scheme_labels,
            "active_flows": Axis(
                flow_sets,
                bind=lambda config, flows: replace(config, active_flows=list(flows)),
                key=len,
            ),
        },
    )


def run_longlived_panel(
    route_set: str = "ROUTE0",
    bit_error_rate: float = 1e-6,
    scheme_labels: Sequence[str] = DEFAULT_SCHEME_LABELS,
    flow_sets: Sequence[Tuple[int, ...]] = FLOW_SETS,
    duration_s: float = 1.0,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
) -> LongLivedPanel:
    """Reproduce one panel of Fig. 3 (BER 1e-6) or Fig. 4 (BER 1e-5)."""
    configs, keys = longlived_panel_grid(
        route_set, bit_error_rate, scheme_labels, flow_sets, duration_s, seed
    )
    results = (runner or SweepRunner()).run(configs)
    panel = LongLivedPanel(route_set=route_set, bit_error_rate=bit_error_rate)
    for (label, n_flows), result in zip(keys, results):
        panel.throughput_mbps.setdefault(label, {})[n_flows] = result.total_throughput_mbps
        panel.per_flow_mbps.setdefault(label, {})[n_flows] = [
            flow.throughput_mbps for flow in result.flows
        ]
    return panel


def run_fig3(
    duration_s: float = 1.0, seed: int = 1, runner: Optional[SweepRunner] = None
) -> Dict[str, LongLivedPanel]:
    """All three panels of Fig. 3 (clear channel, BER 1e-6)."""
    return {
        route_set: run_longlived_panel(
            route_set, 1e-6, duration_s=duration_s, seed=seed, runner=runner
        )
        for route_set in ("ROUTE0", "ROUTE1", "ROUTE2")
    }


def run_fig4(
    duration_s: float = 1.0, seed: int = 1, runner: Optional[SweepRunner] = None
) -> Dict[str, LongLivedPanel]:
    """All three panels of Fig. 4 (noisy channel, BER 1e-5)."""
    return {
        route_set: run_longlived_panel(
            route_set, 1e-5, duration_s=duration_s, seed=seed, runner=runner
        )
        for route_set in ("ROUTE0", "ROUTE1", "ROUTE2")
    }
