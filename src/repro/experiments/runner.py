"""Scenario assembly and execution shared by every experiment.

An experiment module (one per paper table/figure) describes *what* to run
— a topology spec, a route set, which flows are active, which scheme label
from the paper's figures — and this module turns that into a wired-up
:class:`~repro.topology.network.WirelessNetwork`, runs it, and collects
per-flow results.

The paper's figure legends use five scheme labels; they map onto the
library's MAC schemes and route choices as follows:

========  =========================  =============================
label     MAC scheme                 route used
========  =========================  =============================
``S``     ``dcf``                    the direct (shortest) path
``D``     ``dcf``                    the predetermined route set
``A``     ``afr``                    the predetermined route set
``R1``    ``ripple1`` (no aggr.)     the predetermined route set
``R16``   ``ripple`` (16-pkt aggr.)  the predetermined route set
========  =========================  =============================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.flows import FlowResult, summarize_tcp_flow, summarize_udp_flow, total_throughput_mbps
from repro.metrics.mos import VoipQuality
from repro.mobility.spec import MobilitySpec
from repro.phy.error_models import BitErrorModel
from repro.phy.params import PhyParams
from repro.routing.dynamic import AdaptiveEtxRouting
from repro.routing.static import StaticRouting
from repro.sim.units import seconds
from repro.topology.network import WirelessNetwork
from repro.topology.spec import FlowSpec, TopologySpec
from repro.traffic.cbr import SaturatingSource
from repro.traffic.ftp import FtpApplication
from repro.traffic.voip import VoipFlow
from repro.traffic.web import WebFlow
from repro.transport.tcp import TcpSender, TcpSink
from repro.transport.udp import UdpReceiver, UdpSender

#: Paper figure label -> (library scheme name, route-set override or None).
PAPER_SCHEMES: Dict[str, Tuple[str, Optional[str]]] = {
    "S": ("dcf", "DIRECT"),
    "D": ("dcf", None),
    "A": ("afr", None),
    "R1": ("ripple1", None),
    "R16": ("ripple", None),
    "preExOR": ("preexor", None),
    "MCExOR": ("mcexor", None),
}

#: Default order in which the figures plot the scheme bars.
DEFAULT_SCHEME_LABELS: Tuple[str, ...] = ("S", "D", "R1", "A", "R16")


@dataclass
class ScenarioConfig:
    """Everything needed to run one simulation."""

    topology: TopologySpec
    scheme_label: str = "D"
    route_set: str = "ROUTE0"
    active_flows: Optional[Sequence[int]] = None  # None = all flows in the spec
    bit_error_rate: float = 1e-6
    duration_s: float = 1.0
    warmup_s: float = 0.0
    seed: int = 1
    phy: Optional[PhyParams] = None
    tcp_window: int = 64
    max_forwarders: int = 5
    max_aggregation: Optional[int] = None
    #: Time-varying topology; None (or a static spec) reproduces the paper's
    #: fixed-placement behaviour exactly.
    mobility: Optional[MobilitySpec] = None

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-safe representation.

        The sweep cache hashes this dict (sorted-key JSON) to key cached
        results, so every field that influences the simulation must appear
        here and the representation must be deterministic.
        """
        return {
            "topology": self.topology.to_dict(),
            "scheme_label": self.scheme_label,
            "route_set": self.route_set,
            "active_flows": None if self.active_flows is None else list(self.active_flows),
            "bit_error_rate": self.bit_error_rate,
            "duration_s": self.duration_s,
            "warmup_s": self.warmup_s,
            "seed": self.seed,
            "phy": None if self.phy is None else self.phy.to_dict(),
            "tcp_window": self.tcp_window,
            "max_forwarders": self.max_forwarders,
            "max_aggregation": self.max_aggregation,
            "mobility": None if self.mobility is None else self.mobility.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioConfig":
        from repro.phy.params import PhyParams
        from repro.topology.spec import TopologySpec

        phy = data.get("phy")
        active = data.get("active_flows")
        max_aggregation = data.get("max_aggregation")
        mobility = data.get("mobility")
        return cls(
            topology=TopologySpec.from_dict(data["topology"]),
            scheme_label=str(data["scheme_label"]),
            route_set=str(data["route_set"]),
            active_flows=None if active is None else [int(f) for f in active],
            bit_error_rate=float(data["bit_error_rate"]),
            duration_s=float(data["duration_s"]),
            warmup_s=float(data.get("warmup_s", 0.0)),
            seed=int(data["seed"]),
            phy=None if phy is None else PhyParams.from_dict(phy),
            tcp_window=int(data.get("tcp_window", 64)),
            max_forwarders=int(data.get("max_forwarders", 5)),
            max_aggregation=None if max_aggregation is None else int(max_aggregation),
            mobility=None if mobility is None else MobilitySpec.from_dict(mobility),
        )


@dataclass
class ScenarioResult:
    """Per-flow results plus handy aggregates for one simulation run."""

    config: ScenarioConfig
    flows: List[FlowResult] = field(default_factory=list)
    voip_quality: Dict[int, object] = field(default_factory=dict)
    events_processed: int = 0

    @property
    def total_throughput_mbps(self) -> float:
        return total_throughput_mbps([f for f in self.flows if f.kind == "tcp"])

    def flow_throughput(self, flow_id: int) -> float:
        for flow in self.flows:
            if flow.flow_id == flow_id:
                return flow.throughput_mbps
        raise KeyError(f"flow {flow_id} not in results")

    @property
    def reordering_ratio(self) -> float:
        received = sum(f.packets_received for f in self.flows if f.kind == "tcp")
        reordered = sum(f.reordered for f in self.flows if f.kind == "tcp")
        return reordered / received if received else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation; ``from_dict`` is its exact inverse."""
        return {
            "config": self.config.to_dict(),
            "flows": [flow.to_dict() for flow in self.flows],
            "voip_quality": {
                str(flow_id): quality.to_dict()
                for flow_id, quality in sorted(self.voip_quality.items())
            },
            "events_processed": self.events_processed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioResult":
        return cls(
            config=ScenarioConfig.from_dict(data["config"]),
            flows=[FlowResult.from_dict(flow) for flow in data.get("flows", [])],
            voip_quality={
                int(flow_id): VoipQuality.from_dict(quality)
                for flow_id, quality in data.get("voip_quality", {}).items()
            },
            events_processed=int(data.get("events_processed", 0)),
        )


def resolve_scheme(scheme_label: str, default_route_set: str) -> Tuple[str, str]:
    """Map a paper scheme label onto (library scheme, route set)."""
    if scheme_label not in PAPER_SCHEMES:
        raise ValueError(f"unknown scheme label {scheme_label!r}; known: {sorted(PAPER_SCHEMES)}")
    scheme, route_override = PAPER_SCHEMES[scheme_label]
    return scheme, route_override or default_route_set


def build_network(config: ScenarioConfig) -> Tuple[WirelessNetwork, object]:
    """Create the network, install the scheme's stack and the transport layer.

    With a live (non-static) ``config.mobility``, the predetermined route
    table becomes the *fallback* of an
    :class:`~repro.routing.dynamic.AdaptiveEtxRouting` over the initial
    connectivity graph, and a mobility manager is installed that moves the
    radios and periodically re-estimates links so routes and forwarder
    lists track the changing topology.  A ``None`` or static spec leaves
    the build byte-for-byte identical to the fixed-placement path.
    """
    scheme, route_set = resolve_scheme(config.scheme_label, config.route_set)
    topology = config.topology
    if route_set not in topology.route_sets:
        raise KeyError(f"topology {topology.name} has no route set {route_set!r}")
    network = WirelessNetwork(
        phy=config.phy,
        error_model=BitErrorModel(config.bit_error_rate),
        seed=config.seed,
    )
    network.add_nodes(topology.positions)
    routing = StaticRouting(topology.routes(route_set), max_forwarders=config.max_forwarders)
    mobile = config.mobility is not None and not config.mobility.is_static
    if mobile:
        routing = AdaptiveEtxRouting(
            network.connectivity_graph(),
            fallback=routing,
            max_forwarders=config.max_forwarders,
        )
    mac_kwargs = {}
    if config.max_aggregation is not None:
        mac_kwargs["max_aggregation"] = config.max_aggregation
    network.install_stack(scheme, routing, **mac_kwargs)
    network.install_transport()
    if mobile:
        network.install_mobility(config.mobility)
    return network, routing


def _active_flows(config: ScenarioConfig) -> List[FlowSpec]:
    if config.active_flows is None:
        return list(config.topology.flows)
    wanted = set(config.active_flows)
    return [flow for flow in config.topology.flows if flow.flow_id in wanted]


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Build, run and summarise one scenario."""
    network, _routing = build_network(config)
    duration_ns = seconds(config.duration_s)
    flows = _active_flows(config)
    sinks: Dict[int, TcpSink] = {}
    receivers: Dict[int, UdpReceiver] = {}
    senders: Dict[int, object] = {}
    voip_flows: Dict[int, VoipFlow] = {}
    for flow in flows:
        src_host = network.node(flow.src).transport
        dst_host = network.node(flow.dst).transport
        if flow.kind == "tcp":
            sender = TcpSender(
                network.sim, src_host, flow.flow_id, flow.dst, awnd_segments=config.tcp_window
            )
            sink = TcpSink(network.sim, dst_host, flow.flow_id, peer=flow.src)
            FtpApplication(sender).start()
            sinks[flow.flow_id] = sink
            senders[flow.flow_id] = sender
        elif flow.kind == "web":
            sender = TcpSender(
                network.sim, src_host, flow.flow_id, flow.dst, awnd_segments=config.tcp_window
            )
            sink = TcpSink(network.sim, dst_host, flow.flow_id, peer=flow.src)
            web = WebFlow(network.sim, sender, network.rng.stream_for("web", flow.flow_id))
            web.start()
            sinks[flow.flow_id] = sink
            senders[flow.flow_id] = sender
        elif flow.kind == "udp-saturating":
            udp_sender = UdpSender(network.sim, src_host, flow.flow_id, flow.dst)
            receiver = UdpReceiver(network.sim, dst_host, flow.flow_id)
            source = SaturatingSource(network.sim, udp_sender, network.node(flow.src).mac)
            source.start()
            receivers[flow.flow_id] = receiver
            senders[flow.flow_id] = udp_sender
        elif flow.kind == "voip":
            udp_sender = UdpSender(network.sim, src_host, flow.flow_id, flow.dst)
            receiver = UdpReceiver(network.sim, dst_host, flow.flow_id)
            voip = VoipFlow(
                network.sim,
                udp_sender,
                receiver,
                network.rng.stream_for("voip", flow.flow_id),
            )
            voip.start()
            receivers[flow.flow_id] = receiver
            voip_flows[flow.flow_id] = voip
            senders[flow.flow_id] = udp_sender
        else:
            raise ValueError(f"unknown flow kind {flow.kind!r}")
    if config.warmup_s > 0:
        # Let the scenario reach steady state, then zero every flow counter so
        # the summaries below cover only the measurement window (dividing
        # since-t=0 byte counts by duration_ns would inflate throughput).
        network.run_seconds(config.warmup_s)
        for sink in sinks.values():
            sink.reset_stats()
        for receiver in receivers.values():
            receiver.reset_stats()
        for sender in senders.values():
            reset = getattr(sender, "reset_stats", None)
            if reset is not None:
                reset()
        for voip in voip_flows.values():
            voip.reset_stats()
    network.run_seconds(config.duration_s)
    result = ScenarioResult(config=config, events_processed=network.sim.processed_events)
    for flow in flows:
        if flow.flow_id in sinks:
            result.flows.append(
                summarize_tcp_flow(flow.flow_id, flow.src, flow.dst, sinks[flow.flow_id], duration_ns)
            )
        elif flow.flow_id in receivers:
            sender = senders[flow.flow_id]
            sent = getattr(sender, "stats").sent
            result.flows.append(
                summarize_udp_flow(
                    flow.flow_id, flow.src, flow.dst, receivers[flow.flow_id], sent, duration_ns
                )
            )
    for flow_id, voip in voip_flows.items():
        result.voip_quality[flow_id] = voip.quality()
    return result


def sweep_schemes(
    base_config: ScenarioConfig,
    scheme_labels: Sequence[str] = DEFAULT_SCHEME_LABELS,
    runner: Optional["SweepRunner"] = None,
) -> Dict[str, ScenarioResult]:
    """Run the same scenario once per scheme label (the bars of one figure panel).

    The grid of configs is routed through a
    :class:`~repro.experiments.parallel.SweepRunner`, so passing ``runner``
    enables multiprocessing fan-out and result caching.
    """
    from repro.experiments.parallel import SweepRunner

    configs = [replace(base_config, scheme_label=label) for label in scheme_labels]
    results = (runner or SweepRunner()).run(configs)
    return dict(zip(scheme_labels, results))
