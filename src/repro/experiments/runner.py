"""Scenario assembly and execution shared by every experiment.

An experiment module (one per paper table/figure) describes *what* to run
— a topology spec, a route set, which flows are active, which components
each layer installs — and this module turns that into a wired-up
:class:`~repro.topology.network.WirelessNetwork`, runs it, and collects
per-flow results.

Scenarios are **registry-driven**: the MAC scheme, routing strategy and
traffic kinds are looked up by name in the component registries
(:data:`repro.mac.registry.MAC_SCHEMES`,
:data:`repro.routing.registry.ROUTING_STRATEGIES`,
:data:`repro.traffic.registry.TRAFFIC_KINDS`) from the structured
``mac=``/``routing=``/``traffic=`` fields of :class:`ScenarioConfig` —
see :mod:`repro.spec` for the spec classes and
``python -m repro.experiments run --spec/--set`` for the CLI face.

The paper's figure legends use five scheme labels; they remain available
as a thin alias layer (``scheme_label=``) that expands to the equivalent
specs:

========  =========================  =============================
label     MAC scheme                 route used
========  =========================  =============================
``S``     ``dcf``                    the direct (shortest) path
``D``     ``dcf``                    the predetermined route set
``A``     ``afr``                    the predetermined route set
``R1``    ``ripple1`` (no aggr.)     the predetermined route set
``R16``   ``ripple`` (16-pkt aggr.)  the predetermined route set
========  =========================  =============================

A config built from a label and one built from the expanded specs are
the same scenario: they produce bit-identical results and canonicalize
to the same serialized form (hence the same sweep-cache digest).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.flows import FlowResult, total_throughput_mbps
from repro.metrics.mos import VoipQuality
from repro.mobility.spec import MobilitySpec
from repro.phy.error_models import BitErrorModel
from repro.phy.params import PhyParams
from repro.routing.dynamic import AdaptiveEtxRouting
from repro.serialization import require_keys, require_known_keys
from repro.sim.units import seconds
from repro.spec import MacSpec, RoutingSpec, TrafficSpec, TransportSpec
from repro.topology.network import WirelessNetwork
from repro.topology.spec import FlowSpec, TopologySpec

#: Paper figure label -> (library scheme name, route-set override or None).
PAPER_SCHEMES: Dict[str, Tuple[str, Optional[str]]] = {
    "S": ("dcf", "DIRECT"),
    "D": ("dcf", None),
    "A": ("afr", None),
    "R1": ("ripple1", None),
    "R16": ("ripple", None),
    "preExOR": ("preexor", None),
    "MCExOR": ("mcexor", None),
}

#: Default order in which the figures plot the scheme bars.
DEFAULT_SCHEME_LABELS: Tuple[str, ...] = ("S", "D", "R1", "A", "R16")

#: The traffic spec meaning "each flow keeps its own FlowSpec.kind".
PER_FLOW_TRAFFIC = TrafficSpec("flows")

#: The transport spec an absent ``transport=`` resolves to (the seed's Reno).
DEFAULT_TRANSPORT_SPEC = TransportSpec("reno")


def resolve_scheme(scheme_label: str, default_route_set: str) -> Tuple[str, str]:
    """Map a paper scheme label onto (library scheme, route set)."""
    if scheme_label not in PAPER_SCHEMES:
        raise ValueError(f"unknown scheme label {scheme_label!r}; known: {sorted(PAPER_SCHEMES)}")
    scheme, route_override = PAPER_SCHEMES[scheme_label]
    return scheme, route_override or default_route_set


def expand_scheme_label(scheme_label: str, route_set: str) -> Tuple[MacSpec, RoutingSpec]:
    """The alias layer: a figure label as its equivalent component specs.

    The routing spec only carries a ``route_set`` parameter when the label
    overrides the scenario's own route set (the "S" bars force the DIRECT
    table), so the expansion of a plain label stays parameter-free and
    canonical.
    """
    scheme, resolved_route_set = resolve_scheme(scheme_label, route_set)
    routing_params: Dict[str, object] = {}
    if resolved_route_set != route_set:
        routing_params["route_set"] = resolved_route_set
    return MacSpec(scheme), RoutingSpec("static", routing_params)


@dataclass
class ScenarioConfig:
    """Everything needed to run one simulation."""

    topology: TopologySpec
    scheme_label: str = "D"
    route_set: str = "ROUTE0"
    active_flows: Optional[Sequence[int]] = None  # None = all flows in the spec
    bit_error_rate: float = 1e-6
    duration_s: float = 1.0
    warmup_s: float = 0.0
    seed: int = 1
    phy: Optional[PhyParams] = None
    tcp_window: int = 64
    max_forwarders: int = 5
    max_aggregation: Optional[int] = None
    #: Time-varying topology; None (or a static spec) reproduces the paper's
    #: fixed-placement behaviour exactly.
    mobility: Optional[MobilitySpec] = None
    #: Structured component specs.  Each defaults to None, meaning "derive
    #: from ``scheme_label`` through the alias layer" (mac/routing) or
    #: "per-flow kinds" (traffic); setting one overrides just that layer.
    mac: Optional[MacSpec] = None
    routing: Optional[RoutingSpec] = None
    traffic: Optional[TrafficSpec] = None
    #: Congestion control for TCP-backed flows; None means the default
    #: ``reno`` (the seed's machine — runs and digests stay bit-identical).
    transport: Optional[TransportSpec] = None

    # ------------------------------------------------------------------
    # Component resolution (the registry-facing view)
    # ------------------------------------------------------------------
    def resolved_components(self) -> Tuple[MacSpec, RoutingSpec, TrafficSpec]:
        """The (mac, routing, traffic) specs this config actually installs."""
        mac_default, routing_default = expand_scheme_label(self.scheme_label, self.route_set)
        return (
            (self.mac or mac_default).canonical(),
            (self.routing or routing_default).canonical(),
            (self.traffic or PER_FLOW_TRAFFIC).canonical(),
        )

    def resolved_transport(self) -> TransportSpec:
        """The transport spec this config installs (``reno`` when unset)."""
        return (self.transport or DEFAULT_TRANSPORT_SPEC).canonical()

    def canonical_scheme_label(self) -> Optional[str]:
        """The figure label equivalent to this config's components, if any.

        A config that never set explicit specs is its own label.  A config
        whose explicit specs exactly match a label's expansion (with
        per-flow traffic) collapses back to that label — this is what
        makes the legacy and spec-addressed forms of the same scenario
        serialize (and therefore cache) identically.  Returns None when
        the combination has no label.
        """
        if self.mac is None and self.routing is None and self.traffic is None:
            return self.scheme_label
        mac, routing, traffic = self.resolved_components()
        if traffic != PER_FLOW_TRAFFIC:
            return None
        for label in PAPER_SCHEMES:
            label_mac, label_routing = expand_scheme_label(label, self.route_set)
            if mac == label_mac and routing == label_routing:
                return label
        return None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-safe representation.

        The sweep cache hashes this dict (sorted-key JSON) to key cached
        results, so every field that influences the simulation must appear
        here and the representation must be deterministic.  Component
        specs are canonicalized: when they are equivalent to a scheme
        label the dict keeps the legacy label-only layout, otherwise the
        label is None and the specs appear explicitly.
        """
        data: Dict[str, object] = {
            "topology": self.topology.to_dict(),
            "scheme_label": self.scheme_label,
            "route_set": self.route_set,
            "active_flows": None if self.active_flows is None else list(self.active_flows),
            "bit_error_rate": self.bit_error_rate,
            "duration_s": self.duration_s,
            "warmup_s": self.warmup_s,
            "seed": self.seed,
            "phy": None if self.phy is None else self.phy.to_dict(),
            "tcp_window": self.tcp_window,
            "max_forwarders": self.max_forwarders,
            "max_aggregation": self.max_aggregation,
            "mobility": None if self.mobility is None else self.mobility.to_dict(),
        }
        label = self.canonical_scheme_label()
        if label is None:
            mac, routing, traffic = self.resolved_components()
            data["scheme_label"] = None
            data["mac"] = mac.to_dict()
            data["routing"] = routing.to_dict()
            data["traffic"] = traffic.to_dict()
        else:
            data["scheme_label"] = label
        transport = self.resolved_transport()
        if transport != DEFAULT_TRANSPORT_SPEC:
            # Only a non-default transport appears in the hashed form: the
            # default (and an explicit parameter-free "reno") canonicalize
            # to absence, keeping every pre-registry digest unchanged.
            data["transport"] = transport.to_dict()
        return data

    _FIELDS = (
        "topology", "scheme_label", "route_set", "active_flows",
        "bit_error_rate", "duration_s", "warmup_s", "seed", "phy",
        "tcp_window", "max_forwarders", "max_aggregation", "mobility",
        "mac", "routing", "traffic", "transport",
    )

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioConfig":
        require_known_keys(data, cls._FIELDS, cls.__name__)
        require_keys(
            data,
            ("topology", "route_set", "bit_error_rate", "duration_s", "seed"),
            cls.__name__,
        )
        phy = data.get("phy")
        active = data.get("active_flows")
        max_aggregation = data.get("max_aggregation")
        mobility = data.get("mobility")
        mac = data.get("mac")
        routing = data.get("routing")
        traffic = data.get("traffic")
        transport = data.get("transport")
        scheme_label = data.get("scheme_label", "D")
        return cls(
            topology=TopologySpec.from_dict(data["topology"]),
            scheme_label="D" if scheme_label is None else str(scheme_label),
            route_set=str(data["route_set"]),
            active_flows=None if active is None else [int(f) for f in active],
            bit_error_rate=float(data["bit_error_rate"]),
            duration_s=float(data["duration_s"]),
            warmup_s=float(data.get("warmup_s", 0.0)),
            seed=int(data["seed"]),
            phy=None if phy is None else PhyParams.from_dict(phy),
            tcp_window=int(data.get("tcp_window", 64)),
            max_forwarders=int(data.get("max_forwarders", 5)),
            max_aggregation=None if max_aggregation is None else int(max_aggregation),
            mobility=None if mobility is None else MobilitySpec.from_dict(mobility),
            mac=None if mac is None else MacSpec.from_dict(mac),
            routing=None if routing is None else RoutingSpec.from_dict(routing),
            traffic=None if traffic is None else TrafficSpec.from_dict(traffic),
            transport=None if transport is None else TransportSpec.from_dict(transport),
        )


@dataclass
class ScenarioResult:
    """Per-flow results plus handy aggregates for one simulation run."""

    config: ScenarioConfig
    flows: List[FlowResult] = field(default_factory=list)
    voip_quality: Dict[int, object] = field(default_factory=dict)
    events_processed: int = 0

    @property
    def total_throughput_mbps(self) -> float:
        return total_throughput_mbps([f for f in self.flows if f.kind == "tcp"])

    def flow_throughput(self, flow_id: int) -> float:
        for flow in self.flows:
            if flow.flow_id == flow_id:
                return flow.throughput_mbps
        raise KeyError(f"flow {flow_id} not in results")

    @property
    def reordering_ratio(self) -> float:
        received = sum(f.packets_received for f in self.flows if f.kind == "tcp")
        reordered = sum(f.reordered for f in self.flows if f.kind == "tcp")
        return reordered / received if received else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation; ``from_dict`` is its exact inverse."""
        return {
            "config": self.config.to_dict(),
            "flows": [flow.to_dict() for flow in self.flows],
            "voip_quality": {
                str(flow_id): quality.to_dict()
                for flow_id, quality in sorted(self.voip_quality.items())
            },
            "events_processed": self.events_processed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioResult":
        require_known_keys(
            data, ("config", "flows", "voip_quality", "events_processed"), cls.__name__
        )
        return cls(
            config=ScenarioConfig.from_dict(data["config"]),
            flows=[FlowResult.from_dict(flow) for flow in data.get("flows", [])],
            voip_quality={
                int(flow_id): VoipQuality.from_dict(quality)
                for flow_id, quality in data.get("voip_quality", {}).items()
            },
            events_processed=int(data.get("events_processed", 0)),
        )


def build_network(config: ScenarioConfig) -> Tuple[WirelessNetwork, object]:
    """Create the network, install the configured component stack.

    The MAC scheme and routing strategy come from the component
    registries via ``config.resolved_components()`` — either explicit
    ``mac=``/``routing=`` specs or the ``scheme_label`` alias expansion.

    With a live (non-static) ``config.mobility``, a non-adaptive routing
    protocol becomes the *fallback* of an
    :class:`~repro.routing.dynamic.AdaptiveEtxRouting` over the initial
    connectivity graph, and a mobility manager is installed that moves the
    radios and periodically re-estimates links so routes and forwarder
    lists track the changing topology.  A ``None`` or static spec leaves
    the build byte-for-byte identical to the fixed-placement path.
    """
    from repro.routing.registry import ROUTING_STRATEGIES

    mac_spec, routing_spec, _traffic_spec = config.resolved_components()
    network = WirelessNetwork(
        phy=config.phy,
        error_model=BitErrorModel(config.bit_error_rate),
        seed=config.seed,
    )
    network.add_nodes(config.topology.positions)
    routing_builder = ROUTING_STRATEGIES.lookup(routing_spec.name)
    routing = routing_builder(network, config, **routing_spec.params)
    mobile = config.mobility is not None and not config.mobility.is_static
    if mobile and not isinstance(routing, AdaptiveEtxRouting):
        routing = AdaptiveEtxRouting(
            network.connectivity_graph(),
            fallback=routing,
            max_forwarders=config.max_forwarders,
        )
    mac_kwargs = dict(mac_spec.params)
    if config.max_aggregation is not None:
        mac_kwargs["max_aggregation"] = config.max_aggregation
    network.install_stack(mac_spec.name, routing, **mac_kwargs)
    network.install_transport()
    if mobile:
        network.install_mobility(config.mobility)
    return network, routing


def _active_flows(config: ScenarioConfig) -> List[FlowSpec]:
    if config.active_flows is None:
        return list(config.topology.flows)
    wanted = set(config.active_flows)
    return [flow for flow in config.topology.flows if flow.flow_id in wanted]


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Build, run and summarise one scenario.

    Traffic is installed through the traffic-kind registry: each active
    flow's kind (its own ``FlowSpec.kind``, or the config's ``traffic``
    spec when that forces a single kind) resolves to an installer that
    wires the senders/receivers and returns a driver used for warmup
    resets and result summaries.
    """
    from repro.traffic.registry import TRAFFIC_KINDS

    network, _routing = build_network(config)
    duration_ns = seconds(config.duration_s)
    flows = _active_flows(config)
    _mac, _rt, traffic_spec = config.resolved_components()
    drivers = []
    for flow in flows:
        kind = flow.kind if traffic_spec.per_flow else traffic_spec.name
        installer = TRAFFIC_KINDS.get(kind)
        if installer is None:
            raise ValueError(
                f"unknown flow kind {kind!r}; known: {TRAFFIC_KINDS.known_names()}"
            )
        drivers.append(installer(network, config, flow, **traffic_spec.params))
    if config.warmup_s > 0:
        # Let the scenario reach steady state, then zero every flow counter so
        # the summaries below cover only the measurement window (dividing
        # since-t=0 byte counts by duration_ns would inflate throughput).
        network.run_seconds(config.warmup_s)
        for driver in drivers:
            driver.reset_stats()
    network.run_seconds(config.duration_s)
    result = ScenarioResult(config=config, events_processed=network.sim.processed_events)
    for driver in drivers:
        flow_result = driver.summarize(duration_ns)
        if flow_result is not None:
            result.flows.append(flow_result)
    for driver in drivers:
        quality = driver.quality()
        if quality is not None:
            result.voip_quality[driver.flow.flow_id] = quality
    return result


def sweep_schemes(
    base_config: ScenarioConfig,
    scheme_labels: Sequence[str] = DEFAULT_SCHEME_LABELS,
    runner: Optional["SweepRunner"] = None,
) -> Dict[str, ScenarioResult]:
    """Run the same scenario once per scheme label (the bars of one figure panel).

    The grid of configs is routed through a
    :class:`~repro.experiments.parallel.SweepRunner`, so passing ``runner``
    enables multiprocessing fan-out and result caching.
    """
    from repro.experiments.parallel import SweepRunner

    configs = [replace(base_config, scheme_label=label) for label in scheme_labels]
    results = (runner or SweepRunner()).run(configs)
    return dict(zip(scheme_labels, results))
