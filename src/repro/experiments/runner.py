"""Scenario assembly and execution shared by every experiment.

An experiment module (one per paper table/figure) describes *what* to run
— a topology spec, a route set, which flows are active, which scheme label
from the paper's figures — and this module turns that into a wired-up
:class:`~repro.topology.network.WirelessNetwork`, runs it, and collects
per-flow results.

The paper's figure legends use five scheme labels; they map onto the
library's MAC schemes and route choices as follows:

========  =========================  =============================
label     MAC scheme                 route used
========  =========================  =============================
``S``     ``dcf``                    the direct (shortest) path
``D``     ``dcf``                    the predetermined route set
``A``     ``afr``                    the predetermined route set
``R1``    ``ripple1`` (no aggr.)     the predetermined route set
``R16``   ``ripple`` (16-pkt aggr.)  the predetermined route set
========  =========================  =============================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.flows import FlowResult, summarize_tcp_flow, summarize_udp_flow, total_throughput_mbps
from repro.phy.error_models import BitErrorModel
from repro.phy.params import PhyParams
from repro.routing.static import StaticRouting
from repro.sim.units import seconds
from repro.topology.network import WirelessNetwork
from repro.topology.spec import FlowSpec, TopologySpec
from repro.traffic.cbr import SaturatingSource
from repro.traffic.ftp import FtpApplication
from repro.traffic.voip import VoipFlow
from repro.traffic.web import WebFlow
from repro.transport.tcp import TcpSender, TcpSink
from repro.transport.udp import UdpReceiver, UdpSender

#: Paper figure label -> (library scheme name, route-set override or None).
PAPER_SCHEMES: Dict[str, Tuple[str, Optional[str]]] = {
    "S": ("dcf", "DIRECT"),
    "D": ("dcf", None),
    "A": ("afr", None),
    "R1": ("ripple1", None),
    "R16": ("ripple", None),
    "preExOR": ("preexor", None),
    "MCExOR": ("mcexor", None),
}

#: Default order in which the figures plot the scheme bars.
DEFAULT_SCHEME_LABELS: Tuple[str, ...] = ("S", "D", "R1", "A", "R16")


@dataclass
class ScenarioConfig:
    """Everything needed to run one simulation."""

    topology: TopologySpec
    scheme_label: str = "D"
    route_set: str = "ROUTE0"
    active_flows: Optional[Sequence[int]] = None  # None = all flows in the spec
    bit_error_rate: float = 1e-6
    duration_s: float = 1.0
    warmup_s: float = 0.0
    seed: int = 1
    phy: Optional[PhyParams] = None
    tcp_window: int = 64
    max_forwarders: int = 5
    max_aggregation: Optional[int] = None


@dataclass
class ScenarioResult:
    """Per-flow results plus handy aggregates for one simulation run."""

    config: ScenarioConfig
    flows: List[FlowResult] = field(default_factory=list)
    voip_quality: Dict[int, object] = field(default_factory=dict)
    events_processed: int = 0

    @property
    def total_throughput_mbps(self) -> float:
        return total_throughput_mbps([f for f in self.flows if f.kind == "tcp"])

    def flow_throughput(self, flow_id: int) -> float:
        for flow in self.flows:
            if flow.flow_id == flow_id:
                return flow.throughput_mbps
        raise KeyError(f"flow {flow_id} not in results")

    @property
    def reordering_ratio(self) -> float:
        received = sum(f.packets_received for f in self.flows if f.kind == "tcp")
        reordered = sum(f.reordered for f in self.flows if f.kind == "tcp")
        return reordered / received if received else 0.0


def resolve_scheme(scheme_label: str, default_route_set: str) -> Tuple[str, str]:
    """Map a paper scheme label onto (library scheme, route set)."""
    if scheme_label not in PAPER_SCHEMES:
        raise ValueError(f"unknown scheme label {scheme_label!r}; known: {sorted(PAPER_SCHEMES)}")
    scheme, route_override = PAPER_SCHEMES[scheme_label]
    return scheme, route_override or default_route_set


def build_network(config: ScenarioConfig) -> Tuple[WirelessNetwork, StaticRouting]:
    """Create the network, install the scheme's stack and the transport layer."""
    scheme, route_set = resolve_scheme(config.scheme_label, config.route_set)
    topology = config.topology
    if route_set not in topology.route_sets:
        raise KeyError(f"topology {topology.name} has no route set {route_set!r}")
    network = WirelessNetwork(
        phy=config.phy,
        error_model=BitErrorModel(config.bit_error_rate),
        seed=config.seed,
    )
    network.add_nodes(topology.positions)
    routing = StaticRouting(topology.routes(route_set), max_forwarders=config.max_forwarders)
    mac_kwargs = {}
    if config.max_aggregation is not None:
        mac_kwargs["max_aggregation"] = config.max_aggregation
    network.install_stack(scheme, routing, **mac_kwargs)
    network.install_transport()
    return network, routing


def _active_flows(config: ScenarioConfig) -> List[FlowSpec]:
    if config.active_flows is None:
        return list(config.topology.flows)
    wanted = set(config.active_flows)
    return [flow for flow in config.topology.flows if flow.flow_id in wanted]


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Build, run and summarise one scenario."""
    network, _routing = build_network(config)
    duration_ns = seconds(config.duration_s)
    flows = _active_flows(config)
    sinks: Dict[int, TcpSink] = {}
    receivers: Dict[int, UdpReceiver] = {}
    senders: Dict[int, object] = {}
    voip_flows: Dict[int, VoipFlow] = {}
    for flow in flows:
        src_host = network.node(flow.src).transport
        dst_host = network.node(flow.dst).transport
        if flow.kind == "tcp":
            sender = TcpSender(
                network.sim, src_host, flow.flow_id, flow.dst, awnd_segments=config.tcp_window
            )
            sink = TcpSink(network.sim, dst_host, flow.flow_id, peer=flow.src)
            FtpApplication(sender).start()
            sinks[flow.flow_id] = sink
            senders[flow.flow_id] = sender
        elif flow.kind == "web":
            sender = TcpSender(
                network.sim, src_host, flow.flow_id, flow.dst, awnd_segments=config.tcp_window
            )
            sink = TcpSink(network.sim, dst_host, flow.flow_id, peer=flow.src)
            web = WebFlow(network.sim, sender, network.rng.stream(f"web-{flow.flow_id}"))
            web.start()
            sinks[flow.flow_id] = sink
            senders[flow.flow_id] = sender
        elif flow.kind == "udp-saturating":
            udp_sender = UdpSender(network.sim, src_host, flow.flow_id, flow.dst)
            receiver = UdpReceiver(network.sim, dst_host, flow.flow_id)
            source = SaturatingSource(network.sim, udp_sender, network.node(flow.src).mac)
            source.start()
            receivers[flow.flow_id] = receiver
            senders[flow.flow_id] = udp_sender
        elif flow.kind == "voip":
            udp_sender = UdpSender(network.sim, src_host, flow.flow_id, flow.dst)
            receiver = UdpReceiver(network.sim, dst_host, flow.flow_id)
            voip = VoipFlow(
                network.sim,
                udp_sender,
                receiver,
                network.rng.stream(f"voip-{flow.flow_id}"),
            )
            voip.start()
            receivers[flow.flow_id] = receiver
            voip_flows[flow.flow_id] = voip
            senders[flow.flow_id] = udp_sender
        else:
            raise ValueError(f"unknown flow kind {flow.kind!r}")
    network.run_seconds(config.warmup_s + config.duration_s)
    result = ScenarioResult(config=config, events_processed=network.sim.processed_events)
    for flow in flows:
        if flow.flow_id in sinks:
            result.flows.append(
                summarize_tcp_flow(flow.flow_id, flow.src, flow.dst, sinks[flow.flow_id], duration_ns)
            )
        elif flow.flow_id in receivers:
            sender = senders[flow.flow_id]
            sent = getattr(sender, "stats").sent
            result.flows.append(
                summarize_udp_flow(
                    flow.flow_id, flow.src, flow.dst, receivers[flow.flow_id], sent, duration_ns
                )
            )
    for flow_id, voip in voip_flows.items():
        result.voip_quality[flow_id] = voip.quality()
    return result


def sweep_schemes(
    base_config: ScenarioConfig, scheme_labels: Sequence[str] = DEFAULT_SCHEME_LABELS
) -> Dict[str, ScenarioResult]:
    """Run the same scenario once per scheme label (the bars of one figure panel)."""
    results: Dict[str, ScenarioResult] = {}
    for label in scheme_labels:
        config = ScenarioConfig(**{**base_config.__dict__, "scheme_label": label})
        results[label] = run_scenario(config)
    return results
