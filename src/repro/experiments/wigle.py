"""Wigle topology throughput measurements: Fig. 10(a)-(d).

Eight station pairs (1-3 hops apart) on the reconstructed Wigle topology
are measured one at a time, at 6 Mb/s and 216 Mb/s PHY rates, with and
without hidden S→R traffic, under DCF, AFR and RIPPLE (each using the
same predetermined relay path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.grids import Axis, scenario_grid
from repro.experiments.parallel import SweepRunner
from repro.experiments.runner import ScenarioConfig
from repro.phy.params import HIGH_RATE_PHY, LOW_RATE_PHY, PhyParams
from repro.topology.wigle import wigle_topology

#: Schemes plotted in Fig. 10.
WIGLE_SCHEMES: tuple[str, ...] = ("D", "A", "R16")


@dataclass
class WigleResult:
    """One panel of Fig. 10: per-flow throughput for each scheme."""

    data_rate_mbps: float
    hidden_traffic: bool
    #: throughput_mbps[scheme_label][flow_label] = measured flow throughput
    throughput_mbps: Dict[str, Dict[str, float]] = field(default_factory=dict)


def _phy_for_rate(data_rate_mbps: float) -> PhyParams:
    if data_rate_mbps >= 100:
        return HIGH_RATE_PHY
    return LOW_RATE_PHY


def wigle_grid(
    data_rate_mbps: float = 6.0,
    hidden_traffic: bool = False,
    schemes: Sequence[str] = WIGLE_SCHEMES,
    bit_error_rate: float = 1e-6,
    duration_s: float = 1.0,
    seed: int = 1,
    max_flows: int | None = None,
) -> Tuple[List[ScenarioConfig], List[Tuple[str, int, str]]]:
    """The declarative config grid for one Fig. 10 panel.

    Returns ``(configs, keys)`` where each key is the ``(scheme label,
    measured flow id, flow label)`` the same-index config measures.
    """
    from dataclasses import replace

    topology = wigle_topology(include_hidden=True)
    measured = [flow for flow in topology.flows if flow.flow_id < 100]
    if max_flows is not None:
        measured = measured[:max_flows]
    hidden_ids = [flow.flow_id for flow in topology.flows if flow.flow_id >= 100]

    def activate(config: ScenarioConfig, flow) -> ScenarioConfig:
        active = [flow.flow_id] + (hidden_ids if hidden_traffic else [])
        return replace(config, active_flows=active)

    base = ScenarioConfig(
        topology=topology,
        route_set="ROUTE0",
        bit_error_rate=bit_error_rate,
        duration_s=duration_s,
        seed=seed,
        phy=_phy_for_rate(data_rate_mbps),
    )
    configs, keys = scenario_grid(
        base,
        {
            "scheme_label": schemes,
            "pair": Axis(
                measured, bind=activate, key=lambda flow: (flow.flow_id, flow.label)
            ),
        },
    )
    return configs, [(label, flow_id, flow_label) for label, (flow_id, flow_label) in keys]


def run_wigle(
    data_rate_mbps: float = 6.0,
    hidden_traffic: bool = False,
    schemes: Sequence[str] = WIGLE_SCHEMES,
    bit_error_rate: float = 1e-6,
    duration_s: float = 1.0,
    seed: int = 1,
    max_flows: int | None = None,
    runner: Optional[SweepRunner] = None,
) -> WigleResult:
    """Reproduce one panel of Fig. 10.

    ``max_flows`` limits how many of the eight measured pairs are run
    (useful for quick benchmark configurations); ``None`` runs all eight.
    """
    configs, keys = wigle_grid(
        data_rate_mbps, hidden_traffic, schemes, bit_error_rate, duration_s, seed, max_flows
    )
    outcomes = (runner or SweepRunner()).run(configs)
    result = WigleResult(data_rate_mbps=data_rate_mbps, hidden_traffic=hidden_traffic)
    for (label, flow_id, flow_label), outcome in zip(keys, outcomes):
        result.throughput_mbps.setdefault(label, {})[flow_label] = outcome.flow_throughput(flow_id)
    return result
