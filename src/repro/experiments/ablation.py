"""Ablations over RIPPLE's design parameters (not a paper figure, but called
out in DESIGN.md as design-choice studies).

Two sweeps:

* **Aggregation limit** — RIPPLE with a maximum of 1, 2, 4, 8 and 16
  packets per frame on the Fig. 1 / ROUTE0 long-lived TCP scenario.  This
  interpolates between the paper's R1 and R16 bars and quantifies how much
  of the win comes from aggregation versus the mTXOP mechanism.
* **Forwarder count** — the line topology with the maximum number of
  forwarders clamped to 1..7 (Section III-B4 discusses why the paper uses
  5 as the default and evaluates up to 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.grids import scenario_grid
from repro.experiments.parallel import SweepRunner
from repro.experiments.runner import ScenarioConfig
from repro.topology.standard import fig1_topology, line_topology


@dataclass
class AggregationAblation:
    """Total throughput versus RIPPLE's maximum aggregation level."""

    #: throughput_mbps[max_aggregation] = total TCP throughput on ROUTE0
    throughput_mbps: Dict[int, float] = field(default_factory=dict)


@dataclass
class ForwarderAblation:
    """Flow throughput versus the maximum number of forwarders used."""

    #: throughput_mbps[max_forwarders] = throughput on the 7-hop line
    throughput_mbps: Dict[int, float] = field(default_factory=dict)


def aggregation_ablation_grid(
    levels: Sequence[int] = (1, 2, 4, 8, 16),
    bit_error_rate: float = 1e-6,
    duration_s: float = 1.0,
    seed: int = 1,
) -> List[ScenarioConfig]:
    """The declarative config grid: one RIPPLE run per aggregation level."""
    base = ScenarioConfig(
        topology=fig1_topology(),
        scheme_label="R16",
        route_set="ROUTE0",
        active_flows=[1],
        bit_error_rate=bit_error_rate,
        duration_s=duration_s,
        seed=seed,
    )
    configs, _keys = scenario_grid(base, {"max_aggregation": levels})
    return configs


def run_aggregation_ablation(
    levels: Sequence[int] = (1, 2, 4, 8, 16),
    bit_error_rate: float = 1e-6,
    duration_s: float = 1.0,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
) -> AggregationAblation:
    """Sweep RIPPLE's maximum aggregation on the Fig. 1 / ROUTE0 scenario."""
    configs = aggregation_ablation_grid(levels, bit_error_rate, duration_s, seed)
    outcomes = (runner or SweepRunner()).run(configs)
    result = AggregationAblation()
    for level, outcome in zip(levels, outcomes):
        result.throughput_mbps[level] = outcome.total_throughput_mbps
    return result


def forwarder_ablation_grid(
    forwarder_counts: Sequence[int] = (1, 2, 3, 5, 7),
    n_hops: int = 7,
    bit_error_rate: float = 1e-6,
    duration_s: float = 1.0,
    seed: int = 1,
) -> List[ScenarioConfig]:
    """The declarative config grid: one RIPPLE run per forwarder-list cap."""
    base = ScenarioConfig(
        topology=line_topology(n_hops),
        scheme_label="R16",
        route_set="ROUTE0",
        bit_error_rate=bit_error_rate,
        duration_s=duration_s,
        seed=seed,
    )
    configs, _keys = scenario_grid(base, {"max_forwarders": forwarder_counts})
    return configs


def run_forwarder_ablation(
    forwarder_counts: Sequence[int] = (1, 2, 3, 5, 7),
    n_hops: int = 7,
    bit_error_rate: float = 1e-6,
    duration_s: float = 1.0,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
) -> ForwarderAblation:
    """Sweep the forwarder-list cap on a long line (Section III-B4 / Fig. 7 setting)."""
    configs = forwarder_ablation_grid(forwarder_counts, n_hops, bit_error_rate, duration_s, seed)
    outcomes = (runner or SweepRunner()).run(configs)
    result = ForwarderAblation()
    for count, outcome in zip(forwarder_counts, outcomes):
        result.throughput_mbps[count] = outcome.flow_throughput(1)
    return result
