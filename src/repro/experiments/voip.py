"""VoIP quality (Mean Opinion Score): Table III.

The Fig. 1 topology carries 96 kb/s on-off VoIP streams over UDP at a
6 Mb/s PHY (both data and basic rates): flows 1-10 between stations 0 and
3, 11-20 between 0 and 4, 21-30 between 5 and 7.  Table III reports the
average MoS when flows 1..10, 1..20 and 1..30 are active, for BER 1e-5
and 1e-6, under DCF/ROUTE0, AFR/ROUTE0 and RIPPLE.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.grids import Axis, scenario_grid
from repro.experiments.parallel import SweepRunner
from repro.experiments.runner import ScenarioConfig
from repro.phy.params import LOW_RATE_PHY
from repro.topology.spec import TopologySpec
from repro.topology.standard import voip_topology as _voip_topology

#: Schemes reported in Table III.
VOIP_SCHEMES: tuple[str, ...] = ("D", "A", "R16")
#: Number of VoIP streams per source/destination pair.
VOIP_FLOWS_PER_PAIR = 10
#: Flow-count groups reported in Table III ("1..10", "1..20", "1..30").
VOIP_FLOW_GROUPS: Tuple[int, ...] = (10, 20, 30)


def voip_topology(flows_per_pair: int = VOIP_FLOWS_PER_PAIR) -> TopologySpec:
    """The Fig. 1 topology carrying VoIP streams instead of TCP flows.

    Now lives in :mod:`repro.topology.standard` (registered as
    ``fig1-voip``/``voip`` in the topology registry); re-exported here for
    backward compatibility.
    """
    return _voip_topology(flows_per_pair=flows_per_pair)


@dataclass
class VoipResult:
    """Table III: mean MoS per scheme per number of active flows."""

    bit_error_rate: float
    #: mos[scheme_label][n_flows] = average MoS over the active flows
    mos: Dict[str, Dict[int, float]] = field(default_factory=dict)
    #: loss[scheme_label][n_flows] = average effective loss rate (late + lost)
    loss: Dict[str, Dict[int, float]] = field(default_factory=dict)


def voip_grid(
    bit_error_rate: float = 1e-6,
    schemes: Sequence[str] = VOIP_SCHEMES,
    flow_groups: Sequence[int] = VOIP_FLOW_GROUPS,
    duration_s: float = 2.0,
    seed: int = 1,
) -> Tuple[List[ScenarioConfig], List[Tuple[str, int]]]:
    """The declarative config grid for one BER column group.

    Returns ``(configs, keys)`` where each key is the ``(scheme label,
    flow count)`` cell the same-index config fills.
    """
    base = ScenarioConfig(
        topology=voip_topology(),
        route_set="ROUTE0",
        bit_error_rate=bit_error_rate,
        duration_s=duration_s,
        seed=seed,
        phy=LOW_RATE_PHY,
    )
    return scenario_grid(
        base,
        {
            "scheme_label": schemes,
            "active_flows": Axis(
                flow_groups,
                bind=lambda config, n: replace(config, active_flows=list(range(1, n + 1))),
            ),
        },
    )


def run_voip(
    bit_error_rate: float = 1e-6,
    schemes: Sequence[str] = VOIP_SCHEMES,
    flow_groups: Sequence[int] = VOIP_FLOW_GROUPS,
    duration_s: float = 2.0,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
) -> VoipResult:
    """Reproduce one BER column group of Table III."""
    configs, keys = voip_grid(bit_error_rate, schemes, flow_groups, duration_s, seed)
    outcomes = (runner or SweepRunner()).run(configs)
    result = VoipResult(bit_error_rate=bit_error_rate)
    for (label, n_flows), outcome in zip(keys, outcomes):
        qualities = list(outcome.voip_quality.values())
        if qualities:
            mos = sum(q.mos for q in qualities) / len(qualities)
            loss = sum(q.loss_rate for q in qualities) / len(qualities)
        else:
            mos = 1.0
            loss = 1.0
        result.mos.setdefault(label, {})[n_flows] = mos
        result.loss.setdefault(label, {})[n_flows] = loss
    return result


def run_table3(
    duration_s: float = 2.0, seed: int = 1, runner: Optional[SweepRunner] = None
) -> Dict[float, VoipResult]:
    """Both BER operating points of Table III."""
    return {
        1e-5: run_voip(1e-5, duration_s=duration_s, seed=seed, runner=runner),
        1e-6: run_voip(1e-6, duration_s=duration_s, seed=seed, runner=runner),
    }
