"""Experiment harness: one module per table/figure of the paper's evaluation.

==========  ==========================================  ==============================
Paper item  Module / entry point                        What it reports
==========  ==========================================  ==============================
Section II  :func:`repro.experiments.motivation.run_motivation`    SPR vs preExOR vs MCExOR throughput + re-ordering
Fig. 3      :func:`repro.experiments.longlived.run_fig3`           long-lived TCP, BER 1e-6, ROUTE0/1/2
Fig. 4      :func:`repro.experiments.longlived.run_fig4`           long-lived TCP, BER 1e-5
Fig. 6(a)   :func:`repro.experiments.collisions.run_regular_collisions`  regular collisions
Fig. 6(b)   :func:`repro.experiments.collisions.run_hidden_collisions`   hidden collisions
Fig. 7      :func:`repro.experiments.hops.run_hops`                 2-7 hop line, +/- cross traffic
Fig. 8      :func:`repro.experiments.web.run_web_traffic`           short web transfers
Table III   :func:`repro.experiments.voip.run_table3`               VoIP MoS
Fig. 10     :func:`repro.experiments.wigle.run_wigle`               Wigle topology
Fig. 12     :func:`repro.experiments.roofnet.run_roofnet`           Roofnet topology
(extra)     :mod:`repro.experiments.ablation`                       aggregation / forwarder ablations
(extra)     :mod:`repro.experiments.mobility`                       scheme x node-speed sweeps (TCP, VoIP MoS)
==========  ==========================================  ==============================

Each experiment expresses its work as a declarative grid of
:class:`ScenarioConfig` objects and routes it through
:class:`~repro.experiments.parallel.SweepRunner` (multiprocessing fan-out
plus an on-disk result cache keyed by a content hash of the config; see
:mod:`repro.experiments.parallel`).  ``python -m repro.experiments`` lists
and runs any figure/table from the command line with ``--jobs``,
``--seeds`` and ``--no-cache`` flags.
"""

from repro.experiments.grids import Axis, scenario_grid, topology_axis
from repro.experiments.parallel import (
    CACHE_SCHEMA_VERSION,
    CacheMissError,
    CacheOnlySweepRunner,
    ResultCache,
    SweepRunner,
    config_digest,
    expand_grid,
)
from repro.experiments.runner import (
    DEFAULT_SCHEME_LABELS,
    PAPER_SCHEMES,
    ScenarioConfig,
    ScenarioResult,
    build_network,
    expand_scheme_label,
    run_scenario,
    sweep_schemes,
)
from repro.spec import (
    MacSpec,
    RoutingSpec,
    ScenarioSpec,
    TopologyRef,
    TrafficSpec,
)

__all__ = [
    "Axis",
    "CACHE_SCHEMA_VERSION",
    "CacheMissError",
    "CacheOnlySweepRunner",
    "DEFAULT_SCHEME_LABELS",
    "MacSpec",
    "PAPER_SCHEMES",
    "ResultCache",
    "RoutingSpec",
    "ScenarioConfig",
    "ScenarioResult",
    "ScenarioSpec",
    "SweepRunner",
    "TopologyRef",
    "TrafficSpec",
    "build_network",
    "config_digest",
    "expand_grid",
    "expand_scheme_label",
    "run_scenario",
    "scenario_grid",
    "sweep_schemes",
    "topology_axis",
]
