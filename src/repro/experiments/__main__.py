"""Command-line entry point for the experiment sweeps.

List everything the harness can reproduce::

    python -m repro.experiments list

Run any figure/table by name, fanned out over worker processes and served
incrementally from the on-disk result cache::

    python -m repro.experiments run fig3 --jobs 4
    python -m repro.experiments run fig6a fig6b --seeds 3 --duration 0.2
    python -m repro.experiments run table3 --no-cache
    python -m repro.experiments run mobility-tcp mobility-voip

Run an **arbitrary scenario** — any registered topology × MAC × routing ×
traffic × mobility combination — straight from a declarative spec, with
no experiment module at all::

    python -m repro.experiments run --set topology=roofnet mac=ripple routing=etx
    python -m repro.experiments run --set topology=fig1 traffic=voip mobility=random_waypoint \
        mobility.speed=5 duration=0.5 --seeds 3
    python -m repro.experiments run --spec scenario.json        # ScenarioSpec JSON

``--set`` keys are ``field=value`` with dotted component parameters
(``topology.n_hops=6``, ``mac.max_aggregation=8``,
``phy.max_deviation_sigmas=4``); ``--spec`` takes a JSON file holding one
:class:`repro.spec.ScenarioSpec` document (or a list of them), and
``--set`` assignments override the file.  Spec runs flow through the same
sweep runner and result cache as the named experiments; add ``--json``
for a machine-readable ``[{digest, config, result}, ...]`` document on
stdout (scripts and the service smoke test consume this instead of
scraping the tables — the cache summary moves to stderr).

Re-render a completed experiment's tables *without* simulating anything
(errors out if the sweep has not been run yet)::

    python -m repro.experiments report fig3
    python -m repro.experiments report mobility-tcp --seeds 3

Time the simulator itself on a fixed scenario matrix and write a
``BENCH_<rev>.json`` performance baseline (see :mod:`repro.experiments.bench`)::

    python -m repro.experiments bench
    python -m repro.experiments bench --quick --output bench.json

Results are rendered as the aligned text tables of
:mod:`repro.experiments.report`; a cache summary (hits/misses) is printed
at the end.  The cache lives under ``.repro-cache`` (override with
``--cache-dir`` or the ``REPRO_CACHE_DIR`` environment variable) and is
keyed by a content hash of each scenario config, so a second invocation of
the same sweep is served almost entirely from disk.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.experiments.parallel import (
    CacheMissError,
    CacheOnlySweepRunner,
    ResultCache,
    SweepRunner,
)
from repro.experiments.report import format_table, render_panel
from repro.serialization import SpecError


@dataclass(frozen=True)
class Experiment:
    """One runnable figure/table: a renderer plus its bookkeeping."""

    name: str
    description: str
    #: (runner, duration_s or None for the experiment's default, seed) -> text
    render: Callable[[SweepRunner, Optional[float], int], str]
    #: Heading the 'list' command files this experiment under.
    group: str = "paper figures"
    #: Never simulates: serves purely from the result cache, even under 'run'.
    cache_only: bool = False
    #: Sweep axes shown in 'list' (empty = a fixed scenario set).
    axes: str = ""


def _duration_kwargs(duration_s: Optional[float]) -> dict:
    return {} if duration_s is None else {"duration_s": duration_s}


def _render_motivation(runner, duration_s, seed):
    from repro.experiments.motivation import run_motivation

    results = run_motivation(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    rows = {
        name: [res.throughput_mbps, 100.0 * res.reordering_ratio]
        for name, res in results.items()
    }
    return format_table("Section II motivation", ["Mb/s", "reorder %"], rows)


def _render_longlived(bit_error_rate):
    def render(runner, duration_s, seed):
        from repro.experiments.longlived import run_longlived_panel

        blocks = []
        for route_set in ("ROUTE0", "ROUTE1", "ROUTE2"):
            panel = run_longlived_panel(
                route_set,
                bit_error_rate,
                seed=seed,
                runner=runner,
                **_duration_kwargs(duration_s),
            )
            blocks.append(
                render_panel(
                    f"{route_set} (BER {bit_error_rate:g}) — total Mb/s vs active flows",
                    panel.throughput_mbps,
                    [1, 2, 3],
                )
            )
        return "\n\n".join(blocks)

    return render


def _render_regular_collisions(runner, duration_s, seed):
    from repro.experiments.collisions import run_regular_collisions

    result = run_regular_collisions(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    columns = sorted(next(iter(result.throughput_mbps.values())))
    return render_panel("Fig. 6(a) — total Mb/s vs parallel flows", result.throughput_mbps, columns)


def _render_hidden_collisions(runner, duration_s, seed):
    from repro.experiments.collisions import run_hidden_collisions

    result = run_hidden_collisions(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    columns = sorted(next(iter(result.throughput_mbps.values())))
    return render_panel("Fig. 6(b) — flow-1 Mb/s vs hidden flows", result.throughput_mbps, columns)


def _render_hops(cross_traffic):
    def render(runner, duration_s, seed):
        from repro.experiments.hops import run_hops

        result = run_hops(
            cross_traffic=cross_traffic,
            seed=seed,
            runner=runner,
            **_duration_kwargs(duration_s),
        )
        columns = sorted(next(iter(result.throughput_mbps.values())))
        suffix = "with cross traffic" if cross_traffic else "no cross traffic"
        return render_panel(
            f"Fig. 7 — flow-1 Mb/s vs hops ({suffix})", result.throughput_mbps, columns
        )

    return render


def _render_web(runner, duration_s, seed):
    from repro.experiments.web import run_web_traffic

    result = run_web_traffic(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    rows = {
        label: [result.total_mbps[label], float(result.transfers_completed[label])]
        for label in result.total_mbps
    }
    return format_table("Fig. 8 — web traffic", ["Mb/s", "segments"], rows)


def _render_table3(runner, duration_s, seed):
    from repro.experiments.voip import run_table3

    results = run_table3(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    blocks = []
    for ber, result in sorted(results.items()):
        columns = sorted(next(iter(result.mos.values())))
        blocks.append(
            render_panel(f"Table III — mean MoS (BER {ber:g})", result.mos, columns)
        )
    return "\n\n".join(blocks)


def _render_wigle(runner, duration_s, seed):
    from repro.experiments.wigle import run_wigle

    result = run_wigle(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    columns = list(next(iter(result.throughput_mbps.values())))
    return render_panel("Fig. 10 — Wigle per-pair Mb/s", result.throughput_mbps, columns)


def _render_roofnet(runner, duration_s, seed):
    from repro.experiments.roofnet import run_roofnet

    result = run_roofnet(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    columns = list(next(iter(result.throughput_mbps.values())))
    return render_panel("Fig. 12 — Roofnet per-pair Mb/s", result.throughput_mbps, columns)


def _render_aggregation(runner, duration_s, seed):
    from repro.experiments.ablation import run_aggregation_ablation

    result = run_aggregation_ablation(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    rows = {"R": [result.throughput_mbps[level] for level in sorted(result.throughput_mbps)]}
    return format_table(
        "Ablation — Mb/s vs max aggregation",
        [str(level) for level in sorted(result.throughput_mbps)],
        rows,
    )


def _render_mobility_tcp(runner, duration_s, seed):
    from repro.experiments.mobility import run_mobility_tcp

    result = run_mobility_tcp(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    columns = sorted(next(iter(result.throughput_mbps.values())))
    return render_panel(
        "Mobility — TCP Mb/s vs node speed (m/s, random waypoint)",
        result.throughput_mbps,
        columns,
    )


def _render_mobility_voip(runner, duration_s, seed):
    from repro.experiments.mobility import run_mobility_voip

    result = run_mobility_voip(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    columns = sorted(next(iter(result.mos.values())))
    return render_panel(
        "Mobility — mean VoIP MoS vs node speed (m/s, random waypoint)",
        result.mos,
        columns,
    )


def _render_fading(runner, duration_s, seed):
    from repro.experiments.fading import FADING_MODELS, run_fading

    result = run_fading(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    return render_panel(
        "Fading — flow-1 Mb/s per propagation model (4-hop line)",
        result.throughput_mbps,
        list(FADING_MODELS),
    )


def _render_congestion(runner, duration_s, seed):
    from repro.experiments.congestion import run_congestion

    blocks = []
    for topology in ("line", "roofnet"):
        result = run_congestion(
            topology=topology, seed=seed, runner=runner, **_duration_kwargs(duration_s)
        )
        throughput = render_panel(
            f"Congestion — flow-1 Mb/s per transport ({topology})",
            result.throughput_mbps,
            list(next(iter(result.throughput_mbps.values()))),
        )
        rexmit = render_panel(
            f"Congestion — flow-1 retransmitted segments ({topology})",
            {t: {k: float(v) for k, v in row.items()} for t, row in result.retransmissions.items()},
            list(next(iter(result.retransmissions.values()))),
        )
        blocks.extend([throughput, rexmit])
    return "\n\n".join(blocks)


def _render_corpus(runner, duration_s, seed):
    from repro.experiments.corpus import CORPUS_DURATION_S, run_corpus

    result = run_corpus(
        seed=seed,
        duration_s=CORPUS_DURATION_S if duration_s is None else duration_s,
        runner=runner,
    )
    rows = {
        label: [result.throughput_mbps[label], float(result.events[label])]
        for label in result.labels
    }
    return format_table(
        f"Corpus — sampled registry cross-product (sample seed {seed})",
        ["Mb/s", "events"],
        rows,
    )


def _render_corpus_report(runner, duration_s, seed):
    # Cache-only by design: re-render the corpus sweep without ever
    # simulating, whichever runner the command line built.
    cache = getattr(runner, "cache", None)
    if cache is None:
        raise CacheMissError(
            "corpus-report never simulates and needs a result cache "
            "(drop --no-cache)"
        )
    return _render_corpus(CacheOnlySweepRunner(cache), duration_s, seed)


def _render_forwarders(runner, duration_s, seed):
    from repro.experiments.ablation import run_forwarder_ablation

    result = run_forwarder_ablation(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    rows = {"R16": [result.throughput_mbps[count] for count in sorted(result.throughput_mbps)]}
    return format_table(
        "Ablation — Mb/s vs max forwarders",
        [str(count) for count in sorted(result.throughput_mbps)],
        rows,
    )


EXPERIMENTS: Dict[str, Experiment] = {
    exp.name: exp
    for exp in [
        Experiment("motivation", "Section II: SPR vs preExOR vs MCExOR", _render_motivation),
        Experiment("fig3", "Long-lived TCP, BER 1e-6, ROUTE0/1/2", _render_longlived(1e-6)),
        Experiment("fig4", "Long-lived TCP, BER 1e-5, ROUTE0/1/2", _render_longlived(1e-5)),
        Experiment("fig6a", "Regular collisions (parallel flows)", _render_regular_collisions),
        Experiment("fig6b", "Hidden collisions (hidden UDP load)", _render_hidden_collisions),
        Experiment("fig7a", "2-7 hop line, no cross traffic", _render_hops(False)),
        Experiment("fig7b", "2-7 hop line, with cross traffic", _render_hops(True)),
        Experiment("fig8", "Short web transfers", _render_web),
        Experiment("table3", "VoIP MoS, both BER points", _render_table3),
        Experiment("fig10", "Wigle topology per-pair throughput", _render_wigle),
        Experiment("fig12", "Roofnet topology per-pair throughput", _render_roofnet),
        Experiment("ablation-aggregation", "RIPPLE max-aggregation sweep", _render_aggregation,
                   group="ablations"),
        Experiment("ablation-forwarders", "RIPPLE forwarder-cap sweep", _render_forwarders,
                   group="ablations"),
        Experiment("mobility-tcp", "TCP throughput vs node speed (random waypoint)", _render_mobility_tcp,
                   group="mobility"),
        Experiment("mobility-voip", "VoIP MoS vs node speed (random waypoint)", _render_mobility_voip,
                   group="mobility"),
        Experiment("fading", "D/R16 line throughput per propagation model", _render_fading,
                   group="components"),
        Experiment("congestion", "Transport x MAC grid (reno/tahoe/newreno/cubic)", _render_congestion,
                   group="components"),
        Experiment("corpus", "Seeded sample of the registry cross-product", _render_corpus,
                   group="corpus",
                   axes="topology x mac x routing x traffic x transport x phy x mobility"),
        Experiment("corpus-report", "Corpus sweep re-rendered from the cache", _render_corpus_report,
                   group="corpus", cache_only=True,
                   axes="topology x mac x routing x traffic x transport x phy x mobility"),
    ]
}


# ----------------------------------------------------------------------
# Declarative spec runs (--spec / --set)
# ----------------------------------------------------------------------

#: ``--set`` shorthands for ScenarioSpec field names.
_SET_FIELD_ALIASES = {
    "duration": "duration_s",
    "warmup": "warmup_s",
    "ber": "bit_error_rate",
    "scheme": "scheme_label",
    "flows": "active_flows",
}

#: ``--set`` keys addressing a component by name (dotted keys = params).
_SET_COMPONENTS = ("topology", "mac", "routing", "traffic", "transport", "mobility", "phy")


def _parse_set_value(text: str):
    """JSON-decode a ``--set`` value where possible, else keep the string."""
    try:
        return json.loads(text)
    except (ValueError, TypeError):
        return text


def _normalize_topology_entry(entry) -> Dict[str, object]:
    """Unwrap a ScenarioSpec topology entry into a mutable ref dict.

    ``ScenarioSpec.to_dict`` wraps refs as ``{"ref": {...}}``; ``--set``
    works on the bare ref form.  Inline topologies (positions spelled
    out) have no builder parameters, so dotted keys are rejected.
    """
    if isinstance(entry, dict) and set(entry) == {"ref"}:
        return dict(entry["ref"])
    if isinstance(entry, dict) and "positions" in entry:
        raise SpecError(
            "--set topology.<param> cannot parameterise an inline topology "
            "(the spec file spells out positions); name a registered builder "
            "with topology=<name> instead"
        )
    return dict(entry or {})


def _apply_sets(data: Dict[str, object], items: List[str]) -> Dict[str, object]:
    """Fold ``--set key=value`` assignments into a ScenarioSpec dict.

    Component keys (``mac=ripple``) set the component's name keeping
    already-set params; dotted keys (``mac.max_aggregation=8``) merge into
    its params.  Name assignments are applied before dotted ones, so the
    two are order-independent (``phy.max_deviation_sigmas=4 phy=low_rate``
    overrides the profile either way round).  Everything else is a
    ScenarioSpec field (with the shorthands of :data:`_SET_FIELD_ALIASES`).
    """
    data = dict(data)
    assignments = []
    for item in items:
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise SpecError(f"--set expects key=value, got {item!r}")
        assignments.append((key, _parse_set_value(raw)))
    # Pass 1: component names and plain fields; pass 2: dotted params.
    for key, value in (pair for pair in assignments if "." not in pair[0]):
        if key == "phy":
            data["phy"] = value
        elif key == "mobility":
            entry = dict(data.get("mobility") or {})
            entry["model"] = value
            data["mobility"] = entry
        elif key == "topology":
            entry = data.get("topology")
            if isinstance(entry, dict) and set(entry) == {"ref"}:
                entry = dict(entry["ref"])
            elif not isinstance(entry, dict) or "positions" in entry:
                entry = {}  # replace an inline topology wholesale
            entry["name"] = value
            data["topology"] = entry
        elif key in _SET_COMPONENTS:
            entry = dict(data.get(key) or {})
            entry["name"] = value
            data[key] = entry
        else:
            field_name = _SET_FIELD_ALIASES.get(key, key)
            if field_name == "active_flows" and isinstance(value, str):
                value = [int(part) for part in value.split(",") if part]
            elif field_name == "active_flows" and isinstance(value, int):
                value = [value]
            data[field_name] = value
    for key, value in (pair for pair in assignments if "." in pair[0]):
        component, _, param = key.partition(".")
        if component not in _SET_COMPONENTS:
            raise SpecError(
                f"--set {key!r}: unknown component {component!r}; "
                f"dotted keys address one of {_SET_COMPONENTS}"
            )
        if component == "phy":
            entry = data.get("phy")
            if entry is None:
                entry = {}
            elif isinstance(entry, str):
                from repro.spec import resolve_phy

                entry = resolve_phy(entry).to_dict()
            else:
                entry = dict(entry)
            entry[param] = value
            data["phy"] = entry
        elif component == "mobility":
            entry = dict(data.get("mobility") or {"model": "static"})
            if param in ("update_interval_s", "reestimate_interval_s", "mobile_nodes"):
                entry[param] = value
            else:
                params = dict(entry.get("params") or {})
                if param == "speed" and entry.get("model") == "random_waypoint":
                    params["speed_min_mps"] = float(value)
                    params["speed_max_mps"] = float(value)
                else:
                    params[param] = value
                entry["params"] = params
            data["mobility"] = entry
        else:
            entry = data.get(component)
            entry = _normalize_topology_entry(entry) if component == "topology" else dict(entry or {})
            params = dict(entry.get("params") or {})
            params[param] = value
            entry["params"] = params
            entry.setdefault("name", None)
            data[component] = entry
    for component in ("mac", "routing", "traffic", "transport", "topology"):
        entry = data.get(component)
        if not isinstance(entry, dict) or "positions" in entry or set(entry) == {"ref"}:
            continue  # absent, inline topology, or untouched wrapped ref
        if entry.get("name") is None:
            raise SpecError(
                f"--set {component}.<param> used without naming the component "
                f"(add {component}=<name>)"
            )
    return data


def _specs_from_args(args) -> List["ScenarioSpec"]:
    """Build the ScenarioSpec list a ``run --spec/--set`` invocation asks for."""
    from repro.spec import ScenarioSpec

    documents: List[Dict[str, object]] = []
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        documents = list(loaded) if isinstance(loaded, list) else [loaded]
    else:
        documents = [{}]
    sets = list(args.set or [])
    specs: List[ScenarioSpec] = []
    for document in documents:
        data = _apply_sets(dict(document), sets)
        if "topology" not in data:
            raise SpecError(
                "a spec run needs a topology: --set topology=<name> "
                "(see repro.topology.registry) or a --spec file"
            )
        if args.duration is not None:
            data["duration_s"] = args.duration
        specs.append(ScenarioSpec.from_dict(data))
    return specs


def _describe_spec(spec, config) -> str:
    topology = spec.topology.name  # TopologyRef and TopologySpec both carry one
    mac, routing, traffic = config.resolved_components()
    parts = [
        f"topology={topology}",
        f"mac={mac.name}",
        f"routing={routing.name}",
        f"traffic={traffic.name}",
    ]
    if config.transport is not None:
        parts.append(f"transport={config.resolved_transport().name}")
    if spec.mobility is not None:
        parts.append(f"mobility={spec.mobility.model}")
    parts.append(f"duration={config.duration_s:g}s")
    return " ".join(parts)


def _render_spec_result(result) -> str:
    lines = [
        f"{'flow':>4} {'kind':<6} {'Mb/s':>8} {'recv':>7} "
        f"{'rexmit':>7} {'fastRT':>7} {'RTO':>4} {'MoS':>5}"
    ]
    for flow in result.flows:
        quality = result.voip_quality.get(flow.flow_id)
        mos = f"{quality.mos:5.2f}" if quality is not None else "    -"
        lines.append(
            f"{flow.flow_id:>4} {flow.kind:<6} {flow.throughput_mbps:>8.2f} "
            f"{flow.packets_received:>7} {flow.retransmissions:>7} "
            f"{flow.fast_retransmits:>7} {flow.timeouts:>4} {mos}"
        )
    for flow_id, quality in sorted(result.voip_quality.items()):
        if not any(flow.flow_id == flow_id for flow in result.flows):
            lines.append(
                f"{flow_id:>4} {'voip':<6} {'-':>8} {'-':>7} "
                f"{'-':>7} {'-':>7} {'-':>4} {quality.mos:5.2f}"
            )
    lines.append(
        f"total TCP Mb/s: {result.total_throughput_mbps:.2f}   "
        f"events: {result.events_processed}"
    )
    return "\n".join(lines)


def _run_specs(args, runner: SweepRunner) -> int:
    from dataclasses import replace

    specs = _specs_from_args(args)
    configs = []
    labels = []
    for spec in specs:
        config = spec.to_config()
        for seed in range(1, args.seeds + 1):
            seeded = replace(config, seed=seed) if args.seeds > 1 else config
            configs.append(seeded)
            labels.append(f"{_describe_spec(spec, seeded)} seed={seeded.seed}")
    results = runner.run(configs)
    if getattr(args, "json", False):
        # Machine-readable mode: one document per scenario, carrying the
        # cache digest alongside the canonical config and result payloads
        # — what scripts and the service smoke test consume instead of
        # scraping the human tables.
        from repro.experiments.parallel import config_digest

        documents = [
            {
                "digest": config_digest(config),
                "config": config.to_dict(),
                "result": result.to_dict(),
            }
            for config, result in zip(configs, results)
        ]
        json.dump(documents, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0
    for label, result in zip(labels, results):
        print(f"=== {label} ===")
        print(_render_spec_result(result))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper's figures/tables through the parallel sweep runner.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    list_parser = sub.add_parser("list", help="list runnable experiments and registered components")
    list_parser.add_argument(
        "--markdown",
        action="store_true",
        help="print the full generated component reference (docs/COMPONENTS.md) instead",
    )
    # Arguments shared by 'run' and 'report' — defined once so the two
    # commands cannot drift apart (identical flags and defaults are what
    # makes 'report' recompute the same cache digests 'run' stored under).
    shared = argparse.ArgumentParser(add_help=False)
    shared.add_argument(
        "--seeds",
        type=int,
        default=1,
        metavar="N",
        help="process each experiment with seeds 1..N (default 1)",
    )
    shared.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-scenario simulated duration (default: each experiment's own)",
    )
    shared.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    run = sub.add_parser(
        "run",
        help="run experiments by name, or an arbitrary scenario via --spec/--set",
        parents=[shared],
    )
    run.add_argument(
        "names",
        nargs="*",
        metavar="NAME",
        help="experiment names from 'list', or 'all' (omit when using --spec/--set)",
    )
    run.add_argument("--jobs", type=int, default=1, help="worker processes (default 1; 0 = one per CPU)")
    run.add_argument("--no-cache", action="store_true", help="always simulate, never read/write the cache")
    run.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="JSON file with one ScenarioSpec document (or a list of them)",
    )
    run.add_argument(
        "--set",
        nargs="+",
        default=None,
        metavar="KEY=VALUE",
        help="declarative scenario assignments, e.g. topology=roofnet mac=ripple "
             "routing=etx traffic=voip topology.seed=3 mac.max_aggregation=8",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="with --spec/--set: print [{digest, config, result}, ...] JSON on "
             "stdout instead of tables (cache summary goes to stderr)",
    )
    report = sub.add_parser(
        "report",
        help="re-render completed experiments from the cache (never simulates)",
        parents=[shared],
    )
    report.add_argument(
        "names",
        nargs="+",
        metavar="NAME",
        help="experiment names from 'list', or 'all'",
    )
    bench = sub.add_parser(
        "bench",
        help="time the simulator on a fixed scenario matrix, write BENCH_<rev>.json",
    )
    from repro.experiments.bench import add_bench_arguments

    add_bench_arguments(bench)
    return parser


def _print_experiment_groups() -> None:
    """The 'list' catalogue: experiments filed under their group headings."""
    width = max(len(name) for name in EXPERIMENTS)
    groups: Dict[str, List[Experiment]] = {}
    for exp in EXPERIMENTS.values():
        groups.setdefault(exp.group, []).append(exp)
    for position, (group, members) in enumerate(groups.items()):
        if position:
            print()
        print(f"{group}:")
        for exp in members:
            suffix = "  [cache-only]" if exp.cache_only else ""
            if exp.axes:
                suffix += f"  (axes: {exp.axes})"
            print(f"  {exp.name:<{width}}  {exp.description}{suffix}")


def _print_component_registries() -> None:
    from repro.mac.registry import MAC_SCHEMES
    from repro.mobility.models import MOBILITY_MODELS
    from repro.phy.registry import PROPAGATION_MODELS
    from repro.routing.registry import ROUTING_STRATEGIES
    from repro.topology.registry import TOPOLOGIES
    from repro.traffic.registry import TRAFFIC_KINDS
    from repro.transport.registry import TRANSPORT_SCHEMES

    print("\ncomponent registries (compose freely with run --set; "
          "full reference: docs/COMPONENTS.md or 'list --markdown'):")
    registries = (
        TOPOLOGIES, MAC_SCHEMES, ROUTING_STRATEGIES, TRAFFIC_KINDS,
        TRANSPORT_SCHEMES, MOBILITY_MODELS, PROPAGATION_MODELS,
    )
    for registry in registries:
        print(f"  {registry.summary()}")


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        if args.markdown:
            from repro.docs import generate_components_markdown

            print(generate_components_markdown(), end="")
            return 0
        _print_experiment_groups()
        _print_component_registries()
        return 0

    if args.command == "bench":
        from repro.experiments.bench import run_bench_cli

        return run_bench_cli(args)

    spec_mode = args.command == "run" and (args.spec is not None or args.set is not None)
    if spec_mode and args.names:
        print("use either experiment names or --spec/--set, not both", file=sys.stderr)
        return 2
    if args.command == "run" and args.json and not spec_mode:
        print("--json needs a --spec/--set scenario run (named experiments "
              "render figure tables only)", file=sys.stderr)
        return 2
    if args.command == "run" and not spec_mode and not args.names:
        print("nothing to run: give experiment names or --spec/--set", file=sys.stderr)
        return 2

    names = [] if spec_mode else (list(EXPERIMENTS) if "all" in args.names else args.names)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    if args.command == "report":
        cache = ResultCache(args.cache_dir)
        runner: SweepRunner = CacheOnlySweepRunner(cache)
    else:
        cache = None if args.no_cache else ResultCache(args.cache_dir)
        runner = SweepRunner(jobs=args.jobs, cache=cache)

    if spec_mode:
        try:
            status = _run_specs(args, runner)
        except (ValueError, KeyError, OSError) as exc:
            # SpecError, registry lookups, component-param validation, bad
            # files — all user input; show the message, not a traceback.
            print(f"bad scenario spec: {exc}", file=sys.stderr)
            return 2
        if cache is not None:
            _print_cache_summary(cache, sys.stderr if args.json else sys.stdout)
        return status
    for name in names:
        exp = EXPERIMENTS[name]
        for seed in range(1, args.seeds + 1):
            header = f"=== {name} (seed {seed}) ==="
            print(header)
            try:
                print(exp.render(runner, args.duration, seed))
            except CacheMissError as exc:
                print(
                    f"{name} (seed {seed}): {exc}.\n"
                    f"Run it first:  python -m repro.experiments run {name} --seeds {args.seeds}"
                    + (f" --duration {args.duration:g}" if args.duration is not None else ""),
                    file=sys.stderr,
                )
                return 3
            print()
    if cache is not None:
        _print_cache_summary(cache, sys.stdout)
    return 0


def _print_cache_summary(cache: ResultCache, out) -> None:
    total = cache.hits + cache.misses
    suffix = f", {cache.quarantined} corrupt quarantined" if cache.quarantined else ""
    print(
        f"cache: {cache.hits}/{total} hits ({cache.misses} simulated{suffix}) in {cache.root}",
        file=out,
    )


if __name__ == "__main__":
    raise SystemExit(main())
