"""Command-line entry point for the experiment sweeps.

List everything the harness can reproduce::

    python -m repro.experiments list

Run any figure/table by name, fanned out over worker processes and served
incrementally from the on-disk result cache::

    python -m repro.experiments run fig3 --jobs 4
    python -m repro.experiments run fig6a fig6b --seeds 3 --duration 0.2
    python -m repro.experiments run table3 --no-cache
    python -m repro.experiments run mobility-tcp mobility-voip

Re-render a completed experiment's tables *without* simulating anything
(errors out if the sweep has not been run yet)::

    python -m repro.experiments report fig3
    python -m repro.experiments report mobility-tcp --seeds 3

Time the simulator itself on a fixed scenario matrix and write a
``BENCH_<rev>.json`` performance baseline (see :mod:`repro.experiments.bench`)::

    python -m repro.experiments bench
    python -m repro.experiments bench --quick --output bench.json

Results are rendered as the aligned text tables of
:mod:`repro.experiments.report`; a cache summary (hits/misses) is printed
at the end.  The cache lives under ``.repro-cache`` (override with
``--cache-dir`` or the ``REPRO_CACHE_DIR`` environment variable) and is
keyed by a content hash of each scenario config, so a second invocation of
the same sweep is served almost entirely from disk.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.experiments.parallel import (
    CacheMissError,
    CacheOnlySweepRunner,
    ResultCache,
    SweepRunner,
)
from repro.experiments.report import format_table, render_panel


@dataclass(frozen=True)
class Experiment:
    """One runnable figure/table: a renderer plus its bookkeeping."""

    name: str
    description: str
    #: (runner, duration_s or None for the experiment's default, seed) -> text
    render: Callable[[SweepRunner, Optional[float], int], str]


def _duration_kwargs(duration_s: Optional[float]) -> dict:
    return {} if duration_s is None else {"duration_s": duration_s}


def _render_motivation(runner, duration_s, seed):
    from repro.experiments.motivation import run_motivation

    results = run_motivation(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    rows = {
        name: [res.throughput_mbps, 100.0 * res.reordering_ratio]
        for name, res in results.items()
    }
    return format_table("Section II motivation", ["Mb/s", "reorder %"], rows)


def _render_longlived(bit_error_rate):
    def render(runner, duration_s, seed):
        from repro.experiments.longlived import run_longlived_panel

        blocks = []
        for route_set in ("ROUTE0", "ROUTE1", "ROUTE2"):
            panel = run_longlived_panel(
                route_set,
                bit_error_rate,
                seed=seed,
                runner=runner,
                **_duration_kwargs(duration_s),
            )
            blocks.append(
                render_panel(
                    f"{route_set} (BER {bit_error_rate:g}) — total Mb/s vs active flows",
                    panel.throughput_mbps,
                    [1, 2, 3],
                )
            )
        return "\n\n".join(blocks)

    return render


def _render_regular_collisions(runner, duration_s, seed):
    from repro.experiments.collisions import run_regular_collisions

    result = run_regular_collisions(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    columns = sorted(next(iter(result.throughput_mbps.values())))
    return render_panel("Fig. 6(a) — total Mb/s vs parallel flows", result.throughput_mbps, columns)


def _render_hidden_collisions(runner, duration_s, seed):
    from repro.experiments.collisions import run_hidden_collisions

    result = run_hidden_collisions(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    columns = sorted(next(iter(result.throughput_mbps.values())))
    return render_panel("Fig. 6(b) — flow-1 Mb/s vs hidden flows", result.throughput_mbps, columns)


def _render_hops(cross_traffic):
    def render(runner, duration_s, seed):
        from repro.experiments.hops import run_hops

        result = run_hops(
            cross_traffic=cross_traffic,
            seed=seed,
            runner=runner,
            **_duration_kwargs(duration_s),
        )
        columns = sorted(next(iter(result.throughput_mbps.values())))
        suffix = "with cross traffic" if cross_traffic else "no cross traffic"
        return render_panel(
            f"Fig. 7 — flow-1 Mb/s vs hops ({suffix})", result.throughput_mbps, columns
        )

    return render


def _render_web(runner, duration_s, seed):
    from repro.experiments.web import run_web_traffic

    result = run_web_traffic(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    rows = {
        label: [result.total_mbps[label], float(result.transfers_completed[label])]
        for label in result.total_mbps
    }
    return format_table("Fig. 8 — web traffic", ["Mb/s", "segments"], rows)


def _render_table3(runner, duration_s, seed):
    from repro.experiments.voip import run_table3

    results = run_table3(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    blocks = []
    for ber, result in sorted(results.items()):
        columns = sorted(next(iter(result.mos.values())))
        blocks.append(
            render_panel(f"Table III — mean MoS (BER {ber:g})", result.mos, columns)
        )
    return "\n\n".join(blocks)


def _render_wigle(runner, duration_s, seed):
    from repro.experiments.wigle import run_wigle

    result = run_wigle(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    columns = list(next(iter(result.throughput_mbps.values())))
    return render_panel("Fig. 10 — Wigle per-pair Mb/s", result.throughput_mbps, columns)


def _render_roofnet(runner, duration_s, seed):
    from repro.experiments.roofnet import run_roofnet

    result = run_roofnet(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    columns = list(next(iter(result.throughput_mbps.values())))
    return render_panel("Fig. 12 — Roofnet per-pair Mb/s", result.throughput_mbps, columns)


def _render_aggregation(runner, duration_s, seed):
    from repro.experiments.ablation import run_aggregation_ablation

    result = run_aggregation_ablation(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    rows = {"R": [result.throughput_mbps[level] for level in sorted(result.throughput_mbps)]}
    return format_table(
        "Ablation — Mb/s vs max aggregation",
        [str(level) for level in sorted(result.throughput_mbps)],
        rows,
    )


def _render_mobility_tcp(runner, duration_s, seed):
    from repro.experiments.mobility import run_mobility_tcp

    result = run_mobility_tcp(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    columns = sorted(next(iter(result.throughput_mbps.values())))
    return render_panel(
        "Mobility — TCP Mb/s vs node speed (m/s, random waypoint)",
        result.throughput_mbps,
        columns,
    )


def _render_mobility_voip(runner, duration_s, seed):
    from repro.experiments.mobility import run_mobility_voip

    result = run_mobility_voip(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    columns = sorted(next(iter(result.mos.values())))
    return render_panel(
        "Mobility — mean VoIP MoS vs node speed (m/s, random waypoint)",
        result.mos,
        columns,
    )


def _render_forwarders(runner, duration_s, seed):
    from repro.experiments.ablation import run_forwarder_ablation

    result = run_forwarder_ablation(seed=seed, runner=runner, **_duration_kwargs(duration_s))
    rows = {"R16": [result.throughput_mbps[count] for count in sorted(result.throughput_mbps)]}
    return format_table(
        "Ablation — Mb/s vs max forwarders",
        [str(count) for count in sorted(result.throughput_mbps)],
        rows,
    )


EXPERIMENTS: Dict[str, Experiment] = {
    exp.name: exp
    for exp in [
        Experiment("motivation", "Section II: SPR vs preExOR vs MCExOR", _render_motivation),
        Experiment("fig3", "Long-lived TCP, BER 1e-6, ROUTE0/1/2", _render_longlived(1e-6)),
        Experiment("fig4", "Long-lived TCP, BER 1e-5, ROUTE0/1/2", _render_longlived(1e-5)),
        Experiment("fig6a", "Regular collisions (parallel flows)", _render_regular_collisions),
        Experiment("fig6b", "Hidden collisions (hidden UDP load)", _render_hidden_collisions),
        Experiment("fig7a", "2-7 hop line, no cross traffic", _render_hops(False)),
        Experiment("fig7b", "2-7 hop line, with cross traffic", _render_hops(True)),
        Experiment("fig8", "Short web transfers", _render_web),
        Experiment("table3", "VoIP MoS, both BER points", _render_table3),
        Experiment("fig10", "Wigle topology per-pair throughput", _render_wigle),
        Experiment("fig12", "Roofnet topology per-pair throughput", _render_roofnet),
        Experiment("ablation-aggregation", "RIPPLE max-aggregation sweep", _render_aggregation),
        Experiment("ablation-forwarders", "RIPPLE forwarder-cap sweep", _render_forwarders),
        Experiment("mobility-tcp", "TCP throughput vs node speed (random waypoint)", _render_mobility_tcp),
        Experiment("mobility-voip", "VoIP MoS vs node speed (random waypoint)", _render_mobility_voip),
    ]
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper's figures/tables through the parallel sweep runner.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list runnable experiments")
    # Arguments shared by 'run' and 'report' — defined once so the two
    # commands cannot drift apart (identical flags and defaults are what
    # makes 'report' recompute the same cache digests 'run' stored under).
    shared = argparse.ArgumentParser(add_help=False)
    shared.add_argument(
        "names",
        nargs="+",
        metavar="NAME",
        help="experiment names from 'list', or 'all'",
    )
    shared.add_argument(
        "--seeds",
        type=int,
        default=1,
        metavar="N",
        help="process each experiment with seeds 1..N (default 1)",
    )
    shared.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-scenario simulated duration (default: each experiment's own)",
    )
    shared.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    run = sub.add_parser("run", help="run one or more experiments by name", parents=[shared])
    run.add_argument("--jobs", type=int, default=1, help="worker processes (default 1; 0 = one per CPU)")
    run.add_argument("--no-cache", action="store_true", help="always simulate, never read/write the cache")
    sub.add_parser(
        "report",
        help="re-render completed experiments from the cache (never simulates)",
        parents=[shared],
    )
    bench = sub.add_parser(
        "bench",
        help="time the simulator on a fixed scenario matrix, write BENCH_<rev>.json",
    )
    from repro.experiments.bench import add_bench_arguments

    add_bench_arguments(bench)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, exp in EXPERIMENTS.items():
            print(f"{name:<{width}}  {exp.description}")
        return 0

    if args.command == "bench":
        from repro.experiments.bench import run_bench_cli

        return run_bench_cli(args)

    names = list(EXPERIMENTS) if "all" in args.names else args.names
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    if args.command == "report":
        cache = ResultCache(args.cache_dir)
        runner: SweepRunner = CacheOnlySweepRunner(cache)
    else:
        cache = None if args.no_cache else ResultCache(args.cache_dir)
        runner = SweepRunner(jobs=args.jobs, cache=cache)
    for name in names:
        exp = EXPERIMENTS[name]
        for seed in range(1, args.seeds + 1):
            header = f"=== {name} (seed {seed}) ==="
            print(header)
            try:
                print(exp.render(runner, args.duration, seed))
            except CacheMissError as exc:
                print(
                    f"{name} (seed {seed}): {exc}.\n"
                    f"Run it first:  python -m repro.experiments run {name} --seeds {args.seeds}"
                    + (f" --duration {args.duration:g}" if args.duration is not None else ""),
                    file=sys.stderr,
                )
                return 3
            print()
    if cache is not None:
        total = cache.hits + cache.misses
        print(f"cache: {cache.hits}/{total} hits ({cache.misses} simulated) in {cache.root}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
