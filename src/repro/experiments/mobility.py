"""Mobility experiment family: scheme × node-speed sweeps.

The paper evaluates RIPPLE only on fixed layouts; this family asks the
question every real mesh deployment faces — *how do the schemes degrade
as stations move?* — by re-running two of the paper's workloads under
random-waypoint mobility at increasing node speeds:

* **TCP** (``mobility-tcp``): the Fig. 1 long-lived transfer (flow 1,
  0 → 3) — D/A/R1/R16 throughput bars vs speed;
* **VoIP** (``mobility-voip``): the Table III 96 kb/s on-off streams —
  mean MoS bars vs speed.

Speed 0 uses a static random-waypoint spec, so the leftmost bar group of
each panel reproduces the paper's fixed-topology numbers (predetermined
ROUTE0 paths) exactly.  Any non-zero speed also switches route
maintenance on: the scenario builder swaps the predetermined routes for
:class:`~repro.routing.dynamic.AdaptiveEtxRouting` driven by periodic
link re-estimation (see :func:`~repro.experiments.runner.build_network`).
The non-zero bars therefore measure the combined deployment reality —
motion *plus* live ETX route maintenance — not motion in isolation; to
isolate the effect of speed, compare non-zero speeds against each other
(they share the adaptive-routing pipeline and differ only in how fast
links churn).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.grids import Axis, scenario_grid
from repro.experiments.parallel import SweepRunner
from repro.experiments.runner import ScenarioConfig
from repro.experiments.voip import voip_topology
from repro.mobility.spec import MobilitySpec
from repro.phy.params import LOW_RATE_PHY
from repro.topology.standard import fig1_topology

#: Node speeds (m/s) the panels sweep: pedestrian through vehicular.
MOBILITY_SPEEDS_MPS: Tuple[float, ...] = (0.0, 1.0, 2.5, 5.0, 10.0)
#: Schemes compared (the paper's D/A/R1/R16 bars; no "S" — a direct route
#: between moving end points is not meaningful).
MOBILITY_SCHEMES: Tuple[str, ...] = ("D", "A", "R1", "R16")
#: Position-update / link re-estimation cadence for the sweeps (seconds).
UPDATE_INTERVAL_S = 0.05
REESTIMATE_INTERVAL_S = 0.25


def mobility_spec(speed_mps: float, pause_s: float = 0.5) -> MobilitySpec:
    """The random-waypoint spec one sweep point uses (static at speed 0)."""
    return MobilitySpec.random_waypoint(
        float(speed_mps),
        pause_s=pause_s,
        update_interval_s=UPDATE_INTERVAL_S,
        reestimate_interval_s=REESTIMATE_INTERVAL_S,
    )


@dataclass
class MobilityTcpResult:
    """TCP panel: total throughput per scheme per node speed."""

    #: throughput_mbps[scheme_label][speed_mps] = total TCP Mb/s
    throughput_mbps: Dict[str, Dict[float, float]] = field(default_factory=dict)
    #: reordering[scheme_label][speed_mps] = fraction of TCP packets re-ordered
    reordering: Dict[str, Dict[float, float]] = field(default_factory=dict)


@dataclass
class MobilityVoipResult:
    """VoIP panel: mean MoS per scheme per node speed."""

    #: mos[scheme_label][speed_mps] = mean MoS over the active calls
    mos: Dict[str, Dict[float, float]] = field(default_factory=dict)
    #: loss[scheme_label][speed_mps] = mean effective loss rate (late + lost)
    loss: Dict[str, Dict[float, float]] = field(default_factory=dict)


def mobility_tcp_grid(
    speeds: Sequence[float] = MOBILITY_SPEEDS_MPS,
    schemes: Sequence[str] = MOBILITY_SCHEMES,
    duration_s: float = 1.0,
    seed: int = 1,
) -> Tuple[List[ScenarioConfig], List[Tuple[str, float]]]:
    """The declarative grid for the TCP panel: ``(configs, (scheme, speed) keys)``."""
    base = ScenarioConfig(
        topology=fig1_topology(),
        route_set="ROUTE0",
        active_flows=[1],
        duration_s=duration_s,
        seed=seed,
    )
    return scenario_grid(
        base,
        {
            "scheme_label": schemes,
            "speed": Axis(
                speeds,
                bind=lambda config, speed: replace(config, mobility=mobility_spec(speed)),
                key=float,
            ),
        },
    )


def run_mobility_tcp(
    speeds: Sequence[float] = MOBILITY_SPEEDS_MPS,
    schemes: Sequence[str] = MOBILITY_SCHEMES,
    duration_s: float = 1.0,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
) -> MobilityTcpResult:
    """TCP throughput vs node speed (D/A/R1/R16 bars per speed group)."""
    configs, keys = mobility_tcp_grid(speeds, schemes, duration_s, seed)
    outcomes = (runner or SweepRunner()).run(configs)
    result = MobilityTcpResult()
    for (label, speed), outcome in zip(keys, outcomes):
        result.throughput_mbps.setdefault(label, {})[speed] = outcome.total_throughput_mbps
        result.reordering.setdefault(label, {})[speed] = outcome.reordering_ratio
    return result


def mobility_voip_grid(
    speeds: Sequence[float] = MOBILITY_SPEEDS_MPS,
    schemes: Sequence[str] = MOBILITY_SCHEMES,
    n_flows: int = 10,
    duration_s: float = 2.0,
    seed: int = 1,
) -> Tuple[List[ScenarioConfig], List[Tuple[str, float]]]:
    """The declarative grid for the VoIP panel: ``(configs, (scheme, speed) keys)``."""
    base = ScenarioConfig(
        topology=voip_topology(),
        route_set="ROUTE0",
        active_flows=list(range(1, n_flows + 1)),
        duration_s=duration_s,
        seed=seed,
        phy=LOW_RATE_PHY,
    )
    return scenario_grid(
        base,
        {
            "scheme_label": schemes,
            "speed": Axis(
                speeds,
                bind=lambda config, speed: replace(config, mobility=mobility_spec(speed)),
                key=float,
            ),
        },
    )


def run_mobility_voip(
    speeds: Sequence[float] = MOBILITY_SPEEDS_MPS,
    schemes: Sequence[str] = MOBILITY_SCHEMES,
    n_flows: int = 10,
    duration_s: float = 2.0,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
) -> MobilityVoipResult:
    """Mean VoIP MoS vs node speed (D/A/R1/R16 bars per speed group)."""
    configs, keys = mobility_voip_grid(speeds, schemes, n_flows, duration_s, seed)
    outcomes = (runner or SweepRunner()).run(configs)
    result = MobilityVoipResult()
    for (label, speed), outcome in zip(keys, outcomes):
        qualities = list(outcome.voip_quality.values())
        if qualities:
            mos = sum(q.mos for q in qualities) / len(qualities)
            loss = sum(q.loss_rate for q in qualities) / len(qualities)
        else:
            mos = 1.0
            loss = 1.0
        result.mos.setdefault(label, {})[speed] = mos
        result.loss.setdefault(label, {})[speed] = loss
    return result
