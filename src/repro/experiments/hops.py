"""Path length sweep with and without cross traffic: Fig. 7(a) and 7(b).

A single long-lived TCP flow runs over a line of 2..7 hops (the longest
path length reported in the opportunistic-routing literature, per the
paper); in Fig. 7(b) a saturating 3-hop cross flow shares the middle
relay.  Throughput falls with distance and RIPPLE stays on top; beyond
5 hops the end points cannot hear each other at all, so RIPPLE's
performance "depends entirely on the forwarders' help".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.grids import scenario_grid, topology_axis
from repro.experiments.parallel import SweepRunner
from repro.experiments.runner import ScenarioConfig
from repro.topology.standard import line_topology

#: Schemes plotted in Fig. 7.
HOPS_SCHEMES: tuple[str, ...] = ("D", "A", "R16")


@dataclass
class HopsResult:
    """Fig. 7: flow-1 throughput versus hop count, with/without cross traffic."""

    cross_traffic: bool
    #: throughput_mbps[scheme_label][n_hops] = flow 1 throughput in Mb/s
    throughput_mbps: Dict[str, Dict[int, float]] = field(default_factory=dict)


def hops_grid(
    hop_counts: Sequence[int] = (2, 3, 4, 5, 6, 7),
    cross_traffic: bool = False,
    schemes: Sequence[str] = HOPS_SCHEMES,
    bit_error_rate: float = 1e-6,
    duration_s: float = 1.0,
    seed: int = 1,
) -> Tuple[List[ScenarioConfig], List[Tuple[str, int]]]:
    """The declarative config grid for Fig. 7.

    Returns ``(configs, keys)`` where each key is the ``(scheme label,
    hop count)`` cell the same-index config fills.
    """
    base = ScenarioConfig(
        topology=line_topology(hop_counts[0], cross_traffic=cross_traffic),
        route_set="ROUTE0",
        bit_error_rate=bit_error_rate,
        duration_s=duration_s,
        seed=seed,
    )
    return scenario_grid(
        base,
        {
            "scheme_label": schemes,
            "n_hops": topology_axis(
                hop_counts, lambda hops: line_topology(hops, cross_traffic=cross_traffic)
            ),
        },
    )


def run_hops(
    hop_counts: Sequence[int] = (2, 3, 4, 5, 6, 7),
    cross_traffic: bool = False,
    schemes: Sequence[str] = HOPS_SCHEMES,
    bit_error_rate: float = 1e-6,
    duration_s: float = 1.0,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
) -> HopsResult:
    """Reproduce Fig. 7(a) (``cross_traffic=False``) or Fig. 7(b) (``True``)."""
    configs, keys = hops_grid(hop_counts, cross_traffic, schemes, bit_error_rate, duration_s, seed)
    outcomes = (runner or SweepRunner()).run(configs)
    result = HopsResult(cross_traffic=cross_traffic)
    for (label, hops), outcome in zip(keys, outcomes):
        result.throughput_mbps.setdefault(label, {})[hops] = outcome.flow_throughput(1)
    return result
