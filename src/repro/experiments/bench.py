"""``repro.bench`` — the simulator's performance baseline subsystem.

The ROADMAP's north star is a simulator that runs "as fast as the
hardware allows"; this module is how that claim is measured rather than
asserted.  It times a fixed scenario matrix — the clear/noisy line
topologies, the Roofnet and Wigle meshes, and a random-waypoint mobility
run, each under the paper's D/A/R1/R16 schemes — and reports, per case,

* processed simulation events and wall-clock seconds,
* the headline **events/second** throughput of the event engine + PHY
  dispatch + MAC hot path.

Results are written to ``BENCH_<revision>.json`` so every future PR has a
trajectory to compare against, and ``bench compare`` diffs two such
reports case by case (exit code 4 when any case's events/s drops by more
than ``--threshold`` percent)::

    python -m repro.experiments bench                 # full matrix
    python -m repro.experiments bench --quick         # CI smoke subset
    python -m repro.experiments bench --families roofnet wigle --schemes R16
    python -m repro.experiments bench compare BENCH_old.json BENCH_new.json --threshold 5
    python -m repro.experiments bench compare BENCH_old.json BENCH_new.json --json

Timing runs always simulate — the sweep result cache is deliberately
bypassed, since a cache hit would time JSON deserialisation instead of
the simulator.  With ``--repeats N`` each case is run N times and the
best (minimum) wall time is kept, the standard way to strip scheduler
noise from a throughput number.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.mobility.spec import MobilitySpec
from repro.phy.params import LOW_RATE_PHY
from repro.topology.roofnet import roofnet_scenario
from repro.topology.standard import fig1_topology, line_topology
from repro.topology.wigle import wigle_topology

#: Scheme labels every family is benchmarked under (the paper's bars).
DEFAULT_SCHEMES: Sequence[str] = ("D", "A", "R1", "R16")

#: Default simulated duration per case.  Long enough that steady-state MAC
#: behaviour dominates: with short runs TCP is still in slow start, frames
#: are small and rare, and timer events drown out the per-transmission
#: dispatch cost the benchmark exists to track (on the heavy topologies
#: the steady-state event rate differs from the warm-up rate by 3-8x).
DEFAULT_DURATION_S = 2.0


@dataclass(frozen=True)
class BenchCase:
    """One timed simulation: a scenario family under one scheme."""

    family: str
    scheme: str
    config: ScenarioConfig

    @property
    def name(self) -> str:
        return f"{self.family}/{self.scheme}"


@dataclass
class BenchCaseResult:
    """Timing outcome of one :class:`BenchCase`."""

    family: str
    scheme: str
    sim_duration_s: float
    events: int
    wall_s: float
    throughput_mbps: float

    @property
    def name(self) -> str:
        return f"{self.family}/{self.scheme}"

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "family": self.family,
            "scheme": self.scheme,
            "sim_duration_s": self.sim_duration_s,
            "events": self.events,
            "wall_s": round(self.wall_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "throughput_mbps": round(self.throughput_mbps, 4),
        }


@dataclass
class BenchReport:
    """A full bench run: per-case numbers plus environment provenance."""

    revision: str
    duration_s: float
    repeats: int
    cases: List[BenchCaseResult] = field(default_factory=list)
    #: Raw PHY dispatch microbenchmarks (see :func:`dispatch_micro`).
    dispatch: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        total_events = sum(case.events for case in self.cases)
        total_wall = sum(case.wall_s for case in self.cases)
        families: Dict[str, Dict[str, float]] = {}
        for case in self.cases:
            bucket = families.setdefault(case.family, {"events": 0, "wall_s": 0.0})
            bucket["events"] += case.events
            bucket["wall_s"] += case.wall_s
        return {
            "revision": self.revision,
            "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "duration_s": self.duration_s,
            "repeats": self.repeats,
            "cases": [case.to_dict() for case in self.cases],
            "dispatch": list(self.dispatch),
            "summary": {
                "total_events": total_events,
                "total_wall_s": round(total_wall, 3),
                "events_per_sec_overall": round(total_events / total_wall, 1)
                if total_wall > 0
                else 0.0,
                "events_per_sec_by_family": {
                    family: round(bucket["events"] / bucket["wall_s"], 1)
                    if bucket["wall_s"] > 0
                    else 0.0
                    for family, bucket in sorted(families.items())
                },
            },
        }


# ----------------------------------------------------------------------
# The scenario matrix
# ----------------------------------------------------------------------
def _family_configs(duration_s: float, seed: int) -> Dict[str, ScenarioConfig]:
    """The benchmark families, as base configs (scheme filled in per case).

    The mix is chosen to stress different parts of the hot path: the line
    topologies are relay-pipeline bound, Roofnet is the large-N dispatch
    stressor (38 stations, 6 concurrent TCP flows), Wigle adds hidden
    terminals, the mobility run adds per-tick geometry invalidation
    and live re-estimation on top, and line-cubic swaps the congestion
    controller so the per-ACK cubic-curve arithmetic is timed too.
    """
    from repro.spec import TransportSpec

    return {
        "line-clear": ScenarioConfig(
            topology=line_topology(5),
            bit_error_rate=1e-6,
            duration_s=duration_s,
            seed=seed,
        ),
        "line-cubic": ScenarioConfig(
            topology=line_topology(5),
            transport=TransportSpec("cubic"),
            bit_error_rate=1e-6,
            duration_s=duration_s,
            seed=seed,
        ),
        "line-noisy": ScenarioConfig(
            topology=line_topology(5),
            bit_error_rate=1e-5,
            duration_s=duration_s,
            seed=seed,
        ),
        "roofnet": ScenarioConfig(
            topology=roofnet_scenario(seed=7),
            phy=LOW_RATE_PHY,
            duration_s=duration_s,
            seed=seed,
        ),
        "wigle": ScenarioConfig(
            topology=wigle_topology(include_hidden=True),
            phy=LOW_RATE_PHY,
            duration_s=duration_s,
            seed=seed,
        ),
        "mobility": ScenarioConfig(
            topology=fig1_topology(),
            mobility=MobilitySpec.random_waypoint(10.0),
            duration_s=duration_s,
            seed=seed,
        ),
    }


def default_cases(
    duration_s: float = DEFAULT_DURATION_S,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    families: Optional[Sequence[str]] = None,
    seed: int = 1,
) -> List[BenchCase]:
    """Build the benchmark matrix (every family × every scheme)."""
    from dataclasses import replace

    all_families = _family_configs(duration_s, seed)
    if families is None:
        chosen = list(all_families)
    else:
        unknown = [name for name in families if name not in all_families]
        if unknown:
            raise ValueError(
                f"unknown bench families {unknown}; known: {sorted(all_families)}"
            )
        chosen = list(families)
    return [
        BenchCase(family=family, scheme=scheme,
                  config=replace(all_families[family], scheme_label=scheme))
        for family in chosen
        for scheme in schemes
    ]


#: --quick defaults: one cheap and one heavy family under two schemes, at a
#: duration sized so a CI runner finishes in roughly ten seconds while the
#: large-N dispatch path (Roofnet) is still exercised.
QUICK_DURATION_S = 0.08
QUICK_FAMILIES: Sequence[str] = ("line-clear", "line-cubic", "roofnet")
QUICK_SCHEMES: Sequence[str] = ("D", "R16")


def quick_cases(duration_s: float = QUICK_DURATION_S, seed: int = 1) -> List[BenchCase]:
    """The CI smoke subset (see the QUICK_* constants)."""
    return default_cases(
        duration_s=duration_s, schemes=QUICK_SCHEMES, families=QUICK_FAMILIES, seed=seed
    )


# ----------------------------------------------------------------------
# PHY dispatch microbenchmark
# ----------------------------------------------------------------------
def dispatch_micro(
    topology: str = "roofnet", frames: int = 2000, repeats: int = 1, seed: int = 1
) -> Dict[str, object]:
    """Time the raw transmission hot path, isolated from MAC and transport.

    Builds the named topology's radios on a channel (no protocol stacks),
    then saturates it: each frame is transmitted by the next radio in
    round-robin order and the resulting signal events are drained.  Only
    the ``Radio.transmit`` → ``WirelessChannel.start_transmission`` calls
    are inside the timed region — per-receiver fade draw, threshold
    compare, Reception allocation and signal scheduling, the path the
    neighborhood cull and keyed per-link RNG refactor targets — while the
    drain between frames runs off the clock.  Reported as
    transmissions/second (and the drain's events/second alongside).
    """
    from repro.mac.frames import FrameKind, MacFrame, SubPacket
    from repro.mac.timing import DEFAULT_TIMING
    from repro.packet import Packet
    from repro.phy.radio import Radio
    from repro.sim.engine import Simulator
    from repro.sim.rng import RandomStreams
    from repro.sim.units import us

    specs = {
        "roofnet": lambda: roofnet_scenario(seed=7),
        "wigle": lambda: wigle_topology(include_hidden=True),
        "line": lambda: line_topology(5),
    }
    if topology not in specs:
        raise ValueError(f"unknown dispatch topology {topology!r}; known: {sorted(specs)}")
    spec = specs[topology]()

    def build():
        from repro.phy.channel import WirelessChannel

        sim = Simulator()
        channel = WirelessChannel(sim, LOW_RATE_PHY, rng=RandomStreams(seed))
        radios = [
            Radio(node_id, position, channel)
            for node_id, position in sorted(spec.positions.items())
        ]
        subpacket = SubPacket(
            packet=Packet(src=0, dst=1, size_bytes=1000, seq=0),
            mac_seq=0,
            bits=DEFAULT_TIMING.subpacket_bits(1000),
        )
        frame = MacFrame(
            kind=FrameKind.DATA, origin=0, final_dst=1, transmitter=0, receiver=1,
            header_bits=DEFAULT_TIMING.header_bits(), subpackets=[subpacket],
        )
        return sim, radios, frame

    best_wall = float("inf")
    best_total = float("inf")
    events = 0
    clock = time.perf_counter
    for _ in range(max(1, int(repeats))):
        sim, radios, frame = build()
        n_radios = len(radios)
        dispatch_wall = 0.0
        run_start = clock()
        for index in range(frames):
            radio = radios[index % n_radios]
            start = clock()
            radio.transmit(frame, us(200))
            dispatch_wall += clock() - start
            sim.run()
        total_wall = clock() - run_start
        if dispatch_wall < best_wall:
            best_wall = dispatch_wall
            best_total = total_wall
            events = sim.processed_events
    return {
        "topology": topology,
        "radios": len(spec.positions),
        "frames": frames,
        "events": events,
        "wall_s": round(best_wall, 6),
        "total_wall_s": round(best_total, 6),
        "transmissions_per_sec": round(frames / best_wall, 1) if best_wall > 0 else 0.0,
        "events_per_sec": round(events / best_total, 1) if best_total > 0 else 0.0,
    }


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_case(case: BenchCase, repeats: int = 1) -> BenchCaseResult:
    """Time one case; with ``repeats > 1`` keep the best wall time."""
    best_wall = float("inf")
    events = 0
    throughput = 0.0
    for _ in range(max(1, int(repeats))):
        start = time.perf_counter()
        result = run_scenario(case.config)
        wall = time.perf_counter() - start
        if wall < best_wall:
            best_wall = wall
            events = result.events_processed
            throughput = result.total_throughput_mbps
    return BenchCaseResult(
        family=case.family,
        scheme=case.scheme,
        sim_duration_s=case.config.duration_s,
        events=events,
        wall_s=best_wall,
        throughput_mbps=throughput,
    )


def run_bench(
    cases: Iterable[BenchCase],
    repeats: int = 1,
    revision: Optional[str] = None,
    progress=None,
    dispatch_topologies: Sequence[str] = (),
) -> BenchReport:
    """Run every case serially (parallel workers would contend for cores)."""
    cases = list(cases)
    duration = cases[0].config.duration_s if cases else 0.0
    report = BenchReport(
        revision=revision or git_revision(), duration_s=duration, repeats=repeats
    )
    for case in cases:
        outcome = run_case(case, repeats=repeats)
        report.cases.append(outcome)
        if progress is not None:
            progress(outcome)
    for topology in dispatch_topologies:
        report.dispatch.append(dispatch_micro(topology, repeats=repeats))
    return report


def git_revision() -> str:
    """Short git revision of the working tree, or ``"local"`` off-repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "local"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "local"


def write_report(report: BenchReport, path: Optional[str] = None) -> Path:
    """Serialise ``report`` to ``path`` (default ``BENCH_<revision>.json``)."""
    target = Path(path) if path else Path(f"BENCH_{report.revision}.json")
    target.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
    return target


def format_report(report: BenchReport) -> str:
    """Aligned text rendering of a report, matching the other experiment tables."""
    header = f"{'case':<20} {'events':>9} {'wall s':>8} {'events/s':>11} {'Mb/s':>8}"
    lines = [header, "-" * len(header)]
    for case in report.cases:
        lines.append(
            f"{case.name:<20} {case.events:>9} {case.wall_s:>8.3f} "
            f"{case.events_per_sec:>11,.0f} {case.throughput_mbps:>8.2f}"
        )
    data = report.to_dict()["summary"]
    lines.append("-" * len(header))
    lines.append(
        f"{'overall':<20} {data['total_events']:>9} {data['total_wall_s']:>8.3f} "
        f"{data['events_per_sec_overall']:>11,.0f}"
    )
    for micro in report.dispatch:
        lines.append(
            f"{'dispatch/' + str(micro['topology']):<20} "
            f"{micro['frames']} frames {micro['wall_s']:>8.3f} s "
            f"{micro['transmissions_per_sec']:>11,.0f} tx/s"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Baseline comparison (``bench compare A.json B.json``)
# ----------------------------------------------------------------------
def load_report(path: str) -> Dict[str, object]:
    """Read a ``BENCH_*.json`` report written by :func:`write_report`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _case_name(case: Dict[str, object]) -> str:
    """Best-effort case name: ``name`` field, else ``family/scheme``.

    Older report writers stored only ``family``/``scheme``; renamed or
    hand-edited reports may carry either shape.  Compare must degrade to
    a symmetric-difference report rather than crash on the shape change.
    """
    name = case.get("name")
    if name:
        return str(name)
    return f"{case.get('family', '?')}/{case.get('scheme', '?')}"


def compare_reports_data(
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold_pct: float = 5.0,
) -> Dict[str, object]:
    """Structured diff of two bench reports (the ``--json`` payload).

    Cases present in both reports are compared; cases present in only one
    (added, removed or renamed between revisions) are listed under
    ``only_in_baseline`` / ``only_in_current`` and never gate.  Each
    compared row carries a ``status``:

    * ``"regression"`` — events/s dropped by more than ``threshold_pct``,
    * ``"durations differ"`` — timed at different simulated durations, so
      the numbers are only loosely comparable and the row is not gated,
    * ``"ok"`` — everything else.
    """
    base_cases = {_case_name(case): case for case in baseline.get("cases", [])}
    cur_cases = {_case_name(case): case for case in current.get("cases", [])}
    rows: List[Dict[str, object]] = []
    regressions: List[str] = []
    for name in sorted(set(base_cases) & set(cur_cases)):
        base = base_cases[name]
        cur = cur_cases[name]
        base_eps = float(base.get("events_per_sec", 0.0))
        cur_eps = float(cur.get("events_per_sec", 0.0))
        delta_pct = 100.0 * (cur_eps - base_eps) / base_eps if base_eps > 0 else 0.0
        if base.get("sim_duration_s") != cur.get("sim_duration_s"):
            status = "durations differ"
        elif delta_pct < -threshold_pct:
            status = "regression"
            regressions.append(name)
        else:
            status = "ok"
        rows.append(
            {
                "name": name,
                "baseline_events_per_sec": base_eps,
                "current_events_per_sec": cur_eps,
                "delta_pct": round(delta_pct, 2),
                "baseline_sim_duration_s": base.get("sim_duration_s"),
                "current_sim_duration_s": cur.get("sim_duration_s"),
                "status": status,
            }
        )
    base_micro = {str(m.get("topology", "?")): m for m in baseline.get("dispatch", [])}
    cur_micro = {str(m.get("topology", "?")): m for m in current.get("dispatch", [])}
    dispatch_rows: List[Dict[str, object]] = []
    for topology in sorted(set(base_micro) & set(cur_micro)):
        base_tps = float(base_micro[topology].get("transmissions_per_sec", 0.0))
        cur_tps = float(cur_micro[topology].get("transmissions_per_sec", 0.0))
        delta_pct = 100.0 * (cur_tps - base_tps) / base_tps if base_tps > 0 else 0.0
        status = "ok"
        if delta_pct < -threshold_pct:
            status = "regression"
            regressions.append(f"dispatch/{topology}")
        dispatch_rows.append(
            {
                "name": f"dispatch/{topology}",
                "baseline_transmissions_per_sec": base_tps,
                "current_transmissions_per_sec": cur_tps,
                "delta_pct": round(delta_pct, 2),
                "status": status,
            }
        )
    return {
        "baseline_revision": baseline.get("revision", "?"),
        "current_revision": current.get("revision", "?"),
        "threshold_pct": threshold_pct,
        "cases": rows,
        "dispatch": dispatch_rows,
        "only_in_baseline": sorted(set(base_cases) - set(cur_cases)),
        "only_in_current": sorted(set(cur_cases) - set(base_cases)),
        "regressions": regressions,
    }


def compare_reports(
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold_pct: float = 5.0,
) -> Tuple[str, List[str]]:
    """Diff two bench reports case by case.

    Returns ``(table_text, regressions)`` where ``regressions`` lists the
    case names whose events/s dropped by more than ``threshold_pct``
    relative to the baseline.  Cases present in only one report (renamed
    or added between revisions) are reported as a symmetric difference
    but never counted as regressions; cases timed at different simulated
    durations are flagged (warm-up effects make their events/s only
    loosely comparable) and excluded from regression accounting too.
    """
    data = compare_reports_data(baseline, current, threshold_pct=threshold_pct)
    header = (
        f"{'case':<20} {'base ev/s':>12} {'current ev/s':>13} {'delta':>8}   "
        f"(threshold -{threshold_pct:g}%)"
    )
    lines = [
        f"baseline {data['baseline_revision']}  vs  current {data['current_revision']}",
        header,
        "-" * len(header),
    ]
    for row in data["cases"]:
        note = ""
        if row["status"] == "durations differ":
            note = (
                f"   [durations differ: {row['baseline_sim_duration_s']} vs "
                f"{row['current_sim_duration_s']} s — not gated]"
            )
        elif row["status"] == "regression":
            note = "   REGRESSION"
        lines.append(
            f"{row['name']:<20} {row['baseline_events_per_sec']:>12,.0f} "
            f"{row['current_events_per_sec']:>13,.0f} {row['delta_pct']:>+7.1f}%{note}"
        )
    for name in data["only_in_baseline"]:
        lines.append(f"{name:<20} {'—':>12} {'—':>13} {'—':>8}   only in baseline")
    for name in data["only_in_current"]:
        lines.append(f"{name:<20} {'—':>12} {'—':>13} {'—':>8}   only in current")
    for row in data["dispatch"]:
        note = "   REGRESSION" if row["status"] == "regression" else ""
        lines.append(
            f"{row['name']:<20} {row['baseline_transmissions_per_sec']:>12,.0f} "
            f"{row['current_transmissions_per_sec']:>13,.0f} {row['delta_pct']:>+7.1f}%{note}"
        )
    lines.append("-" * len(header))
    if data["only_in_baseline"] or data["only_in_current"]:
        lines.append(
            f"case sets differ — compared {len(data['cases'])} common case(s); "
            f"only in baseline: {', '.join(data['only_in_baseline']) or '(none)'}; "
            f"only in current: {', '.join(data['only_in_current']) or '(none)'}"
        )
    regressions = list(data["regressions"])
    if regressions:
        lines.append(
            f"{len(regressions)} regression(s) beyond {threshold_pct:g}%: "
            + ", ".join(regressions)
        )
    else:
        lines.append(f"no regressions beyond {threshold_pct:g}%")
    return "\n".join(lines), regressions


def run_compare_cli(args) -> int:
    """Execute ``bench compare <baseline> <current>``; 4 on regression.

    File and format problems exit 2 with a message (distinct from the
    regression code, so callers can script on the exit status).
    """
    try:
        baseline = load_report(args.positional[1])
        current = load_report(args.positional[2])
        if getattr(args, "json", False):
            data = compare_reports_data(baseline, current, threshold_pct=args.threshold)
            regressions = list(data["regressions"])
            text = json.dumps(data, indent=2)
        else:
            text, regressions = compare_reports(
                baseline, current, threshold_pct=args.threshold
            )
    except OSError as exc:
        print(f"bench compare: cannot read report: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, TypeError, AttributeError) as exc:
        print(f"bench compare: malformed report: {exc!r}", file=sys.stderr)
        return 2
    print(text)
    return 4 if regressions else 0


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - thin CLI shim
    """Standalone entry point (``python -m repro.experiments bench`` wraps this)."""
    import argparse

    parser = argparse.ArgumentParser(prog="python -m repro.experiments bench")
    add_bench_arguments(parser)
    return run_bench_cli(parser.parse_args(argv))


def add_bench_arguments(parser) -> None:
    """Attach the bench flags to an (sub)parser; shared with the CLI."""
    parser.add_argument(
        "positional", nargs="*", metavar="compare A.json B.json",
        help="subcommand: 'compare BASELINE CURRENT' diffs two bench reports "
             "(per-case events/s delta; exit 4 on regression); empty = run the bench",
    )
    parser.add_argument(
        "--threshold", type=float, default=5.0, metavar="PCT",
        help="events/s drop (in %%) counted as a regression by 'compare' (default 5)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="'compare' only: emit the structured diff as JSON (for CI tooling); "
             "exit codes are unchanged",
    )
    parser.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help=f"simulated seconds per case (default {DEFAULT_DURATION_S})",
    )
    parser.add_argument(
        "--repeats", type=int, default=1, metavar="N",
        help="time each case N times and keep the best wall time (default 1)",
    )
    parser.add_argument(
        "--schemes", nargs="+", default=None, metavar="LABEL",
        help=f"scheme labels to bench (default {' '.join(DEFAULT_SCHEMES)})",
    )
    parser.add_argument(
        "--families", nargs="+", default=None, metavar="FAMILY",
        help="scenario families (default: all; see module docstring)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="scenario seed (default 1)"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke subset (~10 s): line-clear + roofnet under D and R16",
    )
    parser.add_argument(
        "--no-dispatch", action="store_true",
        help="skip the raw PHY dispatch microbenchmarks (roofnet + wigle)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="result file (default BENCH_<git rev>.json in the working directory)",
    )


def run_bench_cli(args) -> int:
    """Execute a parsed bench invocation; returns a process exit code."""
    positional = list(getattr(args, "positional", []) or [])
    if positional:
        if positional[0] != "compare" or len(positional) != 3:
            print(
                "usage: bench [flags]  |  bench compare BASELINE.json CURRENT.json "
                "[--threshold PCT]",
                file=sys.stderr,
            )
            return 2
        return run_compare_cli(args)
    # --quick only swaps in smaller *defaults*; explicit --duration,
    # --families and --schemes always win so the flags compose rather than
    # silently overriding each other.
    if args.quick:
        duration = args.duration if args.duration is not None else QUICK_DURATION_S
        families = tuple(args.families) if args.families else QUICK_FAMILIES
        schemes = tuple(args.schemes) if args.schemes else QUICK_SCHEMES
    else:
        duration = args.duration if args.duration is not None else DEFAULT_DURATION_S
        families = tuple(args.families) if args.families else None
        schemes = tuple(args.schemes) if args.schemes else DEFAULT_SCHEMES
    cases = default_cases(
        duration_s=duration, schemes=schemes, families=families, seed=args.seed
    )

    def progress(outcome: BenchCaseResult) -> None:
        print(
            f"  {outcome.name:<20} {outcome.events:>9} events  "
            f"{outcome.wall_s:>7.3f} s  {outcome.events_per_sec:>11,.0f} ev/s",
            file=sys.stderr,
        )

    dispatch_topologies: Sequence[str] = ()
    if not args.no_dispatch:
        dispatch_topologies = ("roofnet",) if args.quick else ("roofnet", "wigle")
    print(f"benching {len(cases)} cases ({duration:g} simulated s each)...", file=sys.stderr)
    report = run_bench(
        cases, repeats=args.repeats, progress=progress,
        dispatch_topologies=dispatch_topologies,
    )
    print(format_report(report))
    target = write_report(report, args.output)
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
