"""Parallel sweep execution with content-hashed result caching.

Every figure and table of the paper is an embarrassingly parallel sweep:
the same :func:`~repro.experiments.runner.run_scenario` evaluated over a
grid of scheme labels, seeds, BER points and topology parameters, each
point fully determined by its :class:`~repro.experiments.runner.ScenarioConfig`.
This module is the execution subsystem the experiment modules route that
work through:

* :func:`expand_grid` — turn a base config plus per-field value lists into
  the Cartesian product of configs (the declarative grid).
* :class:`SweepRunner` — evaluate a list of configs, optionally fanned out
  over ``multiprocessing`` workers.  Results come back in input order and
  are bit-identical to a serial run because every scenario is seeded and
  self-contained (both the serial and the parallel path round-trip results
  through the same ``to_dict``/``from_dict`` layer, so cached, local and
  worker-produced results are interchangeable).
* :class:`ResultCache` — an on-disk JSON cache keyed by a stable SHA-256
  digest of the config (:func:`config_digest`), making re-runs incremental:
  only configs never seen before are simulated.

Cache layout::

    <cache root>/                e.g. .repro-cache/ or $REPRO_CACHE_DIR
      ab/                        first two hex digits of the digest
        ab3f...e1.json           ScenarioResult.to_dict() of that config

The cache is safe to delete at any time and safe to share between
processes (or machines on a shared filesystem — the simulation service
of :mod:`repro.service` uses exactly that): entries are written
atomically (tmp file + rename), and a corrupt entry is *quarantined* —
renamed to ``<digest>.json.corrupt`` and counted — so the slot heals on
the next ``store`` instead of staying a silent permanent miss.

Typical use (see also ``python -m repro.experiments`` and
``examples/sweep_parallel.py``)::

    from repro.experiments.parallel import ResultCache, SweepRunner, expand_grid

    grid = expand_grid(base, scheme_label=["D", "A", "R16"], seed=[1, 2, 3])
    runner = SweepRunner(jobs=4, cache=ResultCache())
    results = runner.run(grid)      # List[ScenarioResult], input order
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import tempfile
from itertools import product
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.runner import ScenarioConfig, ScenarioResult, run_scenario

#: Default cache root; override with the ``REPRO_CACHE_DIR`` environment variable.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Version of the ``ScenarioConfig`` serialization layout, folded into every
#: cache digest.  Bump it whenever the meaning of a config dict changes in a
#: way ``to_dict`` round-tripping alone cannot express (a new
#: behaviour-bearing field, changed defaults, ...), so results cached by an
#: older layout are never silently reused as if they matched.
#:
#: History: 1 = pre-mobility layout (PR 1); 2 = ``mobility`` field added;
#: 3 = component-spec layer (``mac``/``routing``/``traffic`` canonicalized
#: against the scheme-label aliases, ``max_deviation_sigmas`` in ``phy``);
#: 4 = component pack (``propagation``/``propagation_params`` in ``phy``,
#: rate-adaptive MAC / Poisson traffic / trace topologies behind component
#: params), so no pre-pack entry can alias a config that now carries
#: component parameters those layouts could not express;
#: 5 = counter-based (Philox) RNG streams — every draw value changed, so a
#: schema-4 result describes a different sample path than a schema-5 run of
#: the same config and must never be reused;
#: 6 = transport registry: result payloads gained per-flow transport
#: counters (``retransmissions``/``fast_retransmits``/``timeouts``/
#: ``rto_backoffs`` and TCP ``packets_sent``), which schema-5 entries lack —
#: config digests for default-transport scenarios are otherwise unchanged
#: (an absent/``reno`` transport serializes to the pre-registry layout).
CACHE_SCHEMA_VERSION = 6


def config_digest(config: ScenarioConfig) -> str:
    """Stable SHA-256 content hash of a scenario config.

    Computed over the canonical sorted-key JSON encoding of
    ``config.to_dict()`` together with :data:`CACHE_SCHEMA_VERSION`; two
    configs that would produce the same simulation share a digest, any
    change to any field (including the topology's positions, flows or
    routes) changes it, and a schema bump invalidates every older entry.
    """
    payload = json.dumps(
        {"schema": CACHE_SCHEMA_VERSION, "config": config.to_dict()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed on-disk store of :class:`ScenarioResult` dicts."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def path_for(self, digest: str) -> Path:
        """Location of the cache entry for ``digest`` (two-level fan-out)."""
        return self.root / digest[:2] / f"{digest}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so the slot heals on the next store.

        Leaving the bad file in place would turn one torn write into a
        *permanent* miss (every load fails, every store is skipped as
        "already simulated" by callers that trust load); renaming it to
        ``.corrupt`` both frees the slot and preserves the evidence.
        """
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            return  # lost a race with another loader; it quarantined first
        self.quarantined += 1

    def load_raw(self, digest: str) -> Optional[Dict[str, object]]:
        """The raw cached payload for ``digest``, or None on a miss.

        This is the digest-addressed read the simulation service's
        ``GET /results/{digest}`` endpoint serves; an entry that exists
        but does not decode is quarantined and reported as a miss.
        """
        path = self.path_for(digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            self.misses += 1
            return None
        try:
            data = json.loads(text)
        except ValueError:
            self._quarantine(path)
            self.misses += 1
            return None
        if not isinstance(data, dict):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return data

    def load(self, config: ScenarioConfig) -> Optional[ScenarioResult]:
        """Return the cached result for ``config``, or None on a miss."""
        digest = config_digest(config)
        data = self.load_raw(digest)
        if data is None:
            return None
        try:
            return ScenarioResult.from_dict(data)
        except (ValueError, KeyError, TypeError):
            # Decoded as JSON but not as a result: a stale or mangled
            # layout under a current digest is corruption all the same.
            self._quarantine(self.path_for(digest))
            self.hits -= 1
            self.misses += 1
            return None

    def stats(self) -> Dict[str, int]:
        """Hit/miss/quarantine counters accumulated on this cache object."""
        return {"hits": self.hits, "misses": self.misses, "quarantined": self.quarantined}

    def store(self, config: ScenarioConfig, result: ScenarioResult) -> None:
        """Persist ``result`` under ``config``'s digest (atomic write)."""
        path = self.path_for(config_digest(config))
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(result.to_dict(), sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


def expand_grid(base: ScenarioConfig, **axes: Sequence) -> List[ScenarioConfig]:
    """Cartesian product of ``base`` with per-field value lists.

    Each keyword names a :class:`ScenarioConfig` field and supplies the
    values to sweep; the product is enumerated in a deterministic order
    (last axis fastest, like nested for loops)::

        expand_grid(base, scheme_label=["D", "R16"], seed=[1, 2, 3])

    yields six configs ordered D/1, D/2, D/3, R16/1, R16/2, R16/3.
    """
    field_names = {f.name for f in dataclasses.fields(ScenarioConfig)}
    unknown = set(axes) - field_names
    if unknown:
        raise TypeError(f"unknown ScenarioConfig fields: {sorted(unknown)}")
    names = list(axes)
    configs: List[ScenarioConfig] = []
    for combo in product(*(axes[name] for name in names)):
        configs.append(dataclasses.replace(base, **dict(zip(names, combo))))
    return configs


def _run_config_to_dict(config: ScenarioConfig) -> Dict[str, object]:
    """Worker entry point: run one scenario, return its serialized result.

    Module-level so it is picklable under every multiprocessing start method.
    Returning the dict (rather than the object graph) keeps the inter-process
    payload identical to what the cache stores, which is what guarantees that
    cached and fresh results are interchangeable.
    """
    return run_scenario(config).to_dict()


class CacheMissError(RuntimeError):
    """Raised by :class:`CacheOnlySweepRunner` when a result was never computed."""


class SweepRunner:
    """Evaluate a list of scenario configs, in parallel and incrementally.

    Parameters
    ----------
    jobs:
        Number of worker processes; ``1`` (the default) runs everything in
        the current process, ``0``/negative means one worker per CPU.
    cache:
        A :class:`ResultCache` for incremental re-runs, or None (default) to
        always simulate.  Hit/miss counts accumulate on the cache object.
    executor:
        Pluggable execution backend: a callable taking the cache-miss
        configs and returning their serialized results
        (``ScenarioResult.to_dict()`` dicts) in the same order.  None
        (default) selects the built-in serial / ``multiprocessing``
        backends according to ``jobs``.  The simulation service plugs in
        :class:`repro.service.executor.JobStoreExecutor` here to drain
        the same sweep through a shared job store instead — the run path
        (cache check, run, store, order restoration) stays this class's
        either way.

    Results are returned in input order and are independent of ``jobs``
    and of the executor: every scenario carries its own seed and builds
    its own simulator, so a 4-way parallel or fully distributed run is
    bit-identical to a serial one.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        executor: Optional[Callable[[List[ScenarioConfig]], List[Dict[str, object]]]] = None,
    ) -> None:
        if jobs <= 0:
            jobs = os.cpu_count() or 1
        self.jobs = int(jobs)
        self.cache = cache
        self.executor = executor

    def run(self, configs: Sequence[ScenarioConfig]) -> List[ScenarioResult]:
        """Run every config (or fetch it from the cache); preserves order."""
        configs = list(configs)
        results: List[Optional[ScenarioResult]] = [None] * len(configs)
        pending: List[int] = []
        for index, config in enumerate(configs):
            cached = self.cache.load(config) if self.cache is not None else None
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)
        if pending:
            fresh = self._execute([configs[index] for index in pending])
            for index, result_dict in zip(pending, fresh):
                result = ScenarioResult.from_dict(result_dict)
                results[index] = result
                if self.cache is not None:
                    self.cache.store(configs[index], result)
        return results  # type: ignore[return-value]  # every slot is filled

    def run_one(self, config: ScenarioConfig) -> ScenarioResult:
        """Convenience wrapper for a single config."""
        return self.run([config])[0]

    # ------------------------------------------------------------------
    # Execution backends
    # ------------------------------------------------------------------
    def _execute(self, configs: List[ScenarioConfig]) -> List[Dict[str, object]]:
        if self.executor is not None:
            return self.executor(configs)
        if self.jobs > 1 and len(configs) > 1:
            return self._execute_parallel(configs)
        return [_run_config_to_dict(config) for config in configs]

    def _execute_parallel(self, configs: List[ScenarioConfig]) -> List[Dict[str, object]]:
        # fork is cheapest where available (Linux); spawn works everywhere
        # else because configs and the worker function are picklable.
        method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        context = multiprocessing.get_context(method)
        with context.Pool(processes=min(self.jobs, len(configs))) as pool:
            return pool.map(_run_config_to_dict, configs)


class CacheOnlySweepRunner(SweepRunner):
    """A runner that only ever *reads*: cache hits or :class:`CacheMissError`.

    Backs the ``report`` CLI subcommand — rendering a completed
    experiment's tables must never silently kick off hours of simulation
    because one grid point is missing.  The error names the missing grid
    points so the user can tell a never-run sweep from a partially
    evicted or differently-parameterised one.
    """

    #: How many missing grid points the error message spells out.
    MISSES_SHOWN = 5

    def __init__(self, cache: ResultCache) -> None:
        super().__init__(jobs=1, cache=cache)

    @staticmethod
    def _describe(config: ScenarioConfig) -> str:
        parts = [
            config.topology.name,
            config.scheme_label,
            f"seed={config.seed}",
            f"duration={config.duration_s:g}s",
        ]
        if config.mobility is not None:
            mobility = config.mobility.model
            speed = config.mobility.params.get("speed_max_mps")
            if speed is not None:
                mobility += f"@{float(speed):g}m/s"
            parts.append(f"mobility={mobility}")
        return "/".join(parts)

    def _execute(self, configs: List[ScenarioConfig]) -> List[Dict[str, object]]:
        shown = ", ".join(self._describe(config) for config in configs[: self.MISSES_SHOWN])
        suffix = ", ..." if len(configs) > self.MISSES_SHOWN else ""
        raise CacheMissError(
            f"{len(configs)} scenario(s) are not in the result cache: {shown}{suffix}"
        )
