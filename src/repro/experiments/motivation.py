"""Section II motivation numbers: why preExOR / MCExOR hurt interactive traffic.

The paper reports, for a single 10-second TCP flow from station 0 to
station 3 of Fig. 1 (BER 1e-6, Table I parameters):

* total throughput — SPR 6.7 Mb/s, preExOR 5.9 Mb/s, MCExOR 5.85 Mb/s
  (i.e. the opportunistic schemes are *worse* than predetermined routing);
* re-ordering — 26.58 % of TCP packets arrive out of order under preExOR
  and 27.9 % under MCExOR, against essentially none for predetermined
  routing.

This module reproduces that comparison.  "SPR" here is the good multi-hop
route (the 0-1-2-3 path of ROUTE0), which is what the paper's shortest
path routing selects once the direct link is excluded by its quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.grids import scenario_grid
from repro.experiments.parallel import SweepRunner
from repro.experiments.runner import ScenarioConfig
from repro.topology.standard import fig1_topology

#: Scheme labels compared in Section II, in presentation order.
MOTIVATION_SCHEMES: tuple[str, ...] = ("D", "preExOR", "MCExOR")


@dataclass
class MotivationResult:
    """Throughput and re-ordering for one forwarding scheme."""

    scheme: str
    throughput_mbps: float
    reordering_ratio: float
    segments_received: int
    reordered_segments: int


def motivation_grid(
    duration_s: float = 1.0, bit_error_rate: float = 1e-6, seed: int = 1
) -> List[ScenarioConfig]:
    """The declarative config grid: one run per Section II scheme."""
    base = ScenarioConfig(
        topology=fig1_topology(),
        route_set="ROUTE0",
        active_flows=[1],
        bit_error_rate=bit_error_rate,
        duration_s=duration_s,
        seed=seed,
    )
    configs, _keys = scenario_grid(base, {"scheme_label": MOTIVATION_SCHEMES})
    return configs


def run_motivation(
    duration_s: float = 1.0,
    bit_error_rate: float = 1e-6,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, MotivationResult]:
    """Run the Section II comparison (single flow 0 -> 3 on the Fig. 1 topology)."""
    configs = motivation_grid(duration_s, bit_error_rate, seed)
    outcomes = (runner or SweepRunner()).run(configs)
    results: Dict[str, MotivationResult] = {}
    for label, outcome in zip(MOTIVATION_SCHEMES, outcomes):
        flow = outcome.flows[0]
        name = {"D": "SPR", "preExOR": "preExOR", "MCExOR": "MCExOR"}[label]
        results[name] = MotivationResult(
            scheme=name,
            throughput_mbps=flow.throughput_mbps,
            reordering_ratio=flow.reordering_ratio,
            segments_received=flow.packets_received,
            reordered_segments=flow.reordered,
        )
    return results
