"""Congestion-control grid: does the MAC verdict survive the transport?

The paper's figures fix TCP Reno (the NS-2 default of its era) and vary
the MAC.  With congestion control now a registry
(:data:`repro.transport.registry.TRANSPORT_SCHEMES`), the obvious
follow-up question is runnable: sweep *transport × MAC* on the same
topology and see whether RIPPLE's ordering advantage holds under Tahoe's
collapse-on-dupack, RFC 6582 NewReno and time-based Cubic.  Two panels:
a clean 3-hop line (``topology="line"``) and a 3-hop Roofnet pair
(``topology="roofnet"``), both long-lived TCP.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.grids import Axis, scenario_grid
from repro.experiments.parallel import SweepRunner
from repro.experiments.runner import ScenarioConfig
from repro.spec import TransportSpec
from repro.topology.standard import line_topology

#: Transport schemes swept by the family (every registered controller).
CONGESTION_TRANSPORTS: Tuple[str, ...] = ("reno", "tahoe", "newreno", "cubic")

#: MAC schemes compared per transport (the paper's baseline and RIPPLE).
CONGESTION_SCHEMES: Tuple[str, ...] = ("D", "R16")


@dataclass
class CongestionResult:
    """One panel: per-transport, per-MAC throughput and loss-recovery work."""

    topology: str
    #: throughput_mbps[transport][scheme_label] = flow-1 throughput in Mb/s
    throughput_mbps: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: retransmissions[transport][scheme_label] = flow-1 retransmitted segments
    retransmissions: Dict[str, Dict[str, int]] = field(default_factory=dict)


def transport_axis(names: Sequence[str]) -> Axis:
    """An axis sweeping the scenario-level :class:`TransportSpec` by name."""
    return Axis(
        values=tuple(names),
        bind=lambda config, name: replace(config, transport=TransportSpec(name)),
    )


def _panel_topology(topology: str, seed: int):
    if topology == "line":
        return line_topology(3), [1]
    if topology == "roofnet":
        from repro.topology.roofnet import roofnet_scenario

        spec = roofnet_scenario(hop_counts=(3,), seed=seed)
        return spec, [spec.flows[0].flow_id]
    raise ValueError(f"unknown congestion panel topology {topology!r}; use 'line' or 'roofnet'")


def congestion_grid(
    topology: str = "line",
    transports: Sequence[str] = CONGESTION_TRANSPORTS,
    schemes: Sequence[str] = CONGESTION_SCHEMES,
    bit_error_rate: float = 1e-6,
    duration_s: float = 1.0,
    seed: int = 1,
) -> Tuple[List[ScenarioConfig], List[Tuple[str, str]]]:
    """The declarative transport × MAC grid for one panel.

    Returns ``(configs, keys)`` where each key is the ``(transport name,
    scheme label)`` cell the same-index config fills.
    """
    spec, active = _panel_topology(topology, seed)
    base = ScenarioConfig(
        topology=spec,
        route_set="ROUTE0",
        active_flows=active,
        bit_error_rate=bit_error_rate,
        duration_s=duration_s,
        seed=seed,
    )
    return scenario_grid(
        base,
        {
            "transport": transport_axis(transports),
            "scheme_label": schemes,
        },
    )


def run_congestion(
    topology: str = "line",
    transports: Sequence[str] = CONGESTION_TRANSPORTS,
    schemes: Sequence[str] = CONGESTION_SCHEMES,
    bit_error_rate: float = 1e-6,
    duration_s: float = 1.0,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
) -> CongestionResult:
    """Run one transport × MAC panel and collect flow-1 metrics."""
    configs, keys = congestion_grid(
        topology, transports, schemes, bit_error_rate, duration_s, seed
    )
    outcomes = (runner or SweepRunner()).run(configs)
    result = CongestionResult(topology=topology)
    flow_id = configs[0].active_flows[0]
    for (transport, label), outcome in zip(keys, outcomes):
        result.throughput_mbps.setdefault(transport, {})[label] = outcome.flow_throughput(flow_id)
        flow = next(f for f in outcome.flows if f.flow_id == flow_id)
        result.retransmissions.setdefault(transport, {})[label] = flow.retransmissions
    return result
