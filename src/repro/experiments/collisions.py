"""Regular and hidden collisions: Fig. 6(a) and Fig. 6(b).

Fig. 6(a): every station is within carrier-sense range of every other
station, so only "regular" collisions (simultaneous backoff expiry plus
shadowing losses) occur; the total throughput of 1..9 parallel two-hop
TCP flows is plotted for DCF, AFR and RIPPLE.

Fig. 6(b): flow 1 is a three-hop TCP flow whose source cannot hear the
sources of up to nine saturating one-hop UDP flows; the hidden traffic
throttles flow 1 as its load grows.  The paper notes that RIPPLE wins up
to roughly 6-7 hidden flows and loses slightly beyond that because its
longer mTXOPs suffer more from hidden collisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.grids import scenario_grid, topology_axis
from repro.experiments.parallel import SweepRunner
from repro.experiments.runner import ScenarioConfig
from repro.topology.standard import fig5a_topology, fig5b_topology

#: The three schemes Fig. 6 compares.
COLLISION_SCHEMES: tuple[str, ...] = ("D", "A", "R16")


@dataclass
class RegularCollisionResult:
    """Fig. 6(a): total throughput versus number of in-range flows."""

    #: throughput_mbps[scheme_label][n_flows] = total TCP throughput
    throughput_mbps: Dict[str, Dict[int, float]] = field(default_factory=dict)


@dataclass
class HiddenCollisionResult:
    """Fig. 6(b): flow-1 throughput versus number of hidden saturating flows."""

    #: throughput_mbps[scheme_label][n_hidden] = flow 1 TCP throughput
    throughput_mbps: Dict[str, Dict[int, float]] = field(default_factory=dict)


def regular_collisions_grid(
    flow_counts: Sequence[int] = (1, 3, 5, 7, 9),
    schemes: Sequence[str] = COLLISION_SCHEMES,
    bit_error_rate: float = 1e-6,
    duration_s: float = 1.0,
    seed: int = 1,
) -> Tuple[List[ScenarioConfig], List[Tuple[str, int]]]:
    """The declarative config grid for Fig. 6(a).

    Returns ``(configs, keys)`` where each key is the ``(scheme label,
    flow count)`` cell the same-index config fills.
    """
    base = ScenarioConfig(
        topology=fig5a_topology(n_flows=flow_counts[0]),
        route_set="ROUTE0",
        bit_error_rate=bit_error_rate,
        duration_s=duration_s,
        seed=seed,
    )
    return scenario_grid(
        base,
        {
            "scheme_label": schemes,
            "n_flows": topology_axis(
                flow_counts, lambda n_flows: fig5a_topology(n_flows=n_flows)
            ),
        },
    )


def run_regular_collisions(
    flow_counts: Sequence[int] = (1, 3, 5, 7, 9),
    schemes: Sequence[str] = COLLISION_SCHEMES,
    bit_error_rate: float = 1e-6,
    duration_s: float = 1.0,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
) -> RegularCollisionResult:
    """Reproduce Fig. 6(a)."""
    configs, keys = regular_collisions_grid(flow_counts, schemes, bit_error_rate, duration_s, seed)
    outcomes = (runner or SweepRunner()).run(configs)
    result = RegularCollisionResult()
    for (label, n_flows), outcome in zip(keys, outcomes):
        result.throughput_mbps.setdefault(label, {})[n_flows] = outcome.total_throughput_mbps
    return result


def hidden_collisions_grid(
    hidden_counts: Sequence[int] = (0, 1, 3, 5, 7, 9),
    schemes: Sequence[str] = COLLISION_SCHEMES,
    bit_error_rate: float = 1e-6,
    duration_s: float = 1.0,
    seed: int = 1,
) -> Tuple[List[ScenarioConfig], List[Tuple[str, int]]]:
    """The declarative config grid for Fig. 6(b).

    Returns ``(configs, keys)`` where each key is the ``(scheme label,
    hidden-flow count)`` cell the same-index config fills.
    """
    base = ScenarioConfig(
        topology=fig5b_topology(n_hidden=hidden_counts[0]),
        route_set="ROUTE0",
        bit_error_rate=bit_error_rate,
        duration_s=duration_s,
        seed=seed,
    )
    return scenario_grid(
        base,
        {
            "scheme_label": schemes,
            "n_hidden": topology_axis(
                hidden_counts, lambda n_hidden: fig5b_topology(n_hidden=n_hidden)
            ),
        },
    )


def run_hidden_collisions(
    hidden_counts: Sequence[int] = (0, 1, 3, 5, 7, 9),
    schemes: Sequence[str] = COLLISION_SCHEMES,
    bit_error_rate: float = 1e-6,
    duration_s: float = 1.0,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
) -> HiddenCollisionResult:
    """Reproduce Fig. 6(b)."""
    configs, keys = hidden_collisions_grid(hidden_counts, schemes, bit_error_rate, duration_s, seed)
    outcomes = (runner or SweepRunner()).run(configs)
    result = HiddenCollisionResult()
    for (label, n_hidden), outcome in zip(keys, outcomes):
        result.throughput_mbps.setdefault(label, {})[n_hidden] = outcome.flow_throughput(1)
    return result
