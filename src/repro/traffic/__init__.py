"""Traffic generators: long-lived TCP, web ON/OFF, VoIP on-off, CBR/saturating UDP, Poisson sessions."""

from repro.traffic.cbr import CbrSource, SaturatingSource
from repro.traffic.ftp import FtpApplication
from repro.traffic.poisson import PoissonFlow
from repro.traffic.registry import TRAFFIC_KINDS, FlowDriver, register_traffic
from repro.traffic.voip import VoipFlow
from repro.traffic.web import WebFlow, pareto_transfer_bytes

__all__ = [
    "TRAFFIC_KINDS",
    "FlowDriver",
    "register_traffic",
    "CbrSource",
    "SaturatingSource",
    "FtpApplication",
    "PoissonFlow",
    "VoipFlow",
    "WebFlow",
    "pareto_transfer_bytes",
]
