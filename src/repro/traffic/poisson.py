"""Poisson session traffic: memoryless arrivals with exponential holding times.

The classic telephony/teletraffic source model (an M/M/∞ session
process): sessions arrive as a Poisson process of rate
``arrival_rate_hz`` and each session, independently, transmits
fixed-interval UDP packets for an exponentially distributed holding time
of mean ``mean_holding_s``.  Sessions overlap freely, so the instantaneous
offered load is ``bitrate_bps`` times the number of concurrently active
sessions — bursty at small arrival rates, smoothing toward
``arrival_rate_hz * mean_holding_s * bitrate_bps`` as sessions stack.

All randomness (inter-arrival and holding draws) comes from the single
keyed generator handed in by the installer
(``network.rng.stream_for("poisson", flow_id)``), so a flow's session
schedule is a pure function of ``(seed, flow_id)`` — independent of other
flows and of sweep parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.units import ms, seconds
from repro.transport.udp import UdpSender


@dataclass
class PoissonFlowStats:
    """Sender-side counters for one Poisson session flow."""

    packets_sent: int = 0
    sessions_started: int = 0
    sessions_active: int = 0


class PoissonFlow:
    """Overlapping Poisson-arriving packet sessions over one UDP sender."""

    def __init__(
        self,
        sim: Simulator,
        sender: UdpSender,
        rng: np.random.Generator,
        arrival_rate_hz: float = 4.0,
        mean_holding_s: float = 0.5,
        bitrate_bps: float = 400_000.0,
        packet_interval_ms: float = 10.0,
    ) -> None:
        if arrival_rate_hz <= 0:
            raise ValueError("arrival_rate_hz must be positive")
        if mean_holding_s <= 0:
            raise ValueError("mean_holding_s must be positive")
        self.sim = sim
        self.sender = sender
        self.rng = rng
        self.arrival_rate_hz = float(arrival_rate_hz)
        self.mean_holding_s = float(mean_holding_s)
        self.packet_interval_ns = ms(packet_interval_ms)
        self.packet_bytes = max(1, int(round(bitrate_bps * packet_interval_ms / 1000.0 / 8.0)))
        self.stats = PoissonFlowStats()
        self._running = False

    def start(self, initial_delay_ns: int = 0) -> None:
        """Start the arrival process (the first session follows an exp. wait)."""
        if self._running:
            return
        self._running = True
        self.sim.schedule(initial_delay_ns + self._exp_ns(1.0 / self.arrival_rate_hz), self._arrive)

    def stop(self) -> None:
        self._running = False

    def reset_stats(self) -> None:
        """Zero sender-side counters at the warmup/measurement boundary."""
        active = self.stats.sessions_active
        self.stats = PoissonFlowStats(sessions_active=active)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _exp_ns(self, mean_s: float) -> int:
        return seconds(float(self.rng.exponential(mean_s)))

    def _arrive(self) -> None:
        if not self._running:
            return
        # Draw order is fixed (holding, then next inter-arrival) so the
        # sample path is reproducible whatever the event engine interleaves.
        self.stats.sessions_started += 1
        self.stats.sessions_active += 1
        session_end_ns = self.sim.now + self._exp_ns(self.mean_holding_s)
        self._emit(session_end_ns)
        self.sim.schedule(self._exp_ns(1.0 / self.arrival_rate_hz), self._arrive)

    def _emit(self, session_end_ns: int) -> None:
        if not self._running:
            return
        if self.sim.now >= session_end_ns:
            self.stats.sessions_active -= 1
            return
        self.sender.send(self.packet_bytes)
        self.stats.packets_sent += 1
        self.sim.schedule(self.packet_interval_ns, self._emit, session_end_ns)
