"""VoIP traffic: 96 kb/s exponential on-off streams (Section IV-E).

"To simulate VoIP traffic, we model a 96 kb/s on-off traffic stream with
on and off periods exponentially distributed with mean 1.5 seconds."  The
stream is packetised at a 20 ms frame interval (240-byte payloads at
96 kb/s) and carried over UDP; the receiver records per-packet one-way
delay so the flow can be scored with the E-model
(:mod:`repro.metrics.mos`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.mos import VoipQuality, evaluate_voip
from repro.sim.engine import Simulator
from repro.sim.units import ms, ns_to_seconds, seconds
from repro.transport.udp import UdpReceiver, UdpSender


@dataclass
class VoipFlowStats:
    """Sender-side counters for one VoIP stream."""

    packets_sent: int = 0
    on_periods: int = 0


class VoipFlow:
    """One exponential on-off VoIP stream over UDP."""

    def __init__(
        self,
        sim: Simulator,
        sender: UdpSender,
        receiver: UdpReceiver,
        rng: np.random.Generator,
        bitrate_bps: float = 96_000.0,
        packet_interval_ms: float = 20.0,
        mean_on_s: float = 1.5,
        mean_off_s: float = 1.5,
    ) -> None:
        self.sim = sim
        self.sender = sender
        self.receiver = receiver
        self.rng = rng
        self.packet_interval_ns = ms(packet_interval_ms)
        self.packet_bytes = max(1, int(round(bitrate_bps * packet_interval_ms / 1000.0 / 8.0)))
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self.stats = VoipFlowStats()
        self._running = False
        self._on_until_ns = 0

    def start(self, initial_delay_ns: int = 0) -> None:
        """Start the on-off cycle."""
        if self._running:
            return
        self._running = True
        self.sim.schedule(initial_delay_ns, self._begin_on_period)

    def stop(self) -> None:
        self._running = False

    def reset_stats(self) -> None:
        """Zero sender-side counters at the warmup/measurement boundary.

        The receiver's delay samples are reset separately (by the experiment
        harness) so :meth:`quality` scores only the measurement window.
        """
        self.stats = VoipFlowStats()

    # ------------------------------------------------------------------
    # Quality
    # ------------------------------------------------------------------
    def quality(self) -> VoipQuality:
        """Score the flow so far with the paper's E-model parameters."""
        delays_ms = [delay / 1e6 for delay in self.receiver.stats.delays_ns]
        return evaluate_voip(delays_ms, packets_sent=self.stats.packets_sent)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _begin_on_period(self) -> None:
        if not self._running:
            return
        self.stats.on_periods += 1
        duration = seconds(self.rng.exponential(self.mean_on_s))
        self._on_until_ns = self.sim.now + duration
        self._emit_packet()
        self.sim.schedule(duration, self._begin_off_period)

    def _begin_off_period(self) -> None:
        if not self._running:
            return
        off = seconds(self.rng.exponential(self.mean_off_s))
        self.sim.schedule(off, self._begin_on_period)

    def _emit_packet(self) -> None:
        if not self._running or self.sim.now > self._on_until_ns:
            return
        self.sender.send(self.packet_bytes)
        self.stats.packets_sent += 1
        self.sim.schedule(self.packet_interval_ns, self._emit_packet)
