"""Long-lived (FTP-like) TCP transfers.

Section IV-A: "long-lived TCP transfers, which persistently send traffic
throughout the simulation" — i.e. the sender always has data available
and the throughput is limited only by congestion control and the MAC
underneath it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.transport.tcp import TcpSender


@dataclass
class FtpApplication:
    """Keeps a TCP sender permanently backlogged."""

    sender: TcpSender
    started: bool = False

    def start(self) -> None:
        """Begin the transfer (idempotent)."""
        if self.started:
            return
        self.started = True
        self.sender.send_forever()
