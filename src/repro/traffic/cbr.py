"""Constant-bit-rate and saturating UDP sources.

The "hidden" background flows in Fig. 5(b) and in the Wigle / Roofnet
experiments each send millions of packets during the run — i.e. they are
effectively saturating sources whose only job is to keep the air busy.
Two source types are provided:

* :class:`CbrSource` — fixed packet size and inter-packet interval;
* :class:`SaturatingSource` — keeps the sender's MAC interface queue
  topped up so the flow is always backlogged without scheduling an event
  per (mostly dropped) packet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Simulator
from repro.sim.units import ms
from repro.transport.udp import UdpSender


@dataclass
class CbrStats:
    """Counters for a CBR / saturating source."""

    packets_sent: int = 0


class CbrSource:
    """Fixed-rate UDP datagram source."""

    def __init__(
        self,
        sim: Simulator,
        sender: UdpSender,
        packet_bytes: int = 1000,
        interval_ns: int = ms(1),
    ) -> None:
        self.sim = sim
        self.sender = sender
        self.packet_bytes = packet_bytes
        self.interval_ns = int(interval_ns)
        self.stats = CbrStats()
        self._running = False

    def start(self, initial_delay_ns: int = 0) -> None:
        if self._running:
            return
        self._running = True
        self.sim.schedule(initial_delay_ns, self._emit)

    def stop(self) -> None:
        self._running = False

    def _emit(self) -> None:
        if not self._running:
            return
        self.sender.send(self.packet_bytes)
        self.stats.packets_sent += 1
        self.sim.schedule(self.interval_ns, self._emit)


class SaturatingSource:
    """Keeps the local MAC queue full so the flow is always backlogged.

    The source polls its node's interface queue every ``poll_interval_ns``
    and refills it to capacity; this emulates an application writing as
    fast as the network accepts without generating one simulator event per
    dropped packet.
    """

    def __init__(
        self,
        sim: Simulator,
        sender: UdpSender,
        mac,
        packet_bytes: int = 1000,
        poll_interval_ns: int = ms(2),
        headroom: int = 2,
    ) -> None:
        self.sim = sim
        self.sender = sender
        self.mac = mac
        self.packet_bytes = packet_bytes
        self.poll_interval_ns = int(poll_interval_ns)
        self.headroom = headroom
        self.stats = CbrStats()
        self._running = False

    def start(self, initial_delay_ns: int = 0) -> None:
        if self._running:
            return
        self._running = True
        self.sim.schedule(initial_delay_ns, self._refill)

    def stop(self) -> None:
        self._running = False

    def _refill(self) -> None:
        if not self._running:
            return
        capacity = self.mac.queue.capacity
        space = capacity - len(self.mac.queue) - self.headroom
        for _ in range(max(0, space)):
            self.sender.send(self.packet_bytes)
            self.stats.packets_sent += 1
        self.sim.schedule(self.poll_interval_ns, self._refill)
