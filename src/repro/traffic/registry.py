"""The traffic kind registry: how a flow spec becomes live senders/receivers.

Each entry is an installer ``install(network, config, flow, **params) ->
FlowDriver`` that wires one flow's application, transport sender and
receiver into the network and returns a :class:`FlowDriver` handle the
scenario runner uses uniformly: ``reset_stats()`` at the warmup boundary,
``summarize(duration_ns)`` for the per-flow :class:`FlowResult`, and
``quality()`` for kinds (VoIP) that also score perceived quality.

Built-in kinds match :class:`~repro.topology.spec.FlowSpec.kind`:
``tcp`` (long-lived FTP over TCP Reno; alias ``ftp``), ``web`` (ON/OFF
short transfers), ``udp-saturating`` (alias ``cbr``) and ``voip``.
``params`` come from the scenario's :class:`~repro.spec.TrafficSpec`, so
e.g. ``--set traffic=voip`` re-flavours every active flow without a new
experiment module.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.flows import FlowResult, summarize_tcp_flow, summarize_udp_flow
from repro.registry import Registry

#: The registry of traffic-kind installers.
TRAFFIC_KINDS = Registry("traffic kind")

#: Spec name meaning "drive each flow according to its FlowSpec.kind".
PER_FLOW_KINDS = "flows"


def register_traffic(name: str):
    """Decorator registering ``install(network, config, flow, **params)``."""
    return TRAFFIC_KINDS.register(name)


class FlowDriver:
    """Handle to one installed flow: stats reset and result summarising."""

    def __init__(self, flow) -> None:
        self.flow = flow

    def reset_stats(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def summarize(self, duration_ns: int) -> Optional[FlowResult]:
        """The flow's :class:`FlowResult` for the measurement window."""
        raise NotImplementedError

    def quality(self):
        """Perceived-quality summary (VoIP MoS), or None for other kinds."""
        return None


class _TcpDriver(FlowDriver):
    def __init__(self, flow, sender, sink, app=None) -> None:
        super().__init__(flow)
        self.sender = sender
        self.sink = sink
        self.app = app

    def reset_stats(self) -> None:
        self.sink.reset_stats()
        reset = getattr(self.sender, "reset_stats", None)
        if reset is not None:
            reset()

    def summarize(self, duration_ns: int) -> FlowResult:
        flow = self.flow
        return summarize_tcp_flow(
            flow.flow_id, flow.src, flow.dst, self.sink, duration_ns, sender=self.sender
        )


class _UdpDriver(FlowDriver):
    def __init__(self, flow, sender, receiver, source=None) -> None:
        super().__init__(flow)
        self.sender = sender
        self.receiver = receiver
        self.source = source

    def reset_stats(self) -> None:
        self.receiver.reset_stats()
        self.sender.reset_stats()

    def summarize(self, duration_ns: int) -> FlowResult:
        flow = self.flow
        return summarize_udp_flow(
            flow.flow_id, flow.src, flow.dst, self.receiver, self.sender.stats.sent, duration_ns
        )


class _VoipDriver(_UdpDriver):
    def __init__(self, flow, sender, receiver, voip) -> None:
        super().__init__(flow, sender, receiver)
        self.voip = voip

    def reset_stats(self) -> None:
        super().reset_stats()
        self.voip.reset_stats()

    def quality(self):
        return self.voip.quality()


def _controller_for(config, flow, override: Optional[str] = None):
    """Resolve the congestion controller for one TCP-backed flow.

    Precedence: an explicit traffic-kind param (``--set
    traffic.transport=cubic``) beats the flow's own
    :class:`~repro.topology.spec.FlowSpec.transport`, which beats the
    scenario-level :class:`~repro.spec.TransportSpec`.  Returns None when
    nothing is configured, so :class:`~repro.transport.tcp.TcpSender`
    constructs its default Reno without touching the registry.
    """
    from repro.transport.registry import build_controller

    name = override
    params: dict = {}
    if name is None:
        name = getattr(flow, "transport", None)
    if name is None:
        spec = getattr(config, "transport", None)
        if spec is None:
            return None
        name, params = spec.name, spec.params
    return build_controller(str(name), **params)


@register_traffic("tcp")
def _install_tcp(
    network, config, flow, *, tcp_window: int = None, transport: str = None
) -> FlowDriver:
    """A long-lived FTP transfer over TCP (the paper's bulk flows; Reno default)."""
    from repro.traffic.ftp import FtpApplication
    from repro.transport.tcp import TcpSender, TcpSink

    window = config.tcp_window if tcp_window is None else int(tcp_window)
    src_host = network.node(flow.src).transport
    dst_host = network.node(flow.dst).transport
    sender = TcpSender(
        network.sim,
        src_host,
        flow.flow_id,
        flow.dst,
        awnd_segments=window,
        controller=_controller_for(config, flow, transport),
    )
    sink = TcpSink(network.sim, dst_host, flow.flow_id, peer=flow.src)
    app = FtpApplication(sender)
    app.start()
    return _TcpDriver(flow, sender, sink, app)


@register_traffic("web")
def _install_web(
    network, config, flow, *, tcp_window: int = None, transport: str = None
) -> FlowDriver:
    """ON/OFF web transfers: Pareto sizes separated by exponential think times."""
    from repro.traffic.web import WebFlow
    from repro.transport.tcp import TcpSender, TcpSink

    window = config.tcp_window if tcp_window is None else int(tcp_window)
    src_host = network.node(flow.src).transport
    dst_host = network.node(flow.dst).transport
    sender = TcpSender(
        network.sim,
        src_host,
        flow.flow_id,
        flow.dst,
        awnd_segments=window,
        controller=_controller_for(config, flow, transport),
    )
    sink = TcpSink(network.sim, dst_host, flow.flow_id, peer=flow.src)
    web = WebFlow(network.sim, sender, network.rng.stream_for("web", flow.flow_id))
    web.start()
    return _TcpDriver(flow, sender, sink, web)


@register_traffic("udp-saturating")
def _install_udp_saturating(network, config, flow) -> FlowDriver:
    """A UDP source that keeps the sender's MAC queue saturated."""
    from repro.traffic.cbr import SaturatingSource
    from repro.transport.udp import UdpReceiver, UdpSender

    src_host = network.node(flow.src).transport
    dst_host = network.node(flow.dst).transport
    sender = UdpSender(network.sim, src_host, flow.flow_id, flow.dst)
    receiver = UdpReceiver(network.sim, dst_host, flow.flow_id)
    source = SaturatingSource(network.sim, sender, network.node(flow.src).mac)
    source.start()
    return _UdpDriver(flow, sender, receiver, source)


@register_traffic("voip")
def _install_voip(network, config, flow) -> FlowDriver:
    """A 96 kb/s on-off VoIP stream scored with the E-model (Table III)."""
    from repro.traffic.voip import VoipFlow
    from repro.transport.udp import UdpReceiver, UdpSender

    src_host = network.node(flow.src).transport
    dst_host = network.node(flow.dst).transport
    sender = UdpSender(network.sim, src_host, flow.flow_id, flow.dst)
    receiver = UdpReceiver(network.sim, dst_host, flow.flow_id)
    voip = VoipFlow(
        network.sim,
        sender,
        receiver,
        network.rng.stream_for("voip", flow.flow_id),
    )
    voip.start()
    return _VoipDriver(flow, sender, receiver, voip)


class _PoissonDriver(_UdpDriver):
    def reset_stats(self) -> None:
        super().reset_stats()
        self.source.reset_stats()


@register_traffic("poisson")
def _install_poisson(
    network,
    config,
    flow,
    *,
    arrival_rate_hz: float = 4.0,
    mean_holding_s: float = 0.5,
    bitrate_bps: float = 400_000.0,
    packet_interval_ms: float = 10.0,
) -> FlowDriver:
    """Poisson session arrivals with exponential holding times over UDP (M/M/∞)."""
    from repro.traffic.poisson import PoissonFlow
    from repro.transport.udp import UdpReceiver, UdpSender

    src_host = network.node(flow.src).transport
    dst_host = network.node(flow.dst).transport
    sender = UdpSender(network.sim, src_host, flow.flow_id, flow.dst)
    receiver = UdpReceiver(network.sim, dst_host, flow.flow_id)
    source = PoissonFlow(
        network.sim,
        sender,
        network.rng.stream_for("poisson", flow.flow_id),
        arrival_rate_hz=float(arrival_rate_hz),
        mean_holding_s=float(mean_holding_s),
        bitrate_bps=float(bitrate_bps),
        packet_interval_ms=float(packet_interval_ms),
    )
    source.start()
    return _PoissonDriver(flow, sender, receiver, source)


TRAFFIC_KINDS.alias("ftp", "tcp")
TRAFFIC_KINDS.alias("cbr", "udp-saturating")
