"""Short-lived TCP transfers mimicking web traffic (Section IV-D).

Each web flow alternates ON and OFF periods: during ON the user downloads
an object whose size follows a Pareto distribution with mean 80 KB and
shape parameter 1.5 (heavy-tailed, so the aggregate of many such sources
is long-range dependent, as the paper requires); the OFF ("reading") time
is exponential with a one-second mean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.units import seconds
from repro.transport.tcp import TcpSender


def pareto_transfer_bytes(rng: np.random.Generator, mean_bytes: float, shape: float) -> int:
    """Draw a transfer size from a classical Pareto distribution with the given mean.

    For shape ``a > 1`` the classical Pareto with scale ``x_m`` has mean
    ``a x_m / (a - 1)``; we invert that to hit the requested mean.  NumPy's
    ``pareto`` draws from the Lomax distribution, so we shift by one and
    scale.
    """
    if shape <= 1.0:
        raise ValueError("Pareto shape must exceed 1 for the mean to exist")
    scale = mean_bytes * (shape - 1.0) / shape
    return max(1, int(round(scale * (1.0 + rng.pareto(shape)))))


@dataclass
class WebFlowStats:
    """Counters for one ON/OFF web flow."""

    transfers_started: int = 0
    transfers_completed: int = 0
    bytes_requested: int = 0


class WebFlow:
    """One ON/OFF web user riding on a persistent TCP connection."""

    def __init__(
        self,
        sim: Simulator,
        sender: TcpSender,
        rng: np.random.Generator,
        mean_transfer_bytes: float = 80_000.0,
        pareto_shape: float = 1.5,
        mean_off_time_s: float = 1.0,
    ) -> None:
        self.sim = sim
        self.sender = sender
        self.rng = rng
        self.mean_transfer_bytes = mean_transfer_bytes
        self.pareto_shape = pareto_shape
        self.mean_off_time_s = mean_off_time_s
        self.stats = WebFlowStats()
        self._running = False

    def start(self, initial_delay_ns: int = 0) -> None:
        """Start the ON/OFF cycle (optionally staggered by ``initial_delay_ns``)."""
        if self._running:
            return
        self._running = True
        self.sim.schedule(initial_delay_ns, self._begin_transfer)

    def stop(self) -> None:
        """Stop scheduling further transfers (the current one finishes naturally)."""
        self._running = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _begin_transfer(self) -> None:
        if not self._running:
            return
        size = pareto_transfer_bytes(self.rng, self.mean_transfer_bytes, self.pareto_shape)
        self.stats.transfers_started += 1
        self.stats.bytes_requested += size
        self.sender.on_transfer_complete(self._transfer_done)
        self.sender.send_bytes(size)

    def _transfer_done(self) -> None:
        self.stats.transfers_completed += 1
        if not self._running:
            return
        off_time = self.rng.exponential(self.mean_off_time_s)
        self.sim.schedule(seconds(off_time), self._begin_transfer)
