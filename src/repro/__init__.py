"""repro — a from-scratch reproduction of RIPPLE (ICDCS 2010).

"Opportunistic Routing for Interactive Traffic in Wireless Networks",
Tianji Li, Douglas Leith, Lili Qiu.

The package contains a complete discrete-event wireless network simulator
(802.11 DCF PHY/MAC, shadowing + i.i.d. BER channel, TCP Reno, traffic
generators), the RIPPLE protocol itself, the baselines the paper compares
against (predetermined routing over DCF, shortest-path routing, preExOR,
MCExOR, AFR), the paper's topologies, and an experiment harness that
regenerates every table and figure of the evaluation section.

Quick start::

    from repro import WirelessNetwork, StaticRouting, BitErrorModel
    from repro.traffic import FtpApplication
    from repro.transport import TcpSender, TcpSink

    net = WirelessNetwork(error_model=BitErrorModel(1e-6), seed=1)
    ...

See ``examples/quickstart.py`` for a complete runnable scenario and
``repro.experiments`` for the per-figure reproductions.
"""

from repro.mac import AfrMac, DcfMac, MacTiming, RouteDecision
from repro.core import RippleMac
from repro.mobility import MobilityManager, MobilitySpec
from repro.packet import Packet
from repro.phy import (
    PROPAGATION_MODELS,
    BitErrorModel,
    PhyParams,
    RayleighFading,
    RicianFading,
    ShadowingPropagation,
)
from repro.registry import Registry, RegistryError
from repro.routing import (
    AdaptiveEtxRouting,
    McExorMac,
    PreExorMac,
    RoutingProtocol,
    ShortestPathRouting,
    StaticRouting,
)
from repro.serialization import SpecError
from repro.sim import RandomStreams, Simulator, seconds, us
from repro.spec import MacSpec, RoutingSpec, ScenarioSpec, TopologyRef, TrafficSpec
from repro.topology import SCHEMES, Node, WirelessNetwork

__version__ = "1.2.0"

__all__ = [
    "MacSpec",
    "Registry",
    "RegistryError",
    "RoutingSpec",
    "ScenarioSpec",
    "SpecError",
    "TopologyRef",
    "TrafficSpec",
    "AfrMac",
    "DcfMac",
    "MacTiming",
    "RouteDecision",
    "RippleMac",
    "MobilityManager",
    "MobilitySpec",
    "Packet",
    "BitErrorModel",
    "PhyParams",
    "PROPAGATION_MODELS",
    "ShadowingPropagation",
    "RayleighFading",
    "RicianFading",
    "AdaptiveEtxRouting",
    "McExorMac",
    "PreExorMac",
    "RoutingProtocol",
    "ShortestPathRouting",
    "StaticRouting",
    "RandomStreams",
    "Simulator",
    "seconds",
    "us",
    "SCHEMES",
    "Node",
    "WirelessNetwork",
    "__version__",
]
