"""IEEE 802.11 MAC substrate: timing, frames, queues, DCF and AFR.

The opportunistic forwarding MACs (preExOR, MCExOR) live in
:mod:`repro.routing`; the RIPPLE MAC (the paper's contribution) lives in
:mod:`repro.core`.  They all build on the pieces exported here.
"""

from repro.mac.afr import AFR_MAX_AGGREGATION, AfrMac
from repro.mac.base import ChannelAccess, MacLayer, RouteDecision
from repro.mac.dcf import DcfMac
from repro.mac.frames import FrameKind, MacFrame, SubPacket, build_ack_frame, build_data_frame
from repro.mac.queues import DropTailQueue, ReorderBuffer
from repro.mac.registry import MAC_SCHEMES, SchemeInfo, register_mac_scheme
from repro.mac.stats import MacStats
from repro.mac.timing import DEFAULT_TIMING, MacTiming

__all__ = [
    "MAC_SCHEMES",
    "SchemeInfo",
    "register_mac_scheme",
    "AFR_MAX_AGGREGATION",
    "AfrMac",
    "ChannelAccess",
    "MacLayer",
    "RouteDecision",
    "DcfMac",
    "FrameKind",
    "MacFrame",
    "SubPacket",
    "build_ack_frame",
    "build_data_frame",
    "DropTailQueue",
    "ReorderBuffer",
    "MacStats",
    "MacTiming",
    "DEFAULT_TIMING",
]
