"""The MAC scheme registry: every forwarding scheme a scenario can install.

This is the registry behind the paper's figure legend: ``"dcf"`` (the D
bars), ``"afr"`` (A), ``"ripple1"`` (R1, mTXOP without aggregation),
``"ripple"`` (R16), plus ``"preexor"`` and ``"mcexor"`` for the
Section II comparison.  Each entry is a :class:`SchemeInfo` carrying the
factory that builds the scheme's MAC on one node, the display label and
whether the scheme consumes opportunistic forwarder lists.

A new scheme is one decorated factory::

    @register_mac_scheme("myscheme", label="mine", opportunistic=True)
    def _make_myscheme(network, node, **kwargs):
        return MyMac(network.sim, node.node_id, node.radio, ...)

after which ``MacSpec(name="myscheme")`` — and therefore
``--set mac=myscheme`` on the CLI — resolves with no other change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.registry import Registry

#: The registry of installable MAC/forwarding schemes.
MAC_SCHEMES = Registry("MAC scheme")


@dataclass(frozen=True)
class SchemeInfo:
    """Registry entry describing one forwarding scheme."""

    name: str
    label: str
    factory: Callable
    opportunistic: bool
    #: Keyword arguments the factory understands (beyond ``max_aggregation``,
    #: which every scheme accepts — and may deliberately ignore — so label
    #: sweeps with a config-level aggregation override stay valid).
    params: tuple = ()

    def validate_kwargs(self, kwargs) -> None:
        """Reject MAC kwargs the scheme does not understand.

        Factories read their kwargs with ``kwargs.get``, so without this
        check a typo'd spec parameter (``max_agregation=8``) would silently
        fall back to the default and corrupt a sweep.
        """
        accepted = set(self.params) | {"max_aggregation"}
        unknown = sorted(set(kwargs) - accepted)
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {unknown} for MAC scheme {self.name!r}; "
                f"accepted: {sorted(accepted)}"
            )


def register_mac_scheme(name: str, label: str, opportunistic: bool, params: tuple = ()):
    """Class decorator registering a node-level MAC factory as a scheme.

    The factory is called as ``factory(network, node, **mac_kwargs)`` for
    every node when the stack is installed; ``params`` names the keyword
    arguments it understands (used to reject typos at install time).
    """

    def decorate(factory: Callable) -> Callable:
        MAC_SCHEMES.add(name, SchemeInfo(name, label, factory, opportunistic, tuple(params)))
        return factory

    return decorate


@register_mac_scheme("dcf", label="D (802.11 DCF)", opportunistic=False)
def _make_dcf(network, node, **kwargs):
    """Plain IEEE 802.11 DCF over predetermined next hops (the paper's D bars)."""
    from repro.mac.dcf import DcfMac

    return DcfMac(
        network.sim,
        node.node_id,
        node.radio,
        network.phy,
        network.timing,
        network.rng,
        max_aggregation=kwargs.get("max_aggregation", 1),
    )


@register_mac_scheme("afr", label="A (AFR aggregation)", opportunistic=False)
def _make_afr(network, node, **kwargs):
    """DCF with aggregated frames and partial block-ACK retransmission (AFR, the A bars)."""
    from repro.mac.afr import AfrMac

    return AfrMac(
        network.sim,
        node.node_id,
        node.radio,
        network.phy,
        network.timing,
        network.rng,
        max_aggregation=kwargs.get("max_aggregation", 16),
    )


@register_mac_scheme(
    "ripple", label="R16 (RIPPLE)", opportunistic=True, params=("aggregate_local_traffic",)
)
def _make_ripple(network, node, **kwargs):
    """RIPPLE: opportunistic mTXOP relaying with two-way aggregation (the R16 bars)."""
    from repro.core.ripple import RippleMac

    return RippleMac(
        network.sim,
        node.node_id,
        node.radio,
        network.phy,
        network.timing,
        network.rng,
        max_aggregation=kwargs.get("max_aggregation", 16),
        aggregate_local_traffic=kwargs.get("aggregate_local_traffic", True),
    )


@register_mac_scheme(
    "ripple1",
    label="R1 (RIPPLE, no aggregation)",
    opportunistic=True,
    params=("aggregate_local_traffic",),
)
def _make_ripple1(network, node, **kwargs):
    """RIPPLE with aggregation disabled — one packet per mTXOP frame (the R1 bars)."""
    kwargs = dict(kwargs)
    kwargs["max_aggregation"] = 1
    return _make_ripple(network, node, **kwargs)


@register_mac_scheme("preexor", label="preExOR", opportunistic=True)
def _make_preexor(network, node, **kwargs):
    """preExOR opportunistic forwarding (the Section II comparison baseline)."""
    from repro.routing.preexor import PreExorMac

    return PreExorMac(
        network.sim,
        node.node_id,
        node.radio,
        network.phy,
        network.timing,
        network.rng,
    )


@register_mac_scheme("mcexor", label="MCExOR", opportunistic=True)
def _make_mcexor(network, node, **kwargs):
    """MCExOR opportunistic forwarding (the Section II comparison baseline)."""
    from repro.routing.mcexor import McExorMac

    return McExorMac(
        network.sim,
        node.node_id,
        node.radio,
        network.phy,
        network.timing,
        network.rng,
    )


@register_mac_scheme(
    "rate_adapt",
    label="ARF rate adaptation (wraps another scheme)",
    opportunistic=False,
    params=("inner", "rates", "up_after", "down_after", "aggregate_local_traffic"),
)
def _make_rate_adapt(network, node, **kwargs):
    """ARF rate adaptation wrapped around another registered scheme (``inner``, default dcf)."""
    from repro.mac.rate_adapt import DEFAULT_DOWN_AFTER, DEFAULT_UP_AFTER, ArfRateController

    kwargs = dict(kwargs)
    inner_name = kwargs.pop("inner", "dcf")
    rates = kwargs.pop("rates", None)
    up_after = int(kwargs.pop("up_after", DEFAULT_UP_AFTER))
    down_after = int(kwargs.pop("down_after", DEFAULT_DOWN_AFTER))
    inner = MAC_SCHEMES.lookup(inner_name)
    if inner.factory is _make_rate_adapt:
        raise ValueError("rate_adapt cannot wrap itself")
    inner.validate_kwargs(kwargs)
    mac = inner.factory(network, node, **kwargs)
    mac.rate_controller = ArfRateController(mac, rates=rates, up_after=up_after, down_after=down_after)
    # The NetworkAgent must feed the *inner* scheme what it expects
    # (forwarder lists for ripple, next hops for dcf/afr); install_stack
    # reads this attribute in preference to the wrapper's registry flag.
    mac.opportunistic_routing = inner.opportunistic
    return mac
