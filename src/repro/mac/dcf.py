"""IEEE 802.11 DCF MAC with optional single-hop aggregation.

This is the baseline MAC used (via predetermined or shortest-path routing)
by the "S" and "D" schemes in the paper's figures, and — with
``max_aggregation`` raised to 16 — the substrate of the AFR scheme
(:mod:`repro.mac.afr`).

Behaviour implemented:

* DIFS + slotted binary-exponential backoff channel access with freezing
  (via :class:`~repro.mac.base.ChannelAccess`);
* per-next-hop frames carrying 1..``max_aggregation`` sub-packets, each
  with its own CRC;
* SIFS-spaced MAC ACK carrying a sub-packet bitmap (a degenerate 1-entry
  bitmap for plain DCF);
* ACK timeout → contention-window doubling and retransmission of the
  unacknowledged sub-packets, up to the retry limit, after which the
  packet is dropped and reported;
* duplicate suppression at the receiver on (origin, MAC sequence number).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.mac.base import ChannelAccess, MacLayer, RouteDecision
from repro.mac.frames import FrameKind, MacFrame, SubPacket, build_ack_frame, build_data_frame
from repro.mac.queues import DropTailQueue
from repro.mac.timing import MacTiming
from repro.packet import Packet
from repro.phy.params import PhyParams
from repro.phy.radio import Radio
from repro.sim.engine import Event, Simulator


class DcfMac(MacLayer):
    """802.11 DCF with unicast next-hop frames and block-ACK style aggregation."""

    def __init__(
        self,
        sim: Simulator,
        address: int,
        radio: Radio,
        phy: PhyParams,
        timing: MacTiming,
        rng: np.random.Generator,
        max_aggregation: int = 1,
    ) -> None:
        super().__init__(sim, address, radio, phy, timing, rng)
        self.max_aggregation = max(1, int(max_aggregation))
        self.queue = DropTailQueue(capacity=timing.queue_capacity)
        self.access = ChannelAccess(sim, radio, timing, self.rng, self._on_access_granted)
        self.add_busy_listener(self.access.notify_busy)
        self.add_idle_listener(self.access.notify_idle)
        self._mac_seq: Dict[int, int] = {}
        self._pending: List[SubPacket] = []
        self._pending_receiver: Optional[int] = None
        self._current_frame: Optional[MacFrame] = None
        self._ack_timeout_event: Optional[Event] = None

    # ------------------------------------------------------------------
    # Upper-layer interface
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, route: RouteDecision) -> bool:
        if route.next_hop is None:
            raise ValueError("DcfMac requires a next_hop route decision")
        accepted = self.queue.push(packet, route.next_hop)
        if accepted:
            self.stats.packets_enqueued += 1
            self._maybe_start()
        else:
            self.stats.packets_dropped_queue += 1
        return accepted

    @property
    def has_backlog(self) -> bool:
        """Whether the MAC still holds packets it has not delivered to the air."""
        return bool(self._pending) or not self.queue.is_empty

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def _maybe_start(self) -> None:
        if self._current_frame is not None or self._ack_timeout_event is not None:
            return  # an exchange is already in progress
        if not self._pending and self.queue.is_empty:
            return
        if not self._pending:
            self._fill_pending()
        if self._pending:
            self.access.request()

    def _fill_pending(self) -> None:
        """Pull the next burst of same-next-hop packets out of the interface queue."""
        if self.queue.is_empty:
            return
        _, receiver = self.queue.peek()
        space = self.max_aggregation - len(self._pending)
        if self._pending and receiver != self._pending_receiver:
            return
        entries = self.queue.pop_matching(
            lambda _pkt, hop: hop == receiver, limit=space
        )
        for packet, _hop in entries:
            self._pending.append(self._make_subpacket(packet, receiver))
        self._pending_receiver = receiver

    def _make_subpacket(self, packet: Packet, receiver: int) -> SubPacket:
        seq = self._mac_seq.get(receiver, 0)
        self._mac_seq[receiver] = seq + 1
        return SubPacket(packet=packet, mac_seq=seq, bits=self.timing.subpacket_bits(packet.size_bytes))

    def _top_up_pending(self) -> None:
        """After a partial ACK, refill the frame with fresh queue packets."""
        if len(self._pending) >= self.max_aggregation or self.queue.is_empty:
            return
        _, receiver = self.queue.peek()
        if receiver != self._pending_receiver:
            return
        entries = self.queue.pop_matching(
            lambda _pkt, hop: hop == receiver,
            limit=self.max_aggregation - len(self._pending),
        )
        for packet, _hop in entries:
            self._pending.append(self._make_subpacket(packet, receiver))

    def _build_frame(self) -> MacFrame:
        assert self._pending_receiver is not None
        return build_data_frame(
            self.timing,
            origin=self.address,
            final_dst=self._pending_receiver,
            transmitter=self.address,
            receiver=self._pending_receiver,
            subpackets=self._pending,
        )

    def _on_access_granted(self) -> None:
        if not self._pending:
            return
        frame = self._build_frame()
        self._current_frame = frame
        airtime = frame.airtime_ns(self.phy)
        self.stats.data_frames_sent += 1
        self.stats.subpackets_sent += len(frame.subpackets)
        if len(frame.subpackets) > 1:
            self.stats.aggregated_frames += 1
        self.radio.transmit(frame, airtime)

    def on_transmission_complete(self, frame: MacFrame) -> None:
        if frame.kind is FrameKind.DATA and frame is self._current_frame:
            timeout = self.timing.ack_timeout_ns(self.phy)
            self._ack_timeout_event = self.sim.schedule(timeout, self._on_ack_timeout)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def on_frame_received(self, frame: MacFrame, errors) -> None:
        if frame.kind is FrameKind.DATA:
            self._handle_data(frame, errors)
        elif frame.kind is FrameKind.ACK:
            self._handle_ack(frame)

    def _handle_data(self, frame: MacFrame, errors) -> None:
        if frame.receiver != self.address:
            return  # overheard traffic for someone else
        ok_subpackets = [
            subpacket
            for subpacket, ok in zip(frame.subpackets, errors.subpacket_ok)
            if ok
        ]
        self.stats.data_frames_received += 1
        if not ok_subpackets:
            return  # nothing decodable: let the transmitter time out
        acked = tuple(subpacket.mac_seq for subpacket in ok_subpackets)
        ack = build_ack_frame(
            self.timing,
            origin=self.address,
            final_dst=frame.transmitter,
            transmitter=self.address,
            receiver=frame.transmitter,
            acked_seqs=acked,
            ack_for_frame=frame.frame_id,
        )
        self.sim.schedule(self.timing.sifs_ns, self._transmit_ack, ack)
        for subpacket in ok_subpackets:
            self.deliver_up(subpacket.packet, frame.origin, subpacket.mac_seq)

    def _transmit_ack(self, ack: MacFrame) -> None:
        self.stats.ack_frames_sent += 1
        self.radio.transmit(ack, ack.airtime_ns(self.phy))

    def _handle_ack(self, frame: MacFrame) -> None:
        if frame.receiver != self.address:
            return
        if self._current_frame is None or frame.ack_for_frame != self._current_frame.frame_id:
            return
        self.stats.ack_frames_received += 1
        if self._ack_timeout_event is not None:
            self._ack_timeout_event.cancel()
            self._ack_timeout_event = None
        acked = set(frame.acked_seqs)
        self._pending = [sp for sp in self._pending if sp.mac_seq not in acked]
        self._current_frame = None
        self.access.record_success()
        if self._pending:
            # Partial block-ACK: surviving sub-packets are retried without
            # counting a full collision (the exchange itself succeeded).
            for subpacket in self._pending:
                subpacket.retries += 1
            self._drop_expired()
            self._top_up_pending()
        else:
            self._pending_receiver = None
        self._maybe_start()

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _on_ack_timeout(self) -> None:
        self._ack_timeout_event = None
        self._current_frame = None
        self.stats.ack_timeouts += 1
        self.stats.retransmissions += 1
        self.access.record_failure()
        for subpacket in self._pending:
            subpacket.retries += 1
        self._drop_expired()
        if not self._pending:
            self._pending_receiver = None
            self.access.record_success()
        self._maybe_start()

    def _drop_expired(self) -> None:
        survivors: List[SubPacket] = []
        for subpacket in self._pending:
            if subpacket.retries > self.timing.retry_limit:
                self.report_drop(subpacket.packet)
            else:
                survivors.append(subpacket)
        self._pending = survivors
