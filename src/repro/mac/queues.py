"""MAC-layer queues.

Two queue types appear in the paper:

* the **interface queue** between the network layer and the MAC (Table I:
  50 packets, drop-tail), used by every scheme, and
* RIPPLE's **receiving queue (Rq)** which re-orders partially corrupted
  aggregates before passing packets to the upper layer (Section III-B6);
  that one lives with the RIPPLE MAC in :mod:`repro.core.ripple` and uses
  :class:`ReorderBuffer` from this module.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.packet import Packet


@dataclass
class QueueStats:
    """Counters for one drop-tail interface queue."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0


class DropTailQueue:
    """Bounded FIFO of (packet, next-hop/route metadata) entries."""

    def __init__(self, capacity: int = 50) -> None:
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self.stats = QueueStats()
        self._entries: Deque[Tuple[Packet, object]] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        return not self._entries

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def push(self, packet: Packet, metadata: object = None) -> bool:
        """Append a packet; returns False (and counts a drop) when full."""
        if self.is_full:
            self.stats.dropped += 1
            return False
        self._entries.append((packet, metadata))
        self.stats.enqueued += 1
        return True

    def pop(self) -> Tuple[Packet, object]:
        """Remove and return the head entry."""
        packet, metadata = self._entries.popleft()
        self.stats.dequeued += 1
        return packet, metadata

    def peek(self) -> Tuple[Packet, object]:
        """Return the head entry without removing it."""
        return self._entries[0]

    def pop_matching(
        self, predicate: Callable[[Packet, object], bool], limit: int
    ) -> List[Tuple[Packet, object]]:
        """Remove up to ``limit`` entries satisfying ``predicate``, preserving order.

        Used to assemble aggregated frames: all sub-packets of one frame must
        share the same next hop (or forwarder list), so the builder skims the
        queue for matching entries without disturbing the rest.
        """
        taken: List[Tuple[Packet, object]] = []
        remaining: Deque[Tuple[Packet, object]] = deque()
        while self._entries and len(taken) < limit:
            packet, metadata = self._entries.popleft()
            if predicate(packet, metadata):
                taken.append((packet, metadata))
            else:
                remaining.append((packet, metadata))
        remaining.extend(self._entries)
        self._entries = remaining
        self.stats.dequeued += len(taken)
        return taken

    def __iter__(self) -> Iterable[Tuple[Packet, object]]:
        return iter(self._entries)


class ReorderBuffer:
    """In-order release of MAC sequence numbers (RIPPLE's Rq).

    The origin MAC numbers sub-packets consecutively per destination; the
    destination releases them to the upper layer strictly in order, holding
    back later packets while an earlier one is still being retransmitted.
    A ``flush_below`` watermark carried in each data frame lets the buffer
    skip sequence numbers the origin has given up on (retry limit exceeded),
    so a dropped packet cannot stall the flow forever.
    """

    def __init__(self) -> None:
        self._next_expected: Dict[int, int] = {}
        self._held: Dict[int, Dict[int, Packet]] = {}

    def accept(
        self, origin: int, mac_seq: int, packet: Optional[Packet], flush_below: int = 0
    ) -> List[Packet]:
        """Insert one received sub-packet and return whatever is now releasable.

        Pass ``packet=None`` to only advance the watermark (used when a data
        frame is heard whose sub-packets were all corrupted but whose header,
        carrying ``flush_below``, survived).
        """
        held = self._held.setdefault(origin, {})
        next_expected = self._next_expected.get(origin, 0)
        released: List[Packet] = []
        is_duplicate = packet is None or mac_seq < next_expected or mac_seq in held
        if not is_duplicate:
            held[mac_seq] = packet
        if flush_below > next_expected:
            # The origin has moved on: release what we hold below the
            # watermark (in order) and never wait for the missing ones.
            for seq in sorted(held):
                if seq < flush_below:
                    released.append(held.pop(seq))
            next_expected = flush_below
        while next_expected in held:
            released.append(held.pop(next_expected))
            next_expected += 1
        self._next_expected[origin] = next_expected
        return released

    def flush(self, origin: int, flush_below: int) -> List[Packet]:
        """Release everything below the watermark without a new packet arriving."""
        return self.accept(origin, mac_seq=-1, packet=None, flush_below=flush_below)

    def pending(self, origin: int) -> int:
        """Number of packets currently held back for ``origin``."""
        return len(self._held.get(origin, {}))

    def next_expected(self, origin: int) -> int:
        """Next in-order MAC sequence number awaited from ``origin``."""
        return self._next_expected.get(origin, 0)
