"""ARF-style rate adaptation, composable over any contention-based MAC.

Auto Rate Fallback (Kamerman & Monteban's ARF, the classic 802.11 rate
control) as a *wrapper component*: the ``rate_adapt`` registry entry
builds some inner scheme (``dcf`` by default; ``afr`` and ``ripple``
compose too) and attaches an :class:`ArfRateController` that observes the
inner MAC's per-exchange outcomes through the
:attr:`~repro.mac.base.ChannelAccess.outcome_listener` seam:

* ``up_after`` consecutive successful exchanges step the data rate one
  rung up the ladder (the first exchange at the new rate is a *probe*: a
  single failure steps straight back down, as in ARF);
* ``down_after`` consecutive failures step one rung down.

Rate changes swap the MAC's frozen :class:`~repro.phy.params.PhyParams`
for a copy with the new *data* rate (the basic/control rate stays at the
profile's value on every node, keeping the ACK-airtime/timeout contract
between differently-adapted peers intact), so every airtime and timeout
computed afterwards uses the new rate while carrier-sense/reception
thresholds — and therefore the channel's culling geometry — stay
untouched.

The controller is a pure function of the exchange-outcome sequence: it
draws no randomness, so rate-adaptive scenarios stay deterministic and
parallel == serial.  Note that this simulator's bit-error model is
rate-independent (losses depend on received power and frame *bits*, not
modulation), so what ARF trades here is airtime and collision footprint
rather than SNR margin — faithful protocol dynamics over a simplified
PHY, exactly like the paper's own BER model.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.mac.base import MacLayer

#: Ladder rungs per default ladder: base rate and three halvings below it.
DEFAULT_LADDER_RUNGS = 4

#: Classic ARF thresholds.
DEFAULT_UP_AFTER = 10
DEFAULT_DOWN_AFTER = 2


def default_rate_ladder(data_rate_bps: float, rungs: int = DEFAULT_LADDER_RUNGS) -> Tuple[float, ...]:
    """The default bitrate ladder: the PHY's data rate and halvings below it.

    For the paper's high-rate profile (216 Mb/s) this yields
    ``(27, 54, 108, 216)`` Mb/s; for the low-rate profile (6 Mb/s),
    ``(0.75, 1.5, 3, 6)`` Mb/s — always ascending, topping out at the
    scenario's own configured rate.
    """
    return tuple(data_rate_bps / (2 ** i) for i in reversed(range(rungs)))


class ArfRateController:
    """Steps one MAC's data rate up/down a bitrate ladder on exchange outcomes."""

    def __init__(
        self,
        mac: MacLayer,
        rates: Optional[Sequence[float]] = None,
        up_after: int = DEFAULT_UP_AFTER,
        down_after: int = DEFAULT_DOWN_AFTER,
    ) -> None:
        access = getattr(mac, "access", None)
        if access is None:
            raise ValueError(
                f"{type(mac).__name__} exposes no ChannelAccess outcome seam; "
                "rate adaptation composes with contention-based MACs (dcf, afr, ripple)"
            )
        if up_after < 1 or down_after < 1:
            raise ValueError("up_after and down_after must be at least 1")
        self.mac = mac
        self.base_phy = mac.phy
        ladder = tuple(float(rate) for rate in (rates or default_rate_ladder(mac.phy.data_rate_bps)))
        if len(ladder) < 1 or any(b <= a for a, b in zip(ladder, ladder[1:])) or ladder[0] <= 0:
            raise ValueError(f"rates must be a strictly ascending positive ladder, got {ladder}")
        self.rates = ladder
        self.up_after = int(up_after)
        self.down_after = int(down_after)
        # Start on the rung closest (in log space) to the configured rate.
        self._index = min(
            range(len(ladder)),
            key=lambda i: abs(math.log(ladder[i]) - math.log(mac.phy.data_rate_bps)),
        )
        self._streak_up = 0
        self._streak_down = 0
        self._probing = False
        self.steps_up = 0
        self.steps_down = 0
        self._apply()
        access.outcome_listener = self.record_outcome

    @property
    def current_rate_bps(self) -> float:
        """The data rate the MAC is currently transmitting at."""
        return self.rates[self._index]

    def record_outcome(self, success: bool) -> None:
        """Feed one exchange outcome into the ARF state machine."""
        if success:
            self._streak_down = 0
            self._probing = False
            self._streak_up += 1
            if self._streak_up >= self.up_after and self._index + 1 < len(self.rates):
                self._index += 1
                self.steps_up += 1
                self._streak_up = 0
                self._probing = True  # one failure at the probe rate falls back
                self._apply()
        else:
            self._streak_up = 0
            self._streak_down += 1
            fall_back = self._probing or self._streak_down >= self.down_after
            self._probing = False
            if fall_back and self._index > 0:
                self._index -= 1
                self.steps_down += 1
                self._streak_down = 0
                self._apply()

    def _apply(self) -> None:
        # Only the data rate adapts; control frames stay at the profile's
        # basic rate on every node.  Capping the basic rate per node would
        # desynchronise the ACK-airtime contract between differently-adapted
        # peers (a sender budgets its ACK timeout from its *own* basic rate,
        # but receivers transmit ACKs at theirs), turning in-flight ACKs
        # into spurious timeouts.
        self.mac.phy = self.base_phy.with_rates(
            data_rate_bps=self.rates[self._index],
            basic_rate_bps=self.base_phy.basic_rate_bps,
        )
