"""Per-MAC statistics counters.

These counters feed the experiment reports (throughput is measured at the
transport/application layer, but MAC counters are what explain *why* a
scheme wins: retries, drops, relay activity, aggregation level).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MacStats:
    """Counters kept by every MAC variant."""

    data_frames_sent: int = 0
    data_frames_received: int = 0
    ack_frames_sent: int = 0
    ack_frames_received: int = 0
    relayed_data_frames: int = 0
    relayed_ack_frames: int = 0
    packets_enqueued: int = 0
    packets_delivered: int = 0
    packets_dropped_retry: int = 0
    packets_dropped_queue: int = 0
    duplicate_deliveries: int = 0
    retransmissions: int = 0
    ack_timeouts: int = 0
    subpackets_sent: int = 0
    aggregated_frames: int = 0

    @property
    def mean_aggregation(self) -> float:
        """Average number of sub-packets per transmitted data frame."""
        if self.data_frames_sent == 0:
            return 0.0
        return self.subpackets_sent / self.data_frames_sent
