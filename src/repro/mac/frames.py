"""MAC frames and sub-packets.

A :class:`MacFrame` is what a MAC hands to the PHY; under aggregation it
carries several :class:`SubPacket` entries, each wrapping one upper-layer
:class:`~repro.packet.Packet` and protected by its own CRC (so the bit
error model can corrupt them independently, enabling the partial
retransmission behaviour of AFR and RIPPLE).

Opportunistic frames additionally carry a priority-ordered forwarder list
(destination first, per Section III-B2) and keep a stable ``frame_id``
across relays so that forwarders can recognise "the corresponding
transmissions from higher priority stations" and suppress their own.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.mac.timing import ACK_BODY_BYTES, FORWARDER_ENTRY_BYTES, MacTiming
from repro.packet import Packet
from repro.phy.params import PhyParams

_frame_ids = itertools.count()


class FrameKind(enum.Enum):
    """The two MAC frame types the protocols under study exchange."""

    DATA = "data"
    ACK = "ack"


@dataclass
class SubPacket:
    """One upper-layer packet carried inside a (possibly aggregated) frame."""

    packet: Packet
    mac_seq: int
    bits: int
    retries: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SubPacket(seq={self.mac_seq}, {self.packet.size_bytes}B, retries={self.retries})"


@dataclass
class MacFrame:
    """A frame on the air.

    Attributes
    ----------
    kind:
        DATA or ACK.
    origin, final_dst:
        MAC addresses (node ids) of the frame's end points.  For plain DCF
        these equal ``transmitter`` / ``receiver``; for opportunistic schemes
        they stay fixed while the frame is relayed hop by hop.
    transmitter:
        The station currently putting the frame on the air.
    receiver:
        Intended receiver of *this transmission* (``None`` for opportunistic
        frames, which are anycast to the forwarder list).
    forwarder_list:
        Priority-ordered relays, destination first (Section III-B2).
    subpackets:
        Aggregated upper-layer packets (DATA frames).
    acked_seqs:
        For ACK frames: the MAC sequence numbers being acknowledged.
    ack_for_frame:
        For ACK frames: the ``frame_id`` of the DATA frame being acknowledged.
    flush_below:
        Oldest MAC sequence number still outstanding at the origin; lets the
        receiver-side re-ordering queue (Rq) release packets below it even if
        an earlier sub-packet was dropped after exhausting retries.
    """

    kind: FrameKind
    origin: int
    final_dst: int
    transmitter: int
    receiver: Optional[int]
    header_bits: int
    subpackets: list[SubPacket] = field(default_factory=list)
    forwarder_list: Tuple[int, ...] = ()
    acked_seqs: Tuple[int, ...] = ()
    ack_for_frame: Optional[int] = None
    flush_below: int = 0
    retry: int = 0
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    # ------------------------------------------------------------------
    # Size / timing helpers
    # ------------------------------------------------------------------
    @property
    def payload_bits(self) -> int:
        return sum(subpacket.bits for subpacket in self.subpackets)

    @property
    def total_bits(self) -> int:
        return self.header_bits + self.payload_bits

    def airtime_ns(self, phy: PhyParams) -> int:
        """Airtime of this frame: data frames at the data rate, ACKs at the basic rate."""
        if self.kind is FrameKind.ACK:
            return phy.control_airtime_ns(self.total_bits)
        return phy.data_airtime_ns(self.total_bits)

    # ------------------------------------------------------------------
    # Forwarder-list helpers (Section III-B2 priority rule)
    # ------------------------------------------------------------------
    def priority_rank(self, node_id: int) -> Optional[int]:
        """Relay priority of ``node_id`` for this frame.

        Rank 0 is the destination (always the highest priority / closest to
        the MAC header); rank ``i >= 1`` is the i-th forwarder.  ``None`` if
        the node is not on the forwarder list and is not the destination.
        """
        if node_id == self.final_dst:
            return 0
        try:
            return 1 + self.forwarder_list.index(node_id)
        except ValueError:
            return None

    def relay_copy(self, transmitter: int) -> "MacFrame":
        """A copy of this frame as re-transmitted by a forwarder.

        The ``frame_id`` is preserved so every station can recognise relays of
        the same frame; only the transmitter changes.
        """
        return MacFrame(
            kind=self.kind,
            origin=self.origin,
            final_dst=self.final_dst,
            transmitter=transmitter,
            receiver=self.receiver,
            header_bits=self.header_bits,
            subpackets=list(self.subpackets),
            forwarder_list=self.forwarder_list,
            acked_seqs=self.acked_seqs,
            ack_for_frame=self.ack_for_frame,
            flush_below=self.flush_below,
            retry=self.retry,
            frame_id=self.frame_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MacFrame({self.kind.value} id={self.frame_id} {self.origin}->{self.final_dst} "
            f"tx={self.transmitter} n_sub={len(self.subpackets)})"
        )


def build_data_frame(
    timing: MacTiming,
    origin: int,
    final_dst: int,
    transmitter: int,
    receiver: Optional[int],
    subpackets: Sequence[SubPacket],
    forwarder_list: Tuple[int, ...] = (),
    flush_below: int = 0,
) -> MacFrame:
    """Convenience constructor for DATA frames with the right header size."""
    return MacFrame(
        kind=FrameKind.DATA,
        origin=origin,
        final_dst=final_dst,
        transmitter=transmitter,
        receiver=receiver,
        header_bits=timing.header_bits(len(forwarder_list)),
        subpackets=list(subpackets),
        forwarder_list=tuple(forwarder_list),
        flush_below=flush_below,
    )


def build_ack_frame(
    timing: MacTiming,
    origin: int,
    final_dst: int,
    transmitter: int,
    receiver: Optional[int],
    acked_seqs: Sequence[int],
    ack_for_frame: Optional[int],
    forwarder_list: Tuple[int, ...] = (),
) -> MacFrame:
    """Convenience constructor for MAC ACK frames.

    ``origin`` is the station generating the ACK (the data frame's
    destination) and ``final_dst`` the station that must ultimately receive
    it (the data frame's origin); for RIPPLE the ACK is relayed along the
    reversed forwarder list.
    """
    ack_bits = (ACK_BODY_BYTES + FORWARDER_ENTRY_BYTES * len(forwarder_list)) * 8
    return MacFrame(
        kind=FrameKind.ACK,
        origin=origin,
        final_dst=final_dst,
        transmitter=transmitter,
        receiver=receiver,
        header_bits=ack_bits,
        subpackets=[],
        forwarder_list=tuple(forwarder_list),
        acked_seqs=tuple(acked_seqs),
        ack_for_frame=ack_for_frame,
    )
