"""AFR: single-hop packet aggregation MAC (the "A" scheme).

The paper compares RIPPLE against "an IEEE 802.11n-like single-hop packet
aggregation scheme called AFR" [19]: plain DCF channel access, but each
transmission opportunity carries up to 16 upper-layer packets, each
protected by its own CRC, with *partial retransmission* of only the
corrupted sub-packets and zero waiting time (the sender aggregates
whatever is in its queue right now; a queue backlog automatically yields
larger frames under load — Section III-B5).

All of that behaviour already exists in :class:`~repro.mac.dcf.DcfMac`
when ``max_aggregation > 1``; AFR simply fixes the default to the paper's
maximum of 16.
"""

from __future__ import annotations

import numpy as np

from repro.mac.dcf import DcfMac
from repro.mac.timing import MacTiming
from repro.phy.params import PhyParams
from repro.phy.radio import Radio
from repro.sim.engine import Simulator

#: Maximum number of packets aggregated into one frame (Section III-A2, as in [2], [19]).
AFR_MAX_AGGREGATION = 16


class AfrMac(DcfMac):
    """802.11n-like aggregation MAC: DCF plus 16-packet frames with per-packet CRCs."""

    def __init__(
        self,
        sim: Simulator,
        address: int,
        radio: Radio,
        phy: PhyParams,
        timing: MacTiming,
        rng: np.random.Generator,
        max_aggregation: int = AFR_MAX_AGGREGATION,
    ) -> None:
        super().__init__(
            sim,
            address,
            radio,
            phy,
            timing,
            rng,
            max_aggregation=max_aggregation,
        )
