"""MAC-layer base classes shared by every scheme in the paper.

Three pieces live here:

* :class:`RouteDecision` — what the network layer tells the MAC about a
  packet: either a concrete next hop (predetermined / shortest-path
  routing) or a priority-ordered forwarder list (opportunistic schemes).
* :class:`ChannelAccess` — the DCF channel-access procedure (DIFS wait +
  slotted binary-exponential backoff with freezing), reused by every
  scheme: plain DCF and AFR use it for every frame, RIPPLE / preExOR /
  MCExOR use it for source transmissions while relays ride on SIFS-based
  timing instead.
* :class:`MacLayer` — the abstract base holding the radio wiring,
  busy/idle listener dispatch, upper-layer delivery and statistics.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.mac.stats import MacStats
from repro.mac.timing import MacTiming
from repro.packet import Packet
from repro.phy.params import PhyParams
from repro.phy.radio import Radio
from repro.sim.engine import Event, Simulator
from repro.sim.rng import RandomStreams, UniformStream


@dataclass(frozen=True)
class RouteDecision:
    """Routing output attached to a packet when it is handed to the MAC.

    ``next_hop`` is used by predetermined/shortest-path forwarding;
    ``forwarder_list`` (priority-ordered, closest-to-destination first,
    *excluding* the destination itself) is used by the opportunistic
    schemes.  ``final_dst`` is the packet's destination node.
    """

    final_dst: int
    next_hop: Optional[int] = None
    forwarder_list: Tuple[int, ...] = ()


class ChannelAccess:
    """IEEE 802.11 DCF channel access: DIFS + slotted exponential backoff.

    The owner MAC forwards the radio's busy/idle transitions to
    :meth:`notify_busy` / :meth:`notify_idle`; when the medium has been won
    the ``on_granted`` callback fires.  The backoff counter is frozen (not
    redrawn) across busy periods, and the contention window doubles on
    :meth:`record_failure` and resets on :meth:`record_success`, as in the
    standard.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        timing: MacTiming,
        rng: np.random.Generator,
        on_granted: Callable[[], None],
    ) -> None:
        self._sim = sim
        self._radio = radio
        self._timing = timing
        self._rng = rng
        # Backoff draws come from the station's keyed stream, buffered so
        # each draw is a float multiply instead of a numpy scalar call
        # (``floor(u * cw)`` is uniform over [0, cw) for u ~ U[0, 1)).
        self._uniforms = UniformStream(rng)
        self._on_granted = on_granted
        self.cw = timing.cw_min
        self._active = False
        self._remaining_slots: Optional[int] = None
        self._difs_event: Optional[Event] = None
        self._slot_event: Optional[Event] = None
        #: Optional per-exchange outcome hook ``listener(success: bool)``,
        #: fired on every :meth:`record_success` / :meth:`record_failure`.
        #: This is the seam rate-adaptation components observe link quality
        #: through without wrapping the MAC's transmit path.
        self.outcome_listener: Optional[Callable[[bool], None]] = None

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    @property
    def in_progress(self) -> bool:
        return self._active

    def request(self) -> None:
        """Start (or continue) contending for the medium."""
        if self._active:
            return
        self._active = True
        self._try_resume()

    def cancel(self) -> None:
        """Abort the current contention attempt."""
        self._active = False
        self._remaining_slots = None
        self._cancel_timers()

    def record_success(self) -> None:
        """Reset the contention window after a successful exchange."""
        self.cw = self._timing.cw_min
        if self.outcome_listener is not None:
            self.outcome_listener(True)

    def record_failure(self) -> None:
        """Double the contention window after a failed exchange."""
        self.cw = min(self.cw * 2, self._timing.cw_max)
        if self.outcome_listener is not None:
            self.outcome_listener(False)

    # ------------------------------------------------------------------
    # Radio state transitions (forwarded by the owning MAC)
    # ------------------------------------------------------------------
    def notify_busy(self) -> None:
        self._cancel_timers()

    def notify_idle(self) -> None:
        if self._active:
            self._try_resume()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cancel_timers(self) -> None:
        if self._difs_event is not None:
            self._difs_event.cancel()
            self._difs_event = None
        if self._slot_event is not None:
            self._slot_event.cancel()
            self._slot_event = None

    def _try_resume(self) -> None:
        if self._radio.busy:
            return  # we will be poked again on the idle transition
        self._cancel_timers()
        self._difs_event = self._sim.schedule(self._timing.difs_ns, self._difs_elapsed)

    # The grant-or-schedule decision is folded into both timer callbacks
    # (rather than a shared _count_down helper) because the slot timer is
    # one of the most frequent events in every workload and the extra
    # method call per slot was measurable in profiles.

    def _difs_elapsed(self) -> None:
        self._difs_event = None
        remaining = self._remaining_slots
        if remaining is None:
            remaining = self._remaining_slots = int(self._uniforms.next_float() * self.cw)
        if remaining <= 0:
            self._active = False
            self._remaining_slots = None
            self._on_granted()
            return
        self._slot_event = self._sim.schedule(self._timing.slot_ns, self._slot_elapsed)

    def _slot_elapsed(self) -> None:
        self._slot_event = None
        remaining = self._remaining_slots - 1
        self._remaining_slots = remaining
        if remaining <= 0:
            self._active = False
            self._remaining_slots = None
            self._on_granted()
            return
        self._slot_event = self._sim.schedule(self._timing.slot_ns, self._slot_elapsed)


class MacLayer(abc.ABC):
    """Base class for every MAC variant in the library.

    Sub-classes implement :meth:`enqueue` (accept a packet from the network
    layer) and :meth:`on_frame_received` (react to a decoded frame); the
    base class provides radio wiring, busy/idle listener dispatch (used by
    the various SIFS/slot-based timers of the opportunistic schemes),
    upper-layer delivery with duplicate suppression, and statistics.
    """

    def __init__(
        self,
        sim: Simulator,
        address: int,
        radio: Radio,
        phy: PhyParams,
        timing: MacTiming,
        rng: "np.random.Generator | RandomStreams",
    ) -> None:
        self.sim = sim
        self.address = address
        self.radio = radio
        self.phy = phy
        self.timing = timing
        if isinstance(rng, RandomStreams):
            # Preferred wiring: hand the MAC the whole keyed registry and let
            # it derive its per-station backoff stream, so the draw sequence
            # depends only on (seed, address) — never on how many stations
            # exist or in which order their stacks were built.
            rng = rng.stream_for("mac", address)
        self.rng = rng
        self.stats = MacStats()
        self._upper_layer: Optional[Callable[[Packet], None]] = None
        self._drop_handler: Optional[Callable[[Packet], None]] = None
        self._busy_listeners: List[Callable[[], None]] = []
        self._idle_listeners: List[Callable[[], None]] = []
        self._delivered: set[tuple[int, int]] = set()
        radio.attach_mac(self)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_upper_layer(self, callback: Callable[[Packet], None]) -> None:
        """Register the network-layer receive callback."""
        self._upper_layer = callback

    def set_drop_handler(self, callback: Callable[[Packet], None]) -> None:
        """Register a callback fired when the MAC permanently drops a packet."""
        self._drop_handler = callback

    def add_busy_listener(self, callback: Callable[[], None]) -> None:
        self._busy_listeners.append(callback)

    def add_idle_listener(self, callback: Callable[[], None]) -> None:
        self._idle_listeners.append(callback)

    # ------------------------------------------------------------------
    # Upper-layer interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def enqueue(self, packet: Packet, route: RouteDecision) -> bool:
        """Accept a packet from the network layer; False if the queue dropped it."""

    def deliver_up(self, packet: Packet, origin: int, mac_seq: int) -> None:
        """Hand a received packet to the network layer, suppressing MAC duplicates."""
        key = (origin, mac_seq)
        if key in self._delivered:
            self.stats.duplicate_deliveries += 1
            return
        self._delivered.add(key)
        self.stats.packets_delivered += 1
        if self._upper_layer is not None:
            self._upper_layer(packet)

    def report_drop(self, packet: Packet) -> None:
        """Record a permanent MAC-level drop and notify the registered handler."""
        self.stats.packets_dropped_retry += 1
        if self._drop_handler is not None:
            self._drop_handler(packet)

    # ------------------------------------------------------------------
    # Radio callbacks
    # ------------------------------------------------------------------
    def on_channel_busy(self) -> None:
        for listener in self._busy_listeners:
            listener()

    def on_channel_idle(self) -> None:
        for listener in self._idle_listeners:
            listener()

    @abc.abstractmethod
    def on_frame_received(self, frame, errors) -> None:
        """React to a frame decoded by the radio (with per-sub-packet error flags)."""

    def on_transmission_complete(self, frame) -> None:
        """Hook fired when one of our own transmissions leaves the air."""
