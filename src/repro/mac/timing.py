"""IEEE 802.11 MAC timing and framing constants (Table I of the paper).

All of the overhead arithmetic in Section II of the paper — e.g. a
predetermined-route hop costs ``T_backoff + T_DATA + T_DIFS + T_SIFS +
T_ACK + 2 T_phyhdr`` — is expressed in the quantities defined here, so the
tests assert those identities directly against this module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.params import PhyParams
from repro.sim.units import us


#: MAC header (addresses, control, sequence) plus FCS, in bytes.
MAC_HEADER_BYTES = 34
#: Frame check sequence appended to the MAC header block.
MAC_FCS_BYTES = 4
#: Extra header bytes consumed per entry of an opportunistic forwarder list.
FORWARDER_ENTRY_BYTES = 6
#: Per-sub-packet framing (sub-header + CRC) under aggregation, as in AFR.
SUBPACKET_OVERHEAD_BYTES = 12
#: MAC ACK frame body (14-byte 802.11 ACK plus a 6-byte aggregation bitmap).
ACK_BODY_BYTES = 20


@dataclass(frozen=True)
class MacTiming:
    """802.11 DCF timing parameters.

    The defaults reproduce Table I: SIFS 16 us, slot 9 us, and a PHY header
    of 20 us (held by :class:`~repro.phy.params.PhyParams`).  DIFS is derived
    as ``SIFS + 2 * slot`` per the standard.
    """

    sifs_ns: int = us(16)
    slot_ns: int = us(9)
    cw_min: int = 16
    cw_max: int = 1024
    retry_limit: int = 7
    queue_capacity: int = 50
    max_aggregation: int = 16

    @property
    def difs_ns(self) -> int:
        """DCF interframe space: SIFS plus two slot times."""
        return self.sifs_ns + 2 * self.slot_ns

    # ------------------------------------------------------------------
    # Frame airtimes
    # ------------------------------------------------------------------
    def data_frame_airtime_ns(
        self, phy: PhyParams, payload_bytes_list: list[int], forwarders: int = 0
    ) -> int:
        """Airtime of a (possibly aggregated) data frame.

        ``payload_bytes_list`` holds the upper-layer packet sizes carried by
        the frame; each gets its own sub-header and CRC, and the MAC header
        grows with the number of forwarder-list entries.
        """
        header_bits = self.header_bits(forwarders)
        body_bits = sum((size + SUBPACKET_OVERHEAD_BYTES) * 8 for size in payload_bytes_list)
        return phy.data_airtime_ns(header_bits + body_bits)

    def ack_airtime_ns(self, phy: PhyParams, forwarders: int = 0) -> int:
        """Airtime of a MAC ACK (sent at the basic rate)."""
        bits = (ACK_BODY_BYTES + FORWARDER_ENTRY_BYTES * forwarders) * 8
        return phy.control_airtime_ns(bits)

    def header_bits(self, forwarders: int = 0) -> int:
        """MAC header + FCS + forwarder list size, in bits."""
        return (MAC_HEADER_BYTES + MAC_FCS_BYTES + FORWARDER_ENTRY_BYTES * forwarders) * 8

    def subpacket_bits(self, payload_bytes: int) -> int:
        """Size of one aggregated sub-packet, including its own framing and CRC."""
        return (payload_bytes + SUBPACKET_OVERHEAD_BYTES) * 8

    def ack_timeout_ns(self, phy: PhyParams, forwarders: int = 0) -> int:
        """How long a transmitter waits for a MAC ACK before declaring loss."""
        return self.sifs_ns + self.ack_airtime_ns(phy, forwarders) + 2 * self.slot_ns

    def mean_backoff_ns(self, cw: int | None = None) -> int:
        """Expected duration of a fresh backoff, used in overhead analysis."""
        window = self.cw_min if cw is None else cw
        return (window - 1) * self.slot_ns // 2


#: Timing profile matching Table I.
DEFAULT_TIMING = MacTiming()
