"""Generated component reference: render the live registries to Markdown.

The component registries are the single source of truth for what the
system can do, so the reference manual is *generated from them* instead
of hand-maintained::

    python -m repro.docs                 # (re)write docs/COMPONENTS.md
    python -m repro.docs --check         # exit 1 if the committed copy is stale
    python -m repro.docs --stdout        # print the Markdown

For every registry (topology, MAC, routing, traffic, mobility,
propagation) the generator emits each entry's canonical name, aliases,
parameter schema and one-line description.  Parameters come from the
registered factory's signature (or its ``doc_params`` attribute for
factories with non-introspectable ``(params, bounds)`` protocols);
descriptions come from the factory's docstring.  A registered factory
*without* a docstring fails the build — an undocumented component is a
bug, not a gap.

The CI ``docs-freshness`` job runs ``--check`` so ``docs/COMPONENTS.md``
can never drift from the code the way hand-written tables do.
"""

from __future__ import annotations

import argparse
import difflib
import inspect
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

#: Default location of the generated reference, relative to the repo root.
DEFAULT_OUTPUT = "docs/COMPONENTS.md"

HEADER = """\
# Component reference

<!-- GENERATED FILE - DO NOT EDIT.
     Regenerate with:  PYTHONPATH=src python -m repro.docs
     CI fails when this file is stale (python -m repro.docs --check). -->

Every pluggable layer of the simulator is a named component in a
registry (see `repro.registry`); a scenario addresses components purely
by name, either in a `ScenarioSpec` JSON document or with
`python -m repro.experiments run --set <layer>=<name>
<layer>.<param>=<value>`.  This reference is generated from the live
registries by `python -m repro.docs`.
"""


class DocsError(RuntimeError):
    """Raised when a registered component cannot be documented (no docstring)."""


@dataclass(frozen=True)
class ComponentRow:
    """One rendered registry entry."""

    name: str
    aliases: Tuple[str, ...]
    params: Tuple[str, ...]
    description: str


def _first_doc_line(registry_kind: str, name: str, obj: Callable) -> str:
    doc = inspect.getdoc(obj)
    if not doc or not doc.strip():
        raise DocsError(
            f"{registry_kind} {name!r}: registered factory has no docstring; "
            "every component needs the one-line description the generated docs consume"
        )
    return doc.strip().splitlines()[0].strip()


def _signature_params(factory: Callable, skip: int) -> Tuple[str, ...]:
    """``name=default`` strings from a factory signature, after ``skip`` args."""
    explicit = getattr(factory, "doc_params", None)
    if explicit is not None:
        return tuple(explicit)
    rendered: List[str] = []
    parameters = list(inspect.signature(factory).parameters.values())[skip:]
    for parameter in parameters:
        if parameter.kind in (parameter.VAR_POSITIONAL, parameter.VAR_KEYWORD):
            continue
        if parameter.default is parameter.empty:
            rendered.append(parameter.name)
        else:
            rendered.append(f"{parameter.name}={parameter.default!r}")
    return tuple(rendered)


def _plain_rows(registry, skip: int) -> List[ComponentRow]:
    rows = [
        ComponentRow(
            name=name,
            aliases=tuple(registry.aliases_of(name)),
            params=_signature_params(entry, skip),
            description=_first_doc_line(registry.kind, name, entry),
        )
        for name, entry in registry.items()
    ]
    for prefix, entry in registry.prefix_items():
        rows.append(
            ComponentRow(
                name=f"{prefix}:<arg>",
                aliases=(),
                # The first positional argument is the part after the colon.
                params=_signature_params(entry, 1),
                description=_first_doc_line(registry.kind, prefix, entry),
            )
        )
    return rows


def _mac_rows(registry) -> List[ComponentRow]:
    rows = []
    for name, info in registry.items():
        params = tuple(info.params) + ("max_aggregation",)
        description = _first_doc_line(registry.kind, name, info.factory)
        rows.append(
            ComponentRow(
                name=name,
                aliases=tuple(registry.aliases_of(name)),
                params=params,
                description=f"{description} [{info.label}]",
            )
        )
    return rows


@dataclass(frozen=True)
class RegistrySection:
    """One documented registry: heading, addressing hints and its rows."""

    title: str
    registry_path: str
    set_key: str
    rows: Sequence[ComponentRow]
    note: str = ""


def registry_sections() -> List[RegistrySection]:
    """Collect every component registry as a renderable section."""
    from repro.mac.registry import MAC_SCHEMES
    from repro.mobility.models import MOBILITY_MODELS
    from repro.phy.registry import PROPAGATION_MODELS
    from repro.routing.registry import ROUTING_STRATEGIES
    from repro.topology.registry import TOPOLOGIES
    from repro.traffic.registry import TRAFFIC_KINDS
    from repro.transport.registry import TRANSPORT_SCHEMES

    return [
        RegistrySection(
            title="Topologies",
            registry_path="repro.topology.registry.TOPOLOGIES",
            set_key="topology",
            rows=_plain_rows(TOPOLOGIES, skip=0),
            note=(
                "`trace:<arg>` takes a file path after the colon "
                "(`--set topology=trace:site.csv`); see `repro.topology.tracefile` "
                "for the CSV/JSON formats."
            ),
        ),
        RegistrySection(
            title="MAC schemes",
            registry_path="repro.mac.registry.MAC_SCHEMES",
            set_key="mac",
            rows=_mac_rows(MAC_SCHEMES),
            note=(
                "Bracketed suffixes are the paper's figure labels. "
                "`max_aggregation` is accepted by every scheme. "
                "`rate_adapt` wraps the scheme named by its `inner` parameter."
            ),
        ),
        RegistrySection(
            title="Routing strategies",
            registry_path="repro.routing.registry.ROUTING_STRATEGIES",
            set_key="routing",
            rows=_plain_rows(ROUTING_STRATEGIES, skip=2),
        ),
        RegistrySection(
            title="Traffic kinds",
            registry_path="repro.traffic.registry.TRAFFIC_KINDS",
            set_key="traffic",
            rows=_plain_rows(TRAFFIC_KINDS, skip=3),
            note=(
                "The default traffic spec `\"flows\"` is not a registry entry: it means "
                "\"drive each flow according to its own `FlowSpec.kind`\"; naming a "
                "kind re-flavours every active flow."
            ),
        ),
        RegistrySection(
            title="Transport schemes",
            registry_path="repro.transport.registry.TRANSPORT_SCHEMES",
            set_key="transport",
            rows=_plain_rows(TRANSPORT_SCHEMES, skip=0),
            note=(
                "Congestion control for TCP-backed flows. The default (no "
                "`transport=`) is `reno`, bit-identical to pre-registry runs. "
                "A `FlowSpec.transport` name overrides per flow; "
                "`--set traffic.transport=<name>` overrides both."
            ),
        ),
        RegistrySection(
            title="Mobility models",
            registry_path="repro.mobility.models.MOBILITY_MODELS",
            set_key="mobility",
            rows=_plain_rows(MOBILITY_MODELS, skip=2),
            note=(
                "Model parameters ride in `MobilitySpec.params` "
                "(`--set mobility=random_waypoint mobility.speed=5`); "
                "`update_interval_s`, `reestimate_interval_s` and `mobile_nodes` "
                "are spec-level fields shared by every model."
            ),
        ),
        RegistrySection(
            title="Propagation models",
            registry_path="repro.phy.registry.PROPAGATION_MODELS",
            set_key="phy.propagation",
            rows=_plain_rows(PROPAGATION_MODELS, skip=1),
            note=(
                "Selected through the PHY: `--set phy.propagation=rician "
                "'phy.propagation_params={\"k_factor\": 8}'`.  The default "
                "`shadowing` entry inherits `phy.max_deviation_sigmas` as its "
                "fade bound."
            ),
        ),
    ]


def _escape_cell(text: str) -> str:
    return text.replace("|", "\\|")


def _render_section(section: RegistrySection) -> List[str]:
    lines = [
        f"## {section.title}",
        "",
        f"Registry: `{section.registry_path}` — select with `--set {section.set_key}=<name>`.",
        "",
        "| name | aliases | parameters | description |",
        "|------|---------|------------|-------------|",
    ]
    for row in section.rows:
        aliases = ", ".join(f"`{alias}`" for alias in row.aliases) or "—"
        params = ", ".join(f"`{param}`" for param in row.params) or "—"
        lines.append(
            f"| `{row.name}` | {aliases} | {params} | {_escape_cell(row.description)} |"
        )
    if section.note:
        lines.extend(["", section.note])
    lines.append("")
    return lines


def generate_components_markdown() -> str:
    """The full COMPONENTS.md document, rendered from the live registries."""
    lines = [HEADER]
    for section in registry_sections():
        lines.extend(_render_section(section))
    return "\n".join(lines).rstrip() + "\n"


def check_freshness(path: str) -> Optional[str]:
    """None when ``path`` matches the generated document, else a unified diff."""
    expected = generate_components_markdown()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            committed = handle.read()
    except OSError:
        committed = ""
    if committed == expected:
        return None
    return "".join(
        difflib.unified_diff(
            committed.splitlines(keepends=True),
            expected.splitlines(keepends=True),
            fromfile=f"{path} (committed)",
            tofile=f"{path} (generated)",
        )
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.docs",
        description="Generate docs/COMPONENTS.md from the live component registries.",
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT, metavar="PATH", help="where to write the Markdown"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="do not write; exit 1 (with a diff) if the committed copy is stale",
    )
    parser.add_argument("--stdout", action="store_true", help="print the Markdown instead of writing")
    args = parser.parse_args(argv)
    if args.check:
        diff = check_freshness(args.output)
        if diff is None:
            print(f"{args.output} is up to date")
            return 0
        print(diff, end="")
        print(
            f"\n{args.output} is stale; regenerate with: PYTHONPATH=src python -m repro.docs"
        )
        return 1
    markdown = generate_components_markdown()
    if args.stdout:
        print(markdown, end="")
        return 0
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(markdown)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
