"""Shared helpers for the ``to_dict``/``from_dict`` serialization layer.

Every serializable object in the repository (specs, configs, results)
round-trips through plain JSON-safe dicts — the sweep cache hashes them,
worker processes exchange them, and the CLI accepts them as scenario
documents.  ``from_dict`` implementations are *strict*: a key the
accepting class does not know is an error that names the key and the
class, instead of a bare ``KeyError``/``TypeError`` deep inside a
constructor.  Strictness is what turns a stale cache entry or a typo'd
spec file (``"biterror_rate"``) into an actionable message.
"""

from __future__ import annotations

from typing import Dict, Iterable


class SpecError(ValueError):
    """Raised when a serialized spec/config dict is malformed."""


def require_known_keys(data: Dict[str, object], known: Iterable[str], owner: str) -> None:
    """Reject dict keys the accepting class does not define.

    ``owner`` is the class name shown in the error, so the message reads
    "unknown field 'foo' for PhyParams" and points straight at both the
    offending key and where it was headed.
    """
    if not isinstance(data, dict):
        raise SpecError(f"{owner} expects a dict, got {type(data).__name__}")
    known_set = set(known)
    unknown = [key for key in data if key not in known_set]
    if unknown:
        fields = ", ".join(repr(key) for key in sorted(unknown))
        raise SpecError(
            f"unknown field{'s' if len(unknown) > 1 else ''} {fields} for {owner}; "
            f"accepted: {sorted(known_set)}"
        )


def require_keys(data: Dict[str, object], required: Iterable[str], owner: str) -> None:
    """Reject dicts missing a required key, naming the key and the class."""
    missing = [key for key in required if key not in data]
    if missing:
        fields = ", ".join(repr(key) for key in missing)
        raise SpecError(
            f"missing required field{'s' if len(missing) > 1 else ''} {fields} for {owner}"
        )
