"""The paper's contribution: the RIPPLE opportunistic forwarding MAC."""

from repro.core.ripple import RippleMac, RippleStats

__all__ = ["RippleMac", "RippleStats"]
