"""RIPPLE: opportunistic routing for interactive traffic (the paper's contribution).

The scheme (Section III) combines two mechanisms:

**Multi-hop transmission opportunity (mTXOP).**  The source wins the
channel once (normal DIFS + backoff) and transmits a data frame carrying a
priority-ordered forwarder list.  From then on the whole source→destination
→source exchange rides on SIFS/slot-scale timing:

* the destination acknowledges a frame ``SIFS`` after receiving it;
* forwarder ``i`` (1 = highest priority, nearest the destination) relays a
  received **data** frame only after sensing the channel idle for
  ``i * T_slot + T_SIFS`` — so the best-placed forwarder that actually has
  the frame goes first and everyone else, hearing it (or the destination's
  ACK), stands down;
* forwarder ``i`` relays a received **MAC ACK** after the channel is idle
  for ``(i - 1) * T_slot + T_SIFS`` (one slot less: ACKs are not themselves
  acknowledged);
* forwarders never cache frames and relay a given frame at most once;
  retransmission is purely end-to-end from the source, so relaying can
  never re-order packets.

**Two-way packet aggregation.**  Up to 16 upper-layer packets (each with
its own CRC) share one frame in either direction, with zero waiting time:
whatever is in the sending queue (Sq) goes out together.  The destination
acknowledges per sub-packet, the source retransmits only what is missing,
and the receiving queue (Rq) releases packets to the upper layer strictly
in order so that partial corruption of an aggregate cannot re-order TCP
segments (Section III-B6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.mac.base import ChannelAccess, MacLayer, RouteDecision
from repro.mac.frames import FrameKind, MacFrame, SubPacket, build_ack_frame, build_data_frame
from repro.mac.queues import DropTailQueue, ReorderBuffer
from repro.mac.timing import MacTiming
from repro.packet import Packet
from repro.phy.params import PhyParams
from repro.phy.radio import Radio
from repro.sim.engine import Event, Simulator
from repro.sim.rng import RandomStreams


@dataclass
class _PendingRelay:
    """A frame this node has decided to relay once the channel stays idle long enough."""

    frame: MacFrame
    required_idle_ns: int
    event: Optional[Event] = None


class _RecentFrameIds:
    """Insertion-ordered set of frame ids with a hard capacity.

    Forwarders remember which frames they have relayed or suppressed so they
    never relay the same frame twice.  A frame exchange only spans one mTXOP
    (milliseconds), after which its id never appears on the air again, so
    remembering every id for the whole run grows memory without bound on long
    simulations.  Evicting the oldest ids once the capacity is exceeded keeps
    the memory constant while still covering every exchange that can possibly
    still be in flight (frame ids are globally monotonic).
    """

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = int(capacity)
        self._ids: Dict[int, None] = {}

    def add(self, frame_id: int) -> None:
        if frame_id in self._ids:
            return
        self._ids[frame_id] = None
        while len(self._ids) > self.capacity:
            del self._ids[next(iter(self._ids))]

    def discard(self, frame_id: int) -> None:
        self._ids.pop(frame_id, None)

    def __contains__(self, frame_id: int) -> bool:
        return frame_id in self._ids

    def __len__(self) -> int:
        return len(self._ids)


@dataclass
class RippleStats:
    """RIPPLE-specific counters, kept separately from the generic MAC counters."""

    mtxop_started: int = 0
    data_relays: int = 0
    ack_relays: int = 0
    relays_suppressed: int = 0
    end_to_end_retransmissions: int = 0
    rq_releases: int = 0
    rq_held_max: int = 0


class RippleMac(MacLayer):
    """The RIPPLE MAC/forwarding layer."""

    def __init__(
        self,
        sim: Simulator,
        address: int,
        radio: Radio,
        phy: PhyParams,
        timing: MacTiming,
        rng: "np.random.Generator | RandomStreams",
        max_aggregation: int = 16,
        aggregate_local_traffic: bool = True,
    ) -> None:
        # A RandomStreams registry is resolved by MacLayer into this
        # station's keyed "mac" substream; the only randomness RIPPLE itself
        # consumes is the DCF backoff of its source-side channel access.
        super().__init__(sim, address, radio, phy, timing, rng)
        self.max_aggregation = max(1, int(max_aggregation))
        self.aggregate_local_traffic = aggregate_local_traffic
        self.queue = DropTailQueue(capacity=timing.queue_capacity)  # the paper's Sq
        self.reorder = ReorderBuffer()  # the paper's Rq
        self.ripple_stats = RippleStats()
        self.access = ChannelAccess(sim, radio, timing, self.rng, self._on_access_granted)
        self.add_busy_listener(self._on_busy_for_relays)
        self.add_idle_listener(self._on_idle_for_relays)
        self.add_busy_listener(self.access.notify_busy)
        self.add_idle_listener(self.access.notify_idle)
        # --- source-side state -------------------------------------------------
        self._mac_seq: Dict[int, int] = {}
        self._pending: List[SubPacket] = []  # sub-packets of the frame in flight
        self._pending_dst: Optional[int] = None
        self._pending_route: Optional[RouteDecision] = None
        self._current_frame: Optional[MacFrame] = None
        self._ack_timeout_event: Optional[Event] = None
        # --- forwarder-side state ----------------------------------------------
        self._pending_relays: Dict[int, _PendingRelay] = {}
        self._relayed_frames = _RecentFrameIds()
        self._suppressed_frames = _RecentFrameIds()
        # --- destination-side state --------------------------------------------
        self._acked_seqs_per_origin: Dict[int, Set[int]] = {}

    # ======================================================================
    # Upper-layer (Sq) interface
    # ======================================================================
    def enqueue(self, packet: Packet, route: RouteDecision) -> bool:
        accepted = self.queue.push(packet, route)
        if accepted:
            self.stats.packets_enqueued += 1
            self._maybe_start()
        else:
            self.stats.packets_dropped_queue += 1
        return accepted

    @property
    def has_backlog(self) -> bool:
        return bool(self._pending) or not self.queue.is_empty

    # ======================================================================
    # Source side: aggregation, channel access, end-to-end retransmission
    # ======================================================================
    def _maybe_start(self) -> None:
        if self._current_frame is not None or self._ack_timeout_event is not None:
            return  # an mTXOP for our own traffic is already in progress
        if not self._pending:
            self._fill_pending()
        if self._pending:
            self.access.request()

    def _fill_pending(self) -> None:
        """Zero-waiting aggregation: take whatever shares the head packet's destination."""
        if self.queue.is_empty:
            return
        _, head_route = self.queue.peek()
        destination = head_route.final_dst
        space = self.max_aggregation - len(self._pending)
        entries = self.queue.pop_matching(
            lambda _pkt, route: route.final_dst == destination, limit=space
        )
        for packet, _route in entries:
            self._pending.append(self._make_subpacket(packet, destination))
        self._pending_dst = destination
        self._pending_route = head_route

    def _top_up_pending(self) -> None:
        if len(self._pending) >= self.max_aggregation or self.queue.is_empty:
            return
        destination = self._pending_dst
        entries = self.queue.pop_matching(
            lambda _pkt, route: route.final_dst == destination,
            limit=self.max_aggregation - len(self._pending),
        )
        for packet, _route in entries:
            self._pending.append(self._make_subpacket(packet, destination))

    def _make_subpacket(self, packet: Packet, destination: int) -> SubPacket:
        seq = self._mac_seq.get(destination, 0)
        self._mac_seq[destination] = seq + 1
        return SubPacket(
            packet=packet, mac_seq=seq, bits=self.timing.subpacket_bits(packet.size_bytes)
        )

    def _on_access_granted(self) -> None:
        if not self._pending or self._pending_route is None:
            return
        if self.radio.is_transmitting:
            self.access.request()
            return
        forwarders = self._pending_route.forwarder_list
        frame = build_data_frame(
            self.timing,
            origin=self.address,
            final_dst=self._pending_dst,
            transmitter=self.address,
            receiver=None,
            subpackets=self._pending,
            forwarder_list=forwarders,
            flush_below=min(sp.mac_seq for sp in self._pending),
        )
        self._current_frame = frame
        self.stats.data_frames_sent += 1
        self.stats.subpackets_sent += len(frame.subpackets)
        if len(frame.subpackets) > 1:
            self.stats.aggregated_frames += 1
        self.ripple_stats.mtxop_started += 1
        self.radio.transmit(frame, frame.airtime_ns(self.phy))

    def on_transmission_complete(self, frame: MacFrame) -> None:
        if frame.kind is FrameKind.DATA and frame is self._current_frame:
            timeout = self.mtxop_timeout_ns(frame)
            self._ack_timeout_event = self.sim.schedule(timeout, self._on_ack_timeout)

    def mtxop_timeout_ns(self, frame: MacFrame) -> int:
        """Worst-case duration of the multi-hop exchange started by ``frame``.

        Covers every forwarder relaying the data with its maximum deferral,
        the destination's SIFS-spaced ACK, and the ACK being relayed all the
        way back, plus a slack slot per hop.
        """
        n = len(frame.forwarder_list)
        data_airtime = frame.airtime_ns(self.phy)
        ack_airtime = self.timing.ack_airtime_ns(self.phy, forwarders=n)
        worst_data_defer = self.timing.sifs_ns + n * self.timing.slot_ns
        worst_ack_defer = self.timing.sifs_ns + max(0, n - 1) * self.timing.slot_ns
        total = n * (worst_data_defer + data_airtime)
        total += self.timing.sifs_ns + ack_airtime
        total += n * (worst_ack_defer + ack_airtime)
        total += (n + 2) * self.timing.slot_ns
        return total

    def _on_ack_timeout(self) -> None:
        self._ack_timeout_event = None
        self._current_frame = None
        self.stats.ack_timeouts += 1
        self.stats.retransmissions += 1
        self.ripple_stats.end_to_end_retransmissions += 1
        self.access.record_failure()
        for subpacket in self._pending:
            subpacket.retries += 1
        self._drop_expired()
        if not self._pending:
            self._pending_dst = None
            self._pending_route = None
            self.access.record_success()
        else:
            self._top_up_pending()
        self._maybe_start()

    def _handle_end_to_end_ack(self, frame: MacFrame) -> None:
        """An ACK for our in-flight frame reached us (directly or via relays)."""
        if self._current_frame is None or frame.ack_for_frame != self._current_frame.frame_id:
            return
        self.stats.ack_frames_received += 1
        if self._ack_timeout_event is not None:
            self._ack_timeout_event.cancel()
            self._ack_timeout_event = None
        acked = set(frame.acked_seqs)
        self._pending = [sp for sp in self._pending if sp.mac_seq not in acked]
        self._current_frame = None
        self.access.record_success()
        if self._pending:
            for subpacket in self._pending:
                subpacket.retries += 1
            self._drop_expired()
        if not self._pending:
            self._pending_dst = None
            self._pending_route = None
        else:
            self._top_up_pending()
        self._maybe_start()

    def _drop_expired(self) -> None:
        survivors: List[SubPacket] = []
        for subpacket in self._pending:
            if subpacket.retries > self.timing.retry_limit:
                self.report_drop(subpacket.packet)
            else:
                survivors.append(subpacket)
        self._pending = survivors

    # ======================================================================
    # Receive path: destination ACKs, Rq, forwarder relays
    # ======================================================================
    def on_frame_received(self, frame: MacFrame, errors) -> None:
        if frame.kind is FrameKind.DATA:
            if frame.final_dst == self.address:
                self._receive_as_destination(frame, errors)
            else:
                self._consider_data_relay(frame, errors)
        else:  # ACK
            if frame.final_dst == self.address:
                self._handle_end_to_end_ack(frame)
            else:
                self._consider_ack_relay(frame)
            self._note_overheard_transmission(frame)

    # ------------------------------------------------------------------
    # Destination behaviour
    # ------------------------------------------------------------------
    def _receive_as_destination(self, frame: MacFrame, errors) -> None:
        self.stats.data_frames_received += 1
        received_now = [
            subpacket
            for subpacket, ok in zip(frame.subpackets, errors.subpacket_ok)
            if ok
        ]
        already_have = self._acked_seqs_per_origin.setdefault(frame.origin, set())
        if frame.flush_below > 0:
            # The origin never retransmits sequence numbers below its flush
            # watermark, so entries under it can no longer be re-acked and
            # would otherwise accumulate for the whole run.
            already_have.difference_update(
                [seq for seq in already_have if seq < frame.flush_below]
            )
        acked: List[int] = sorted(
            {sp.mac_seq for sp in received_now}
            | {sp.mac_seq for sp in frame.subpackets if sp.mac_seq in already_have}
        )
        if not acked and not received_now:
            return  # nothing decodable and nothing previously held: stay silent
        already_have.update(sp.mac_seq for sp in received_now)
        ack = build_ack_frame(
            self.timing,
            origin=self.address,
            final_dst=frame.origin,
            transmitter=self.address,
            receiver=None,
            acked_seqs=tuple(acked),
            ack_for_frame=frame.frame_id,
            forwarder_list=frame.forwarder_list,
        )
        self.sim.schedule(self.timing.sifs_ns, self._transmit_destination_ack, ack)
        # Rq: release in order, honouring the origin's flush watermark.
        released: List[Packet] = []
        if received_now:
            for subpacket in received_now:
                released.extend(
                    self.reorder.accept(
                        frame.origin, subpacket.mac_seq, subpacket.packet, frame.flush_below
                    )
                )
        else:
            released.extend(self.reorder.flush(frame.origin, frame.flush_below))
        held = self.reorder.pending(frame.origin)
        self.ripple_stats.rq_held_max = max(self.ripple_stats.rq_held_max, held)
        for packet in released:
            self.ripple_stats.rq_releases += 1
            self.deliver_up(packet, frame.origin, self._release_key(frame.origin))
        # The destination also suppresses any relay it might have pending for
        # this frame (it has obviously reached the destination already).
        self._cancel_relay(frame.frame_id, suppressed=True)

    _release_counter = 0

    def _release_key(self, origin: int) -> int:
        """Monotonic key for deliver_up's duplicate filter.

        The Rq has already performed duplicate elimination and ordering, so
        each released packet gets a fresh key rather than its MAC sequence
        number (which may legitimately be re-delivered after a lost ACK and
        must not be double-filtered here).
        """
        self._release_counter += 1
        return self._release_counter

    def _transmit_destination_ack(self, ack: MacFrame) -> None:
        if self.radio.is_transmitting:
            return
        self.stats.ack_frames_sent += 1
        self.radio.transmit(ack, ack.airtime_ns(self.phy))

    # ------------------------------------------------------------------
    # Forwarder behaviour: data relays
    # ------------------------------------------------------------------
    def _consider_data_relay(self, frame: MacFrame, errors) -> None:
        my_rank = frame.priority_rank(self.address)
        if my_rank is None or my_rank == 0:
            return  # not on this frame's forwarder list
        if frame.frame_id in self._relayed_frames or frame.frame_id in self._suppressed_frames:
            return
        transmitter_rank = frame.priority_rank(frame.transmitter)
        upstream_rank = float("inf") if transmitter_rank is None else transmitter_rank
        if upstream_rank <= my_rank:
            # The frame was transmitted by a station at least as close to the
            # destination as we are: it has already passed us.
            self._suppressed_frames.add(frame.frame_id)
            self._cancel_relay(frame.frame_id, suppressed=True)
            return
        surviving = [
            subpacket
            for subpacket, ok in zip(frame.subpackets, errors.subpacket_ok)
            if ok
        ]
        if not surviving:
            return  # header decoded but every sub-packet corrupted: nothing to relay
        relay = frame.relay_copy(transmitter=self.address)
        relay.subpackets = surviving
        required_idle = my_rank * self.timing.slot_ns + self.timing.sifs_ns
        self._schedule_relay(relay, required_idle)

    # ------------------------------------------------------------------
    # Forwarder behaviour: ACK relays
    # ------------------------------------------------------------------
    def _consider_ack_relay(self, frame: MacFrame) -> None:
        my_rank = frame.priority_rank(self.address)
        if my_rank is None or my_rank == 0:
            return
        if frame.frame_id in self._relayed_frames or frame.frame_id in self._suppressed_frames:
            return
        transmitter_rank = frame.priority_rank(frame.transmitter)
        upstream_rank = 0 if frame.transmitter == frame.origin else transmitter_rank
        if upstream_rank is None or upstream_rank >= my_rank:
            # Transmitted by a station closer to the ACK's destination (the
            # data source) than we are: the ACK is already past us.
            self._suppressed_frames.add(frame.frame_id)
            self._cancel_relay(frame.frame_id, suppressed=True)
            return
        relay = frame.relay_copy(transmitter=self.address)
        required_idle = max(0, my_rank - 1) * self.timing.slot_ns + self.timing.sifs_ns
        self._schedule_relay(relay, required_idle)

    # ------------------------------------------------------------------
    # Relay timers ("channel idle for T" semantics)
    # ------------------------------------------------------------------
    def _schedule_relay(self, relay_frame: MacFrame, required_idle_ns: int) -> None:
        pending = _PendingRelay(frame=relay_frame, required_idle_ns=required_idle_ns)
        self._pending_relays[relay_frame.frame_id] = pending
        self._arm_relay(pending)

    def _arm_relay(self, pending: _PendingRelay) -> None:
        if self.radio.busy:
            return  # re-armed on the next idle transition
        idle_for = self.sim.now - self.radio.idle_since
        remaining = max(0, pending.required_idle_ns - idle_for)
        pending.event = self.sim.schedule(remaining, self._fire_relay, pending)

    def _on_busy_for_relays(self) -> None:
        if not self._pending_relays:  # almost always empty: every busy/idle transition lands here
            return
        for pending in self._pending_relays.values():
            if pending.event is not None:
                pending.event.cancel()
                pending.event = None

    def _on_idle_for_relays(self) -> None:
        if not self._pending_relays:
            return
        for pending in list(self._pending_relays.values()):
            self._arm_relay(pending)

    def _fire_relay(self, pending: _PendingRelay) -> None:
        pending.event = None
        frame = pending.frame
        self._pending_relays.pop(frame.frame_id, None)
        if frame.frame_id in self._suppressed_frames or frame.frame_id in self._relayed_frames:
            return
        if self.radio.busy:
            # Lost the race against another transmission that started in the
            # same instant; treat it like a busy channel and wait again.
            self._pending_relays[frame.frame_id] = pending
            return
        self._relayed_frames.add(frame.frame_id)
        if frame.kind is FrameKind.DATA:
            self.ripple_stats.data_relays += 1
            self.stats.relayed_data_frames += 1
        else:
            self.ripple_stats.ack_relays += 1
            self.stats.relayed_ack_frames += 1
        self.radio.transmit(frame, frame.airtime_ns(self.phy))

    def _cancel_relay(self, frame_id: int, suppressed: bool) -> None:
        pending = self._pending_relays.pop(frame_id, None)
        if pending is not None:
            if pending.event is not None:
                pending.event.cancel()
            if suppressed:
                self.ripple_stats.relays_suppressed += 1
        if suppressed:
            self._suppressed_frames.add(frame_id)

    # ------------------------------------------------------------------
    # Overhearing
    # ------------------------------------------------------------------
    def _note_overheard_transmission(self, frame: MacFrame) -> None:
        """Suppress a pending data relay once the destination's ACK is heard.

        Hearing any ACK that refers to a data frame we were about to relay
        means the data frame has already reached the destination; relaying it
        would only waste air time.
        """
        if frame.kind is not FrameKind.ACK or frame.ack_for_frame is None:
            return
        if frame.ack_for_frame in self._pending_relays:
            self._cancel_relay(frame.ack_for_frame, suppressed=True)
