"""The network-layer packet: the unit handed from transport to MAC.

Following the paper's terminology (Section III-A2) we use *packet* for the
unit passed from the upper layer to the MAC and *frame* for what the MAC
hands to the PHY; with aggregation one frame carries several packets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """One upper-layer packet.

    ``slots=True``: packets are allocated per transport segment and
    travel through every layer, so they stay ``__dict__``-free like the
    other hot-path records (``Event``, ``Reception``, ``Transmission``).

    Attributes
    ----------
    src, dst:
        Node ids of the end points (not of the current hop).
    size_bytes:
        Payload size as seen by the MAC (the paper uses 1000-byte TCP data
        packets and 40-byte TCP ACKs).
    flow_id:
        Identifier of the application flow the packet belongs to; used by the
        metrics collectors.
    seq:
        Flow-level sequence number (transport meaning, e.g. TCP segment index).
    kind:
        Free-form label such as ``"tcp-data"``, ``"tcp-ack"``, ``"udp"``.
    created_ns:
        Simulation time at which the application/transport created the packet;
        used for delay metrics.
    payload:
        Opaque transport-layer object (e.g. a ``TcpSegment``) carried end to
        end and handed back to the destination's transport layer.
    """

    src: int
    dst: int
    size_bytes: int
    flow_id: int = 0
    seq: int = 0
    kind: str = "data"
    created_ns: int = 0
    payload: Any = None
    uid: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def size_bits(self) -> int:
        return self.size_bytes * 8

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.kind} flow={self.flow_id} seq={self.seq} "
            f"{self.src}->{self.dst} {self.size_bytes}B)"
        )
