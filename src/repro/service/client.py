"""Tiny stdlib HTTP client for the simulation service.

Used by the test suite, the ``submit``/``status`` CLI subcommands and
the CI smoke job; also the reference for anyone talking to the service
from outside Python (see ``docs/SERVICE.md`` for the curl equivalent of
every call).  Only ``urllib.request`` — no third-party dependency.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from repro.service import clock


class ServiceError(RuntimeError):
    """An HTTP-level failure, carrying the structured error payload."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        error = payload.get("error") if isinstance(payload, dict) else None
        message = error.get("message") if isinstance(error, dict) else str(payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class JobFailed(ServiceError):
    """Raised by :meth:`ServiceClient.wait` when the job ends ``failed``."""

    def __init__(self, job: Dict[str, object]) -> None:
        RuntimeError.__init__(
            self, f"job {job.get('job_id')} failed: {job.get('error')}"
        )
        self.status = 0
        self.payload = job


class ServiceClient:
    """Blocking JSON client bound to one service base URL."""

    def __init__(self, base_url: str, *, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)

    def _request(self, method: str, path: str, body: Optional[dict] = None) -> Dict[str, object]:
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {"error": {"type": "HTTPError", "message": str(exc)}}
            raise ServiceError(exc.code, payload) from None

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: Dict[str, object],
        *,
        seeds: Optional[object] = None,
        sweep: Optional[Dict[str, List[object]]] = None,
        max_attempts: Optional[int] = None,
    ) -> Dict[str, object]:
        """``POST /jobs``: one ScenarioSpec document, optionally fanned out."""
        body: Dict[str, object] = {"spec": spec}
        if seeds is not None:
            body["seeds"] = seeds
        if sweep:
            body["sweep"] = sweep
        if max_attempts is not None:
            body["max_attempts"] = max_attempts
        return self._request("POST", "/jobs", body)

    def job(self, job_id: str) -> Dict[str, object]:
        """``GET /jobs/{id}``: current status/progress of one job."""
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, digest: str) -> Dict[str, object]:
        """``GET /results/{digest}``: the cached ScenarioResult payload."""
        return self._request("GET", f"/results/{digest}")

    def healthz(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        return self._request("GET", "/metrics")

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def wait(
        self,
        job_id: str,
        *,
        timeout_s: float = 120.0,
        poll_s: float = 0.2,
    ) -> Dict[str, object]:
        """Poll ``GET /jobs/{id}`` until the job is terminal.

        Returns the final job payload on ``done``; raises
        :class:`JobFailed` on ``failed`` and :class:`TimeoutError` when
        ``timeout_s`` elapses first.
        """
        deadline = clock.monotonic_s() + timeout_s
        while True:
            job = self.job(job_id)
            if job.get("state") == "done":
                return job
            if job.get("state") == "failed":
                raise JobFailed(job)
            if clock.monotonic_s() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job.get('state')!r} after {timeout_s:g}s"
                )
            clock.sleep_s(poll_s)
