"""The service layer's *only* window onto the host clock.

The simulation proper is forbidden from reading wall-clock time (the
``no-wall-clock`` analysis rule enforces it): simulated behaviour must
derive every timestamp from ``Simulator.now`` so replays stay
bit-identical.  The service layer is different — job leases, heartbeat
expiry, retry backoff and client poll timeouts are *operational* time,
invisible to simulation results and cache digests.

Rather than sprinkling pragmas over every ``time.time()`` call in the
service package, all host-clock reads are funnelled through this one
module, which the ``no-wall-clock`` rule allowlists by scope.  Nothing
returned from here may flow into a :class:`ScenarioResult` or a cache
digest; the separation is what keeps the service wall-clocked and the
simulation deterministic at the same time.

Two clocks are exposed, used for different jobs:

* :func:`wall_s` — epoch seconds.  Used for lease expiry stamps and
  retry ``not_before`` gates, which must be comparable **across
  machines** sharing one job store (assumes loosely synchronised
  clocks; lease TTLs should dwarf the expected skew).
* :func:`monotonic_s` — monotonic seconds.  Used for single-process
  deadlines (client ``wait`` timeouts, executor polling) where clock
  adjustments must not fire or starve a timeout.
"""

from __future__ import annotations

import time


def wall_s() -> float:
    """Epoch seconds (cross-machine comparable; lease/backoff stamps)."""
    return time.time()


def monotonic_s() -> float:
    """Monotonic seconds (single-process deadlines and rate metering)."""
    return time.monotonic()


def sleep_s(seconds: float) -> None:
    """Block for ``seconds`` (plain ``time.sleep``; kept here so callers
    never need to import ``time`` and drift toward reading it)."""
    if seconds > 0:
        time.sleep(seconds)
