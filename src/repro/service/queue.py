"""Work-stealing claim protocol: lease files, heartbeats, reclaim, backoff.

Any number of workers — threads, processes, or machines sharing the
store's filesystem — drain one :class:`~repro.service.store.JobStore` by
*claiming* jobs through lease files:

* **Claim** — scan queued jobs in id order and atomically create
  ``leases/<job_id>.json`` with ``O_CREAT | O_EXCL``; exactly one
  claimant can win, which is the entire mutual-exclusion story (no
  server, no locks, works across machines on a shared POSIX
  filesystem).  The winner flips the record ``queued -> leased``.
* **Heartbeat** — the owner periodically rewrites its lease with a new
  expiry stamp.  A worker that dies (SIGKILL, power loss) simply stops
  heartbeating.
* **Reclaim** — anyone may sweep expired leases: the job record is
  returned to ``queued`` (with retry backoff) *before* the lease file is
  unlinked, so no claimant can observe a half-reclaimed job.
* **Backoff & quarantine** — each claim counts as an attempt; failures
  and expiries requeue the job ``not_before`` an exponentially growing
  delay, until ``max_attempts`` is reached and the job is retired to
  ``failed`` (the poison-job quarantine) instead of looping forever.

Lease expiry compares epoch stamps written by one machine against the
clock of another, so TTLs should comfortably exceed expected clock skew
plus one heartbeat interval; the defaults (30 s TTL, 10 s heartbeat)
leave a wide margin.
"""

from __future__ import annotations

import json
import os
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro.service import clock
from repro.service.store import JobNotFound, JobRecord, JobStore, JobStoreError

#: Default seconds a lease stays valid without a heartbeat.
DEFAULT_LEASE_TTL_S = 30.0

#: Default first-retry backoff; doubles per attempt up to the cap.
DEFAULT_BACKOFF_BASE_S = 0.5
DEFAULT_BACKOFF_CAP_S = 30.0


@dataclass(frozen=True)
class Lease:
    """A live claim on one job, held by one worker."""

    job_id: str
    owner: str
    expires_s: float

    def to_dict(self) -> dict:
        return {"job_id": self.job_id, "owner": self.owner, "expires_s": self.expires_s}

    @classmethod
    def from_dict(cls, data: dict) -> "Lease":
        return cls(
            job_id=str(data["job_id"]),
            owner=str(data["owner"]),
            expires_s=float(data["expires_s"]),
        )


class WorkQueue:
    """Claim/heartbeat/reclaim protocol over a :class:`JobStore`."""

    def __init__(
        self,
        store: JobStore,
        *,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
    ) -> None:
        self.store = store
        self.lease_ttl_s = float(lease_ttl_s)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)

    # ------------------------------------------------------------------
    # Lease file IO
    # ------------------------------------------------------------------
    def lease_path(self, job_id: str) -> Path:
        return self.store.leases_dir / f"{job_id}.json"

    def _read_lease(self, path: Path) -> Optional[Lease]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return Lease.from_dict(json.load(handle))
        except (OSError, ValueError, KeyError, TypeError):
            return None  # vanished or torn mid-write; the sweep retries later

    def _try_create_lease(self, job_id: str, owner: str) -> Optional[Lease]:
        """Atomically create the lease file; None if someone else holds it."""
        lease = Lease(job_id=job_id, owner=owner, expires_s=clock.wall_s() + self.lease_ttl_s)
        path = self.lease_path(job_id)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return None
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(lease.to_dict(), handle)
        return lease

    def heartbeat(self, job_id: str, owner: str) -> Lease:
        """Refresh the lease's expiry (atomic rewrite); owner keeps the claim."""
        lease = Lease(job_id=job_id, owner=owner, expires_s=clock.wall_s() + self.lease_ttl_s)
        path = self.lease_path(job_id)
        payload = json.dumps(lease.to_dict())
        tmp = path.with_name(path.name + f".{uuid.uuid4().hex[:6]}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp, path)
        return lease

    def release(self, job_id: str) -> None:
        """Drop the lease file (idempotent)."""
        try:
            os.unlink(self.lease_path(job_id))
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Claiming
    # ------------------------------------------------------------------
    def claim(self, owner: Optional[str] = None) -> Optional[JobRecord]:
        """Claim the oldest runnable job for ``owner``; None when idle.

        A runnable job is ``queued``, of kind ``scenario``, and past its
        ``not_before`` backoff gate.  On success the returned record is
        already in state ``leased`` with ``attempts`` incremented, and
        the caller owns the lease until it completes, fails or stops
        heartbeating.
        """
        owner = owner or f"worker-{uuid.uuid4().hex[:8]}"
        now = clock.wall_s()
        for job_id in self.store.job_ids():
            try:
                record = self.store.get(job_id)
            except (JobNotFound, JobStoreError):
                continue
            if record.state != "queued" or record.kind != "scenario":
                continue
            if record.not_before > now:
                continue
            if self._try_create_lease(job_id, owner) is None:
                continue
            # Re-read under the lease: the record may have moved on
            # between the scan and the claim (e.g. a reclaim requeued it
            # with new bookkeeping, or a duplicate submit completed it).
            try:
                record = self.store.get(job_id)
            except (JobNotFound, JobStoreError):
                self.release(job_id)
                continue
            if record.state != "queued" or record.not_before > now:
                self.release(job_id)
                continue
            record.state = "leased"
            record.attempts += 1
            self.store.update(record)
            return record
        return None

    # ------------------------------------------------------------------
    # Completion / failure
    # ------------------------------------------------------------------
    def complete(self, record: JobRecord, digest: str) -> JobRecord:
        """Mark a leased job done (result lives in the cache under ``digest``)."""
        record.state = "done"
        record.digest = digest
        record.error = None
        record.finished_s = clock.wall_s()
        self.store.update(record)
        self.release(record.job_id)
        return record

    def backoff_s(self, attempts: int) -> float:
        """Exponential retry delay after ``attempts`` failed attempts."""
        if attempts <= 0:
            return 0.0
        return min(self.backoff_cap_s, self.backoff_base_s * (2.0 ** (attempts - 1)))

    def fail_attempt(self, record: JobRecord, error: str) -> JobRecord:
        """Record a failed attempt: requeue with backoff, or quarantine.

        Below the attempt cap the job returns to ``queued`` gated by
        ``not_before``; at the cap it is retired to ``failed`` — the
        poison-job quarantine — keeping the error that killed it.
        """
        record.error = error
        if record.attempts >= record.max_attempts:
            record.state = "failed"
            record.finished_s = clock.wall_s()
        else:
            record.state = "queued"
            record.not_before = clock.wall_s() + self.backoff_s(record.attempts)
        self.store.update(record)
        self.release(record.job_id)
        return record

    # ------------------------------------------------------------------
    # Reclaim
    # ------------------------------------------------------------------
    def reclaim_expired(self) -> List[str]:
        """Requeue every job whose lease expired; returns the job ids touched.

        The record transition happens *while the lease file still
        exists* (claims are blocked by ``O_EXCL``), then the lease is
        unlinked — so a concurrent claimant can never see the job
        half-reclaimed.  Leases pointing at terminal records (a worker
        died after completing but before releasing) are simply dropped.
        """
        reclaimed: List[str] = []
        now = clock.wall_s()
        for path in sorted(self.store.leases_dir.glob("*.json")):
            lease = self._read_lease(path)
            if lease is None or lease.expires_s > now:
                continue
            job_id = path.stem
            try:
                record = self.store.get(job_id)
            except (JobNotFound, JobStoreError):
                self.release(job_id)
                continue
            if record.state == "leased":
                if record.attempts >= record.max_attempts:
                    record.state = "failed"
                    record.error = record.error or (
                        f"lease expired after {record.attempts} attempt(s); "
                        "worker presumed dead"
                    )
                    record.finished_s = now
                else:
                    record.state = "queued"
                    record.not_before = now + self.backoff_s(record.attempts)
                self.store.update(record)
                reclaimed.append(job_id)
            self.release(job_id)
        return reclaimed
