"""Workers: claim jobs, run them through the sweep path, heartbeat leases.

A :class:`Worker` is a loop over
:meth:`repro.service.queue.WorkQueue.claim`.  Each claimed job is
executed through :class:`~repro.experiments.parallel.SweepRunner` with
the *shared* result cache — exactly the path ``python -m
repro.experiments run`` takes — so a job whose
:func:`~repro.experiments.parallel.config_digest` is already cached
completes instantly without simulating, and a freshly simulated result
is bit-identical to an in-process run of the same config.

While a job runs, a daemon heartbeat thread refreshes the lease every
``heartbeat_s``; a worker killed mid-job (SIGKILL, OOM, power loss)
stops heartbeating and the lease expires, after which any other worker's
:meth:`~repro.service.queue.WorkQueue.reclaim_expired` sweep requeues
the job for retry.  Failures inside a job (bad payload, component
errors) are recorded via :meth:`~repro.service.queue.WorkQueue.fail_attempt`,
which quarantines the job after ``max_attempts``.

Standalone processes — one per core, or spread across machines sharing
the store directory — run the same loop via::

    python -m repro.service worker --store DIR
"""

from __future__ import annotations

import threading
import uuid
from typing import Optional

from repro.service import clock
from repro.service.queue import WorkQueue
from repro.service.store import JobRecord, JobStore


class Worker:
    """One claim-run-complete loop over a shared job store."""

    def __init__(
        self,
        store: JobStore,
        *,
        cache=None,
        queue: Optional[WorkQueue] = None,
        worker_id: Optional[str] = None,
        lease_ttl_s: Optional[float] = None,
        heartbeat_s: Optional[float] = None,
        poll_s: float = 0.5,
    ) -> None:
        from repro.experiments.parallel import ResultCache

        self.store = store
        kwargs = {} if lease_ttl_s is None else {"lease_ttl_s": lease_ttl_s}
        self.queue = queue or WorkQueue(store, **kwargs)
        self.cache = cache if cache is not None else ResultCache(store.cache_dir)
        self.worker_id = worker_id or f"worker-{uuid.uuid4().hex[:8]}"
        self.heartbeat_s = (
            heartbeat_s if heartbeat_s is not None else max(self.queue.lease_ttl_s / 3.0, 0.05)
        )
        self.poll_s = float(poll_s)
        self.jobs_done = 0
        self.jobs_failed = 0

    # ------------------------------------------------------------------
    # One job
    # ------------------------------------------------------------------
    def _run_record(self, record: JobRecord) -> str:
        """Execute one claimed job; returns the result digest.

        Raises on any failure (malformed payload, component errors, ...);
        the caller turns exceptions into ``fail_attempt``.
        """
        from repro.experiments.parallel import SweepRunner, config_digest
        from repro.experiments.runner import ScenarioConfig

        if record.config is None:
            raise ValueError("job has no config payload (group jobs are not runnable)")
        config = ScenarioConfig.from_dict(record.config)
        digest = record.digest or config_digest(config)
        # The shared cache makes this the instant path for known digests
        # and the store-through path for fresh ones.
        SweepRunner(jobs=1, cache=self.cache).run_one(config)
        return digest

    def run_once(self) -> Optional[JobRecord]:
        """Claim and process a single job; None when the queue is idle.

        The returned record is terminal (``done``) or requeued/quarantined
        (``queued``/``failed``) — never left ``leased``.
        """
        self.queue.reclaim_expired()
        record = self.queue.claim(self.worker_id)
        if record is None:
            return None
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(self.heartbeat_s):
                try:
                    self.queue.heartbeat(record.job_id, self.worker_id)
                except OSError:
                    return  # store directory gone; the lease will expire

        heartbeat = threading.Thread(target=beat, name=f"{self.worker_id}-heartbeat", daemon=True)
        heartbeat.start()
        try:
            digest = self._run_record(record)
        except Exception as exc:  # noqa: BLE001 - every job failure must be recorded
            stop.set()
            heartbeat.join()
            return self.queue.fail_attempt(record, f"{type(exc).__name__}: {exc}")
        finally:
            stop.set()
            heartbeat.join()
        self.jobs_done += 1
        return self.queue.complete(record, digest)

    # ------------------------------------------------------------------
    # Loops
    # ------------------------------------------------------------------
    def run_until_idle(self) -> int:
        """Drain the queue; returns the number of jobs processed."""
        processed = 0
        while True:
            record = self.run_once()
            if record is None:
                return processed
            processed += 1
            if record.state == "failed":
                self.jobs_failed += 1

    def run_forever(
        self,
        *,
        max_jobs: Optional[int] = None,
        idle_exit_s: Optional[float] = None,
        stop_event: Optional[threading.Event] = None,
    ) -> int:
        """Poll for work until stopped; returns the number of jobs processed.

        ``max_jobs`` bounds the total processed, ``idle_exit_s`` exits
        after that long without finding work (useful for drain-and-exit
        deployments), and ``stop_event`` allows cooperative shutdown from
        another thread.
        """
        processed = 0
        idle_since: Optional[float] = None
        while stop_event is None or not stop_event.is_set():
            record = self.run_once()
            if record is not None:
                processed += 1
                if record.state == "failed":
                    self.jobs_failed += 1
                idle_since = None
                if max_jobs is not None and processed >= max_jobs:
                    break
                continue
            now = clock.monotonic_s()
            if idle_since is None:
                idle_since = now
            if idle_exit_s is not None and now - idle_since >= idle_exit_s:
                break
            if stop_event is not None:
                stop_event.wait(self.poll_s)
            else:
                clock.sleep_s(self.poll_s)
        return processed
