"""Distributed sweep execution: a ``SweepRunner`` executor over the job store.

:class:`~repro.experiments.parallel.SweepRunner` fans cache-miss configs
out through a pluggable *executor* (its ``executor=`` seam); the default
is local ``multiprocessing``.  :class:`JobStoreExecutor` is the
distributed backend: it enqueues every config into a shared
:class:`~repro.service.store.JobStore` and blocks until the fleet of
workers draining that store — other processes, other machines — has
completed them, then returns the result payloads from the shared cache.

Because workers execute jobs through the very same ``SweepRunner`` +
``ResultCache`` path, a distributed sweep is bit-identical to a local
one; the only thing that changes is *where* the CPU burn happens::

    store = JobStore("/mnt/shared/repro-service")
    cache = ResultCache(store.cache_dir)
    runner = SweepRunner(cache=cache, executor=JobStoreExecutor(store, cache))
    results = runner.run(expand_grid(base, seed=list(range(1, 65))))
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.service import clock
from repro.service.queue import WorkQueue
from repro.service.store import DEFAULT_MAX_ATTEMPTS, JobStore


class DistributedSweepError(RuntimeError):
    """A job failed (or timed out) while draining a distributed sweep."""


class JobStoreExecutor:
    """Executor callable: enqueue configs, await workers, collect results."""

    def __init__(
        self,
        store: JobStore,
        cache,
        *,
        poll_s: float = 0.2,
        timeout_s: Optional[float] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        self.store = store
        self.cache = cache
        self.queue = WorkQueue(store)
        self.poll_s = float(poll_s)
        self.timeout_s = timeout_s
        self.max_attempts = int(max_attempts)

    def __call__(self, configs: List) -> List[Dict[str, object]]:
        from repro.experiments.parallel import config_digest

        digests = [config_digest(config) for config in configs]
        job_ids = [
            self.store.submit(
                config.to_dict(), digest=digest, max_attempts=self.max_attempts
            ).job_id
            for config, digest in zip(configs, digests)
        ]
        pending = set(job_ids)
        deadline = None if self.timeout_s is None else clock.monotonic_s() + self.timeout_s
        while pending:
            # Anyone may sweep expired leases; doing it from the waiter
            # means a dead worker cannot stall the sweep forever.
            self.queue.reclaim_expired()
            for job_id in sorted(pending):
                record = self.store.get(job_id)
                if record.state == "done":
                    pending.discard(job_id)
                elif record.state == "failed":
                    raise DistributedSweepError(
                        f"job {job_id} failed after {record.attempts} attempt(s): "
                        f"{record.error}"
                    )
            if not pending:
                break
            if deadline is not None and clock.monotonic_s() >= deadline:
                raise DistributedSweepError(
                    f"{len(pending)} job(s) still pending after {self.timeout_s:g}s; "
                    "are any workers draining this store?"
                )
            clock.sleep_s(self.poll_s)
        results: List[Dict[str, object]] = []
        for digest, job_id in zip(digests, job_ids):
            data = self.cache.load_raw(digest)
            if data is None:
                raise DistributedSweepError(
                    f"job {job_id} is done but digest {digest} is missing from the "
                    f"shared cache at {self.cache.root} — store and cache must be shared"
                )
            results.append(data)
        return results
