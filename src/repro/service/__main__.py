"""CLI entry point: serve the HTTP API, run workers, submit and poll jobs.

::

    python -m repro.service serve  --store DIR [--port 8642] [--workers 4]
    python -m repro.service worker --store DIR [--idle-exit 30] [--once]
    python -m repro.service submit --url http://HOST:PORT spec.json [--seeds 3] [--wait]
    python -m repro.service status --url http://HOST:PORT JOB_ID

``serve`` optionally spawns local worker processes (``--workers N``)
that drain the same store the HTTP app enqueues into; additional
``worker`` processes may be started on any machine sharing the store's
filesystem.  ``submit`` reads one ScenarioSpec JSON document (the same
format ``python -m repro.experiments run --spec`` takes, ``-`` for
stdin) and prints the service's JSON responses; with ``--wait`` it polls
to completion and prints the final job *and* its result payload, so
scripts never scrape human-formatted output.
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
from typing import List, Optional

from repro.service.app import (
    DEFAULT_HOST,
    DEFAULT_MAX_QUEUE,
    DEFAULT_PORT,
    SimulationService,
    make_server,
)
from repro.service.client import JobFailed, ServiceClient, ServiceError
from repro.service.queue import DEFAULT_LEASE_TTL_S
from repro.service.store import JobStore
from repro.service.worker import Worker


def _make_cache(store: JobStore, cache_dir: Optional[str]):
    from repro.experiments.parallel import ResultCache

    return ResultCache(cache_dir if cache_dir is not None else store.cache_dir)


def _spawn_workers(count: int, args) -> List[subprocess.Popen]:
    """Start ``count`` standalone worker processes against the same store."""
    command = [
        sys.executable, "-m", "repro.service", "worker",
        "--store", str(args.store),
        "--lease-ttl", str(args.lease_ttl),
    ]
    if args.cache_dir is not None:
        command += ["--cache-dir", args.cache_dir]
    return [subprocess.Popen(command) for _ in range(count)]


def _cmd_serve(args) -> int:
    store = JobStore(args.store)
    cache = _make_cache(store, args.cache_dir)
    service = SimulationService(store, cache, max_queue=args.max_queue)
    server = make_server(service, args.host, args.port, verbose=args.verbose)
    host, port = server.server_address[:2]
    workers = _spawn_workers(args.workers, args) if args.workers else []
    print(
        f"serving on http://{host}:{port} (store {store.root}, "
        f"{len(workers)} local worker(s))",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        for process in workers:
            process.send_signal(signal.SIGTERM)
        for process in workers:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
    return 0


def _cmd_worker(args) -> int:
    store = JobStore(args.store)
    worker = Worker(
        store,
        cache=_make_cache(store, args.cache_dir),
        worker_id=args.worker_id,
        lease_ttl_s=args.lease_ttl,
        poll_s=args.poll,
    )
    if args.once:
        record = worker.run_once()
        print("idle" if record is None else f"{record.job_id}: {record.state}", flush=True)
        return 0
    import threading

    stop = threading.Event()
    # Finish (or fail) the job in flight, then exit cleanly on SIGTERM —
    # `serve` shuts its spawned workers down this way.
    signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    processed = worker.run_forever(
        max_jobs=args.max_jobs, idle_exit_s=args.idle_exit, stop_event=stop
    )
    print(f"processed {processed} job(s) ({worker.jobs_failed} failed)", flush=True)
    return 0


def _print_json(document) -> None:
    json.dump(document, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def _cmd_submit(args) -> int:
    if args.spec == "-":
        document = json.load(sys.stdin)
    else:
        with open(args.spec, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    client = ServiceClient(args.url)
    try:
        response = client.submit(
            document,
            seeds=args.seeds,
            max_attempts=args.max_attempts,
        )
    except ServiceError as exc:
        print(f"submit rejected: {exc}", file=sys.stderr)
        return 2
    if not args.wait:
        _print_json(response)
        return 0
    try:
        job = client.wait(
            str(response["job_id"]), timeout_s=args.timeout, poll_s=args.poll
        )
    except JobFailed as exc:
        _print_json(exc.payload)
        print(f"job failed: {exc}", file=sys.stderr)
        return 1
    except TimeoutError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    digests = response.get("digests") or ([job["digest"]] if job.get("digest") else [])
    document = {"job": job, "results": {d: client.result(str(d)) for d in digests}}
    _print_json(document)
    return 0


def _cmd_status(args) -> int:
    client = ServiceClient(args.url)
    try:
        _print_json(client.job(args.job_id))
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Simulation-as-a-service: job queue + HTTP API over the result cache.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    store_args = argparse.ArgumentParser(add_help=False)
    store_args.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="job store root (default: $REPRO_SERVICE_DIR or .repro-service)",
    )
    store_args.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="shared result cache root (default: <store>/cache)",
    )
    store_args.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_LEASE_TTL_S,
        metavar="SECONDS",
        help=f"lease expiry without a heartbeat (default {DEFAULT_LEASE_TTL_S:g})",
    )

    serve = sub.add_parser("serve", help="run the HTTP API", parents=[store_args])
    serve.add_argument("--host", default=DEFAULT_HOST)
    serve.add_argument("--port", type=int, default=DEFAULT_PORT, help="0 = ephemeral")
    serve.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="spawn N local worker processes draining this store (default 0)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=DEFAULT_MAX_QUEUE, metavar="N",
        help=f"backpressure threshold: 429 past N waiting jobs (default {DEFAULT_MAX_QUEUE})",
    )
    serve.add_argument("--verbose", action="store_true", help="log every request")

    worker = sub.add_parser(
        "worker", help="drain jobs from a store (run on any machine sharing it)",
        parents=[store_args],
    )
    worker.add_argument("--once", action="store_true", help="process at most one job, then exit")
    worker.add_argument("--max-jobs", type=int, default=None, metavar="N")
    worker.add_argument(
        "--idle-exit", type=float, default=None, metavar="SECONDS",
        help="exit after this long with an empty queue (default: poll forever)",
    )
    worker.add_argument("--poll", type=float, default=0.5, metavar="SECONDS")
    worker.add_argument("--worker-id", default=None)

    url_args = argparse.ArgumentParser(add_help=False)
    url_args.add_argument(
        "--url",
        default=f"http://{DEFAULT_HOST}:{DEFAULT_PORT}",
        help=f"service base URL (default http://{DEFAULT_HOST}:{DEFAULT_PORT})",
    )

    submit = sub.add_parser(
        "submit", help="POST one ScenarioSpec JSON document", parents=[url_args]
    )
    submit.add_argument("spec", metavar="SPEC.json", help="ScenarioSpec file, or - for stdin")
    submit.add_argument("--seeds", type=int, default=None, metavar="N", help="fan out seeds 1..N")
    submit.add_argument("--max-attempts", type=int, default=None, metavar="N")
    submit.add_argument("--wait", action="store_true", help="poll to completion, print results")
    submit.add_argument("--timeout", type=float, default=300.0, metavar="SECONDS")
    submit.add_argument("--poll", type=float, default=0.2, metavar="SECONDS")

    status = sub.add_parser("status", help="print one job's status JSON", parents=[url_args])
    status.add_argument("job_id", metavar="JOB_ID")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "serve": _cmd_serve,
        "worker": _cmd_worker,
        "submit": _cmd_submit,
        "status": _cmd_status,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
