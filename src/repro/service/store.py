"""Durable, crash-safe job store shared by every worker and the HTTP app.

A :class:`JobStore` is a directory (typically on a filesystem shared by
several machines) holding one JSON file per job plus a ``leases/``
subdirectory used by :class:`repro.service.queue.WorkQueue` for
work-stealing claims.  Results never live here: a job's payload is a
canonical ``ScenarioConfig.to_dict()`` document and its *result* is
addressed by the existing content hash
(:func:`repro.experiments.parallel.config_digest`) in the shared
:class:`~repro.experiments.parallel.ResultCache` that sits next to the
store (``<root>/cache`` by default).  A job whose digest is already
cached therefore completes instantly without simulating anything.

Layout::

    <root>/
      jobs/   <job_id>.json      one JobRecord per job (atomic writes)
      leases/ <job_id>.json      live claims (see queue.py)
      cache/  ab/<digest>.json   the shared ResultCache (default location)

Job lifecycle::

    queued --claim--> leased --complete--> done
       ^                |
       |                +--fail/lease-expiry--> queued   (attempts < max)
       +--backoff-------+
                        +--fail/lease-expiry--> failed   (poison quarantine)

Every write is atomic (tmp file + ``os.replace``, exactly like
``ResultCache.store``), so a SIGKILL at any point leaves either the old
or the new record on disk, never a torn one.  State-field transitions
are the single source of truth; lease files only arbitrate *who* may
drive the next transition.
"""

from __future__ import annotations

import json
import os
import tempfile
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.serialization import SpecError, require_keys, require_known_keys
from repro.service import clock

#: Default store root; override with ``REPRO_SERVICE_DIR`` or ``--store``.
DEFAULT_STORE_DIR = ".repro-service"

#: Terminal and non-terminal job states (the only values ``state`` takes).
JOB_STATES = ("queued", "leased", "done", "failed")

#: Default cap on run attempts before a job is quarantined as poison.
DEFAULT_MAX_ATTEMPTS = 3


class JobStoreError(RuntimeError):
    """Raised for malformed or unreadable job records."""


class JobNotFound(KeyError):
    """Raised when a job id has no record on disk."""


@dataclass
class JobRecord:
    """One durable job: a scenario config payload plus queue bookkeeping.

    ``config`` is the canonical ``ScenarioConfig.to_dict()`` document for
    ``kind="scenario"`` jobs and ``None`` for ``kind="group"`` parents,
    which exist only to aggregate their ``children``'s progress and are
    never claimable.  ``digest`` is the config's content hash when known
    (always set at HTTP submit time; workers compute it otherwise).
    """

    job_id: str
    config: Optional[Dict[str, object]] = None
    digest: Optional[str] = None
    state: str = "queued"
    kind: str = "scenario"
    children: List[str] = field(default_factory=list)
    attempts: int = 0
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    #: Epoch seconds before which the job may not be claimed (retry backoff).
    not_before: float = 0.0
    error: Optional[str] = None
    created_s: float = 0.0
    finished_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise SpecError(
                f"unknown job state {self.state!r}; known: {list(JOB_STATES)}"
            )
        if self.kind not in ("scenario", "group"):
            raise SpecError(f"unknown job kind {self.kind!r}; known: ['scenario', 'group']")

    @property
    def terminal(self) -> bool:
        """Whether the job can never run again (``done`` or ``failed``)."""
        return self.state in ("done", "failed")

    @property
    def quarantined(self) -> bool:
        """Whether the job was retired as poison (failed at the attempt cap)."""
        return self.state == "failed" and self.attempts >= self.max_attempts

    # ------------------------------------------------------------------
    # Serialization (strict, like every wire format in the repo)
    # ------------------------------------------------------------------
    _FIELDS = (
        "job_id", "config", "digest", "state", "kind", "children",
        "attempts", "max_attempts", "not_before", "error",
        "created_s", "finished_s",
    )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation; ``from_dict`` is its exact inverse."""
        return {
            "job_id": self.job_id,
            "config": self.config,
            "digest": self.digest,
            "state": self.state,
            "kind": self.kind,
            "children": list(self.children),
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "not_before": self.not_before,
            "error": self.error,
            "created_s": self.created_s,
            "finished_s": self.finished_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobRecord":
        require_known_keys(data, cls._FIELDS, cls.__name__)
        require_keys(data, ("job_id",), cls.__name__)
        config = data.get("config")
        if config is not None and not isinstance(config, dict):
            raise SpecError(
                f"JobRecord.config must be a dict or null, got {type(config).__name__}"
            )
        finished = data.get("finished_s")
        return cls(
            job_id=str(data["job_id"]),
            config=config,
            digest=None if data.get("digest") is None else str(data["digest"]),
            state=str(data.get("state", "queued")),
            kind=str(data.get("kind", "scenario")),
            children=[str(child) for child in data.get("children") or []],
            attempts=int(data.get("attempts", 0)),
            max_attempts=int(data.get("max_attempts", DEFAULT_MAX_ATTEMPTS)),
            not_before=float(data.get("not_before", 0.0)),
            error=None if data.get("error") is None else str(data["error"]),
            created_s=float(data.get("created_s", 0.0)),
            finished_s=None if finished is None else float(finished),
        )


def new_job_id() -> str:
    """A fresh, time-sortable job id (``<epoch-ms>-<random>``).

    The millisecond prefix makes a lexicographic directory scan
    approximate FIFO claim order across submitters; the random suffix
    guarantees uniqueness within and across machines.
    """
    return f"{int(clock.wall_s() * 1000):013d}-{uuid.uuid4().hex[:10]}"


class JobStore:
    """Atomic CRUD over the on-disk job records (no claim logic here).

    Claiming, heartbeats and lease reclaim live in
    :class:`repro.service.queue.WorkQueue`; this class only guarantees
    that every record read is a record some writer wrote in full.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_SERVICE_DIR", DEFAULT_STORE_DIR)
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.leases_dir = self.root / "leases"
        self.cache_dir = self.root / "cache"
        for directory in (self.jobs_dir, self.leases_dir):
            directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Record IO
    # ------------------------------------------------------------------
    def path_for(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _write_atomic(self, path: Path, payload: Dict[str, object]) -> None:
        text = json.dumps(payload, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def submit(
        self,
        config: Optional[Dict[str, object]],
        *,
        digest: Optional[str] = None,
        job_id: Optional[str] = None,
        kind: str = "scenario",
        children: Optional[List[str]] = None,
        state: str = "queued",
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> JobRecord:
        """Create and persist a new job record; returns it.

        ``state`` may be ``"done"`` for digest-already-cached submissions
        (the instant-completion path) — such jobs are born terminal and
        never enter the queue.
        """
        record = JobRecord(
            job_id=job_id or new_job_id(),
            config=config,
            digest=digest,
            state=state,
            kind=kind,
            children=list(children or []),
            max_attempts=max_attempts,
            created_s=clock.wall_s(),
            finished_s=clock.wall_s() if state in ("done", "failed") else None,
        )
        path = self.path_for(record.job_id)
        if path.exists():
            raise JobStoreError(f"job id collision: {record.job_id}")
        self._write_atomic(path, record.to_dict())
        return record

    def get(self, job_id: str) -> JobRecord:
        """Load one record; :class:`JobNotFound` if absent, error if torn."""
        path = self.path_for(job_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            raise JobNotFound(job_id) from None
        except (OSError, ValueError) as exc:
            raise JobStoreError(f"unreadable job record {path}: {exc}") from exc
        try:
            return JobRecord.from_dict(data)
        except SpecError as exc:
            raise JobStoreError(f"malformed job record {path}: {exc}") from exc

    def update(self, record: JobRecord) -> None:
        """Persist ``record`` (atomic replace of its file)."""
        self._write_atomic(self.path_for(record.job_id), record.to_dict())

    def job_ids(self) -> List[str]:
        """All job ids, lexicographically sorted (approximate FIFO order)."""
        return sorted(path.stem for path in self.jobs_dir.glob("*.json"))

    def records(self) -> Iterator[JobRecord]:
        """Iterate every readable record in id order (skips torn/foreign files)."""
        for job_id in self.job_ids():
            try:
                yield self.get(job_id)
            except (JobNotFound, JobStoreError):
                continue

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Number of jobs per state plus the live lease count."""
        counts = {state: 0 for state in JOB_STATES}
        quarantined = 0
        for record in self.records():
            counts[record.state] += 1
            if record.quarantined:
                quarantined += 1
        counts["quarantined"] = quarantined
        counts["leases"] = sum(1 for _ in self.leases_dir.glob("*.json"))
        return counts

    def queue_depth(self) -> int:
        """Jobs waiting to run (``queued`` + ``leased``)."""
        depth = 0
        for record in self.records():
            if record.state in ("queued", "leased") and record.kind == "scenario":
                depth += 1
        return depth

    def group_progress(self, record: JobRecord) -> Dict[str, int]:
        """Per-state tally of a group job's children."""
        progress = {state: 0 for state in JOB_STATES}
        progress["total"] = len(record.children)
        for child_id in record.children:
            try:
                child = self.get(child_id)
            except (JobNotFound, JobStoreError):
                continue
            progress[child.state] += 1
        return progress
