"""Simulation-as-a-service: a durable job queue and HTTP API over the cache.

The sweep subsystem (PR 1) made every experiment a pure function of its
:class:`~repro.experiments.runner.ScenarioConfig`, content-addressed in
an on-disk :class:`~repro.experiments.parallel.ResultCache`; the spec
layer (PR 4) gave those configs a validated JSON wire format.  This
package is the consequence: point any number of workers — processes or
machines sharing a filesystem — at one store directory, put a small HTTP
server in front, and any client can submit a ``ScenarioSpec`` document
and fetch back a bit-reproducible, cached result.

Layers (see ``docs/SERVICE.md`` for the full architecture):

* :mod:`repro.service.store` — durable, crash-safe job records
  (``queued -> leased -> done|failed``), atomic-rename writes, results
  addressed by ``config_digest`` in the shared cache.
* :mod:`repro.service.queue` — work-stealing claims via ``O_EXCL``
  lease files, heartbeats, lease-expiry reclaim, bounded retries with
  exponential backoff, poison-job quarantine.
* :mod:`repro.service.worker` — the claim-run-complete loop; executes
  jobs through ``SweepRunner`` + the shared cache, so cached digests
  complete instantly and fresh runs are bit-identical to local ones.
* :mod:`repro.service.app` / :mod:`repro.service.schemas` — the stdlib
  ``http.server`` API with strict request validation, structured 400s
  and queue-depth backpressure (429).
* :mod:`repro.service.client` — the tiny ``urllib`` client the tests,
  CLI and CI smoke job share.
* :mod:`repro.service.executor` — ``JobStoreExecutor``, the
  ``SweepRunner`` backend that turns any existing sweep into a
  distributed one.
* :mod:`repro.service.clock` — the one module allowed to read the host
  clock (leases and timeouts are operational time; simulation time
  never is).

Run it::

    python -m repro.service serve  --store DIR --port 8642 --workers 4
    python -m repro.service worker --store DIR            # more drain, anywhere
    python -m repro.service submit --url http://HOST:8642 spec.json --wait
    python -m repro.service status --url http://HOST:8642 JOB_ID
"""

from repro.service.client import JobFailed, ServiceClient, ServiceError
from repro.service.executor import DistributedSweepError, JobStoreExecutor
from repro.service.queue import WorkQueue
from repro.service.store import JobNotFound, JobRecord, JobStore, JobStoreError
from repro.service.worker import Worker

__all__ = [
    "DistributedSweepError",
    "JobFailed",
    "JobNotFound",
    "JobRecord",
    "JobStore",
    "JobStoreError",
    "JobStoreExecutor",
    "ServiceClient",
    "ServiceError",
    "WorkQueue",
    "Worker",
]
