"""Wire format of the HTTP API: strict request parsing, response shaping.

Requests ride the same strict ``from_dict`` discipline as every
serialized object in the repository (:mod:`repro.serialization`): an
unknown field raises :class:`~repro.serialization.SpecError` naming the
field and the class, which the app turns into a structured 400 instead
of a stack trace.  The scenario payload itself is a full
:class:`repro.spec.ScenarioSpec` document — the service adds *no* second
scenario format; whatever runs from ``--spec file.json`` runs over HTTP
unchanged.

A :class:`SubmitRequest` is either a single scenario or a small grid:

``spec``
    One ScenarioSpec document (required).
``seeds``
    Optional — an integer N (meaning seeds ``1..N``) or an explicit
    list; each seed becomes one child job.
``sweep``
    Optional — ``{field: [values, ...]}`` over top-level ScenarioSpec
    fields; the Cartesian product of all sweep axes (times ``seeds``)
    fans out into child jobs under one group job.
``max_attempts``
    Optional retry cap per child job (poison quarantine threshold).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Optional

from repro.serialization import SpecError, require_keys, require_known_keys
from repro.service.store import DEFAULT_MAX_ATTEMPTS, JobRecord, JobStore
from repro.spec import ScenarioSpec

#: Hard ceiling on fan-out from one submit call, independent of queue
#: backpressure: a single request may not enqueue more than this many jobs.
MAX_FANOUT = 1024


@dataclass
class SubmitRequest:
    """Parsed ``POST /jobs`` body: one spec document plus fan-out axes."""

    spec: Dict[str, object]
    seeds: Optional[List[int]] = None
    sweep: Dict[str, List[object]] = field(default_factory=dict)
    max_attempts: int = DEFAULT_MAX_ATTEMPTS

    _FIELDS = ("spec", "seeds", "sweep", "max_attempts")

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation; ``from_dict`` is its exact inverse."""
        return {
            "spec": self.spec,
            "seeds": None if self.seeds is None else list(self.seeds),
            "sweep": {key: list(values) for key, values in self.sweep.items()},
            "max_attempts": self.max_attempts,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SubmitRequest":
        require_known_keys(data, cls._FIELDS, cls.__name__)
        require_keys(data, ("spec",), cls.__name__)
        spec = data["spec"]
        if not isinstance(spec, dict):
            raise SpecError(f"SubmitRequest.spec must be a dict, got {type(spec).__name__}")
        seeds = data.get("seeds")
        if isinstance(seeds, bool):
            raise SpecError("SubmitRequest.seeds must be an int or a list of ints")
        if isinstance(seeds, int):
            if seeds < 1:
                raise SpecError(f"SubmitRequest.seeds must be >= 1, got {seeds}")
            seeds = list(range(1, seeds + 1))
        elif seeds is not None:
            if not isinstance(seeds, list) or not seeds:
                raise SpecError("SubmitRequest.seeds must be an int or a non-empty list of ints")
            seeds = [int(seed) for seed in seeds]
        sweep_data = data.get("sweep") or {}
        if not isinstance(sweep_data, dict):
            raise SpecError(
                f"SubmitRequest.sweep must be a dict of field -> values, "
                f"got {type(sweep_data).__name__}"
            )
        sweep: Dict[str, List[object]] = {}
        for key, values in sweep_data.items():
            if key not in ScenarioSpec._FIELDS:
                raise SpecError(
                    f"SubmitRequest.sweep field {key!r} is not a ScenarioSpec field; "
                    f"accepted: {sorted(ScenarioSpec._FIELDS)}"
                )
            if key == "seed":
                raise SpecError("sweep seeds with the 'seeds' field, not sweep['seed']")
            if not isinstance(values, list) or not values:
                raise SpecError(f"SubmitRequest.sweep[{key!r}] must be a non-empty list")
            sweep[key] = list(values)
        max_attempts = int(data.get("max_attempts", DEFAULT_MAX_ATTEMPTS))
        if max_attempts < 1:
            raise SpecError(f"SubmitRequest.max_attempts must be >= 1, got {max_attempts}")
        return cls(spec=dict(spec), seeds=seeds, sweep=sweep, max_attempts=max_attempts)

    # ------------------------------------------------------------------
    # Fan-out
    # ------------------------------------------------------------------
    def expand(self) -> List[ScenarioSpec]:
        """The validated ScenarioSpec per child job, in deterministic order.

        Sweep axes are enumerated key-sorted, last axis fastest (the same
        convention as :func:`repro.experiments.parallel.expand_grid`),
        with seeds as the innermost axis.
        """
        axes = [(key, self.sweep[key]) for key in sorted(self.sweep)]
        if self.seeds is not None:
            axes.append(("seed", list(self.seeds)))
        if not axes:
            return [ScenarioSpec.from_dict(dict(self.spec))]
        names = [name for name, _ in axes]
        combos = list(product(*(values for _, values in axes)))
        if len(combos) > MAX_FANOUT:
            raise SpecError(
                f"request fans out into {len(combos)} jobs; the per-request "
                f"ceiling is {MAX_FANOUT}"
            )
        specs: List[ScenarioSpec] = []
        for combo in combos:
            document = dict(self.spec)
            document.update(zip(names, combo))
            specs.append(ScenarioSpec.from_dict(document))
        return specs


def job_payload(store: JobStore, record: JobRecord) -> Dict[str, object]:
    """The ``GET /jobs/{id}`` response body for one record.

    Scenario jobs expose their digest and (when done) the result path;
    group jobs expose per-state child progress instead.
    """
    payload: Dict[str, object] = {
        "job_id": record.job_id,
        "kind": record.kind,
        "state": record.state,
        "digest": record.digest,
        "attempts": record.attempts,
        "max_attempts": record.max_attempts,
        "error": record.error,
        "created_s": record.created_s,
        "finished_s": record.finished_s,
        "quarantined": record.quarantined,
    }
    if record.kind == "group":
        progress = store.group_progress(record)
        payload["children"] = list(record.children)
        payload["progress"] = progress
        if progress["total"] and progress["done"] == progress["total"]:
            payload["state"] = "done"
        elif progress["failed"]:
            payload["state"] = "failed" if (
                progress["done"] + progress["failed"] == progress["total"]
            ) else "queued"
    elif record.state == "done" and record.digest:
        payload["result"] = f"/results/{record.digest}"
    return payload


def error_payload(kind: str, message: str) -> Dict[str, object]:
    """The structured error body every non-2xx response carries."""
    return {"error": {"type": kind, "message": message}}
