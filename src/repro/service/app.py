"""The HTTP face of the simulation service (stdlib ``http.server`` only).

Endpoints::

    POST /jobs              submit a ScenarioSpec (or a seeds/sweep grid)
    GET  /jobs/{id}         job status + progress
    GET  /results/{digest}  cached ScenarioResult payload (canonical JSON)
    GET  /healthz           liveness + store reachability
    GET  /metrics           queue depth, lease count, cache hit/miss, jobs/s

Submissions are validated with the repository's strict ``from_dict``
layer: a malformed body is a structured ``400`` naming the offending
field, never a traceback.  A queue already holding ``max_queue`` waiting
jobs answers ``429`` (backpressure) without enqueueing anything.  A
scenario whose :func:`~repro.experiments.parallel.config_digest` is
already in the shared cache is born ``done`` — the submit itself is the
cache hit.

The request-handling core (:class:`SimulationService`) is plain
functions from parsed input to ``(status, payload)`` pairs, so tests
drive it without sockets; :class:`ServiceHTTPServer` is the thin
``ThreadingHTTPServer`` wrapper the CLI serves.
"""

from __future__ import annotations

import json
import string
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.serialization import SpecError
from repro.service import clock
from repro.service.schemas import SubmitRequest, error_payload, job_payload
from repro.service.store import JobNotFound, JobStore, JobStoreError

#: Default cap on waiting (queued + leased) jobs before submits get 429.
DEFAULT_MAX_QUEUE = 256

#: Default bind address of ``python -m repro.service serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

#: Largest accepted request body, a defensive cap (ScenarioSpec documents
#: are tiny; inline topologies with thousands of nodes still fit easily).
MAX_BODY_BYTES = 8 * 1024 * 1024

_HEX = set(string.hexdigits.lower())

Response = Tuple[int, Dict[str, object]]


class SimulationService:
    """Framework-free request handlers: parsed input -> (status, payload)."""

    def __init__(
        self,
        store: JobStore,
        cache,
        *,
        max_queue: int = DEFAULT_MAX_QUEUE,
    ) -> None:
        self.store = store
        self.cache = cache
        self.max_queue = int(max_queue)
        self.started_monotonic_s = clock.monotonic_s()
        self.jobs_submitted = 0
        self.requests_rejected = 0

    # ------------------------------------------------------------------
    # POST /jobs
    # ------------------------------------------------------------------
    def submit(self, body: bytes) -> Response:
        try:
            document = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, error_payload("ParseError", f"request body is not valid JSON: {exc}")
        try:
            request = SubmitRequest.from_dict(document)
            specs = request.expand()
            jobs: List[Tuple[Dict[str, object], str]] = []
            for spec in specs:
                config = spec.to_config()
                jobs.append((config.to_dict(), self._digest(config)))
        except SpecError as exc:
            return 400, error_payload("SpecError", str(exc))
        except (ValueError, KeyError, TypeError, OSError) as exc:
            # Registry lookups, component parameter validation, trace-file
            # topology loads — all reachable from user-supplied documents.
            return 400, error_payload(type(exc).__name__, str(exc))

        cached = [self.cache.load_raw(digest) is not None for _, digest in jobs]
        fresh = cached.count(False)
        if fresh and self.store.queue_depth() + fresh > self.max_queue:
            self.requests_rejected += 1
            return 429, error_payload(
                "Backpressure",
                f"queue holds {self.store.queue_depth()} job(s); admitting {fresh} "
                f"more would exceed the limit of {self.max_queue} — retry later",
            )

        records = []
        for (config_dict, digest), hit in zip(jobs, cached):
            records.append(
                self.store.submit(
                    config_dict,
                    digest=digest,
                    state="done" if hit else "queued",
                    max_attempts=request.max_attempts,
                )
            )
        self.jobs_submitted += len(records)
        if len(records) == 1:
            return 202, job_payload(self.store, records[0])
        group = self.store.submit(
            None, kind="group", children=[record.job_id for record in records]
        )
        payload = job_payload(self.store, group)
        payload["digests"] = [digest for _, digest in jobs]
        return 202, payload

    @staticmethod
    def _digest(config) -> str:
        from repro.experiments.parallel import config_digest

        return config_digest(config)

    # ------------------------------------------------------------------
    # GET /jobs/{id}, /results/{digest}
    # ------------------------------------------------------------------
    def job_status(self, job_id: str) -> Response:
        try:
            record = self.store.get(job_id)
        except JobNotFound:
            return 404, error_payload("NotFound", f"no job {job_id!r}")
        except JobStoreError as exc:
            return 500, error_payload("StoreError", str(exc))
        return 200, job_payload(self.store, record)

    def result(self, digest: str) -> Response:
        if not digest or any(ch not in _HEX for ch in digest.lower()):
            return 400, error_payload("BadDigest", f"{digest!r} is not a hex digest")
        data = self.cache.load_raw(digest)
        if data is None:
            return 404, error_payload(
                "NotFound",
                f"no cached result for digest {digest}; submit its config first",
            )
        return 200, data

    # ------------------------------------------------------------------
    # GET /healthz, /metrics
    # ------------------------------------------------------------------
    def healthz(self) -> Response:
        try:
            depth = self.store.queue_depth()
        except OSError as exc:
            return 500, error_payload("StoreError", f"job store unreachable: {exc}")
        return 200, {"status": "ok", "store": str(self.store.root), "queue_depth": depth}

    def metrics(self) -> Response:
        counts = self.store.counts()
        uptime = max(clock.monotonic_s() - self.started_monotonic_s, 1e-9)
        return 200, {
            # Same definition as healthz and the 429 gate: waiting
            # *scenario* jobs (group parents never occupy a worker).
            "queue_depth": self.store.queue_depth(),
            "jobs": {state: counts[state] for state in ("queued", "leased", "done", "failed")},
            "quarantined": counts["quarantined"],
            "leases": counts["leases"],
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "quarantined": self.cache.quarantined,
            },
            "submitted": self.jobs_submitted,
            "rejected": self.requests_rejected,
            "uptime_s": uptime,
            "jobs_per_s": counts["done"] / uptime,
        }

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, method: str, path: str, body: bytes = b"") -> Response:
        """Dispatch one request; the transport-agnostic entry point."""
        parts = [part for part in path.split("/") if part]
        if method == "POST" and parts == ["jobs"]:
            return self.submit(body)
        if method == "GET" and len(parts) == 2 and parts[0] == "jobs":
            return self.job_status(parts[1])
        if method == "GET" and len(parts) == 2 and parts[0] == "results":
            return self.result(parts[1])
        if method == "GET" and parts == ["healthz"]:
            return self.healthz()
        if method == "GET" and parts == ["metrics"]:
            return self.metrics()
        return 404, error_payload("NotFound", f"no route {method} {path}")


class _Handler(BaseHTTPRequestHandler):
    """Thin adapter from ``http.server`` to :meth:`SimulationService.route`."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    def _respond(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> Optional[bytes]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self._respond(
                413,
                error_payload("TooLarge", f"request body exceeds {MAX_BODY_BYTES} bytes"),
            )
            return None
        return self.rfile.read(length) if length else b""

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        body = self._body()
        if body is None:
            return
        status, payload = self.server.service.route("POST", self.path, body)
        self._respond(status, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        status, payload = self.server.service.route("GET", self.path)
        self._respond(status, payload)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`SimulationService`."""

    daemon_threads = True

    def __init__(self, address, service: SimulationService, *, verbose: bool = False) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose


def make_server(
    service: SimulationService,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    verbose: bool = False,
) -> ServiceHTTPServer:
    """Bind (but do not start) the service's HTTP server; port 0 = ephemeral."""
    return ServiceHTTPServer((host, port), service, verbose=verbose)
