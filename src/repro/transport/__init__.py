"""Transport layer: TCP Reno, UDP and the per-node flow dispatcher."""

from repro.transport.host import TransportHost
from repro.transport.tcp import TcpAck, TcpSegment, TcpSender, TcpSink
from repro.transport.udp import UdpDatagram, UdpReceiver, UdpSender

__all__ = [
    "TransportHost",
    "TcpAck",
    "TcpSegment",
    "TcpSender",
    "TcpSink",
    "UdpDatagram",
    "UdpReceiver",
    "UdpSender",
]
