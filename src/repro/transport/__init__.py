"""Transport layer: pluggable TCP congestion control, UDP and the flow dispatcher."""

from repro.transport.congestion import (
    CongestionController,
    CubicController,
    NewRenoController,
    RenoController,
    TahoeController,
)
from repro.transport.dropscript import DropScript
from repro.transport.host import TransportHost
from repro.transport.registry import TRANSPORT_SCHEMES, build_controller
from repro.transport.tcp import TcpAck, TcpSegment, TcpSender, TcpSink
from repro.transport.udp import UdpDatagram, UdpReceiver, UdpSender

__all__ = [
    "CongestionController",
    "CubicController",
    "DropScript",
    "NewRenoController",
    "RenoController",
    "TahoeController",
    "TRANSPORT_SCHEMES",
    "TransportHost",
    "TcpAck",
    "TcpSegment",
    "TcpSender",
    "TcpSink",
    "UdpDatagram",
    "UdpReceiver",
    "UdpSender",
    "build_controller",
]
