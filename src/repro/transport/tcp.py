"""TCP at packet granularity (the NS-2 ``Agent/TCP`` + ``Agent/TCPSink`` model).

The paper's motivation hinges on how TCP's congestion control reacts to
the MAC layer underneath it:

* packet **re-ordering** (preExOR / MCExOR) produces duplicate ACKs, which
  trigger fast retransmit and halve the congestion window even though
  nothing was lost;
* packet **loss** (queue overflow at the 50-packet interface queue, or MAC
  retry exhaustion on bad links) triggers fast retransmit or — when the
  whole window is lost — a retransmission timeout and slow start;
* MAC-level **delay** inflates the RTT and therefore the pipe the window
  has to fill.

This module models exactly those mechanisms.  *Which* congestion control
responds is pluggable: the sender delegates window policy to a
:class:`~repro.transport.congestion.CongestionController` (Reno by
default, bit-identical to the original hard-coded machine; Tahoe, NewReno
and Cubic via ``TRANSPORT_SCHEMES``), while keeping the mechanics to
itself — sequence/window bookkeeping, duplicate-ACK counting at the wire,
Jacobson/Karn RTO estimation with exponential backoff, and go-back-N
resend after a timeout.  The cumulative-ACK sink acknowledges every
arriving segment (so out-of-order arrivals immediately generate duplicate
ACKs) and tracks re-ordering and goodput statistics.  Segments are
counted in MSS-sized packets, like NS-2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.packet import Packet
from repro.sim.engine import Event, Simulator
from repro.sim.units import ms, ns_to_seconds, seconds
from repro.transport.congestion import CongestionController, RenoController

#: TCP acknowledgement packet size on the wire (bytes), as used in the paper's NS-2 setup.
TCP_ACK_BYTES = 40


@dataclass(slots=True)
class TcpSegment:
    """Transport payload attached to a data packet."""

    flow_id: int
    seq: int
    is_retransmission: bool = False


@dataclass(slots=True)
class TcpAck:
    """Transport payload attached to an ACK packet (cumulative acknowledgement)."""

    flow_id: int
    ack: int  # next expected segment sequence number


@dataclass(slots=True)
class TcpSenderStats:
    """Counters exposed by a TCP sender."""

    segments_sent: int = 0
    retransmissions: int = 0
    fast_retransmits: int = 0
    timeouts: int = 0
    rto_backoffs: int = 0
    acks_received: int = 0
    duplicate_acks: int = 0


@dataclass(slots=True)
class TcpSinkStats:
    """Counters exposed by a TCP sink."""

    segments_received: int = 0
    duplicate_segments: int = 0
    reordered_segments: int = 0
    unique_bytes: int = 0
    in_order_bytes: int = 0
    acks_sent: int = 0
    first_arrival_ns: Optional[int] = None
    last_arrival_ns: Optional[int] = None


class TcpSender:
    """Reliable sender driving MSS-sized segments under a pluggable controller."""

    __slots__ = (
        "sim",
        "host",
        "flow_id",
        "src",
        "dst",
        "mss_bytes",
        "awnd",
        "stats",
        "controller",
        "next_seq",
        "highest_acked",
        "_app_bytes_available",
        "_infinite_source",
        "_send_timestamps",
        "_resend_next",
        "_recover_until",
        "srtt_ns",
        "rttvar_ns",
        "rto_ns",
        "min_rto_ns",
        "max_rto_ns",
        "_rto_event",
        "_backoff",
        "_completion_callbacks",
    )

    def __init__(
        self,
        sim: Simulator,
        host: "TransportHost",
        flow_id: int,
        dst: int,
        mss_bytes: int = 1000,
        awnd_segments: int = 64,
        initial_cwnd: float = 2.0,
        min_rto_ns: int = ms(200),
        initial_rto_ns: int = seconds(1),
        max_rto_ns: int = seconds(10),
        controller: Optional[CongestionController] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.src = host.node_id
        self.dst = dst
        self.mss_bytes = mss_bytes
        self.awnd = awnd_segments
        self.stats = TcpSenderStats()
        # Congestion state lives in the controller (Reno unless configured).
        self.controller = (controller if controller is not None else RenoController()).attach(
            awnd_segments, initial_cwnd
        )
        # Sequence state (in segments)
        self.next_seq = 0
        self.highest_acked = 0
        self._app_bytes_available = 0
        self._infinite_source = False
        self._send_timestamps: Dict[int, int] = {}
        # Go-back-N recovery after a timeout: everything below ``_recover_until``
        # that is still unacknowledged is resent in order, starting at
        # ``_resend_next``, before any new data goes out.
        self._resend_next = 0
        self._recover_until = 0
        # RTO state
        self.srtt_ns: Optional[int] = None
        self.rttvar_ns: Optional[int] = None
        self.rto_ns = initial_rto_ns
        self.min_rto_ns = min_rto_ns
        self.max_rto_ns = max_rto_ns
        self._rto_event: Optional[Event] = None
        self._backoff = 1
        self._completion_callbacks: List[Callable[[], None]] = []
        host.register_flow(flow_id, self._on_packet)

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def send_forever(self) -> None:
        """Model an infinite (FTP-like) backlog."""
        self._infinite_source = True
        self._try_send()

    def send_bytes(self, nbytes: int) -> None:
        """Add ``nbytes`` of application data to the send buffer."""
        if nbytes <= 0:
            return
        self._app_bytes_available += int(nbytes)
        self._try_send()

    def on_transfer_complete(self, callback: Callable[[], None]) -> None:
        """Register a callback fired when every queued byte has been acknowledged."""
        self._completion_callbacks.append(callback)

    def reset_stats(self) -> None:
        """Zero the counters while keeping congestion and sequence state.

        Called at the warmup/measurement boundary so retransmission and
        timeout counters cover only the measurement window.
        """
        self.stats = TcpSenderStats()

    @property
    def transfer_complete(self) -> bool:
        """True when a finite transfer has been fully acknowledged."""
        if self._infinite_source:
            return False
        return self._app_bytes_available == 0 and self.highest_acked >= self.next_seq

    @property
    def flight_size(self) -> int:
        """Segments in flight (sent but not cumulatively acknowledged)."""
        return self.next_seq - self.highest_acked

    @property
    def window(self) -> int:
        """Usable window in segments."""
        return int(min(self.controller.cwnd, float(self.awnd)))

    # ------------------------------------------------------------------
    # Congestion state (delegated to the controller, read-only)
    # ------------------------------------------------------------------
    @property
    def cwnd(self) -> float:
        """Congestion window in segments (controller state)."""
        return self.controller.cwnd

    @property
    def ssthresh(self) -> float:
        """Slow-start threshold in segments (controller state)."""
        return self.controller.ssthresh

    @property
    def dupacks(self) -> int:
        """Consecutive duplicate ACKs seen since the last new ACK."""
        return self.controller.dupacks

    @property
    def in_fast_recovery(self) -> bool:
        """True while the controller is in a fast-recovery episode."""
        return self.controller.in_recovery

    @property
    def recover(self) -> int:
        """Highest sequence outstanding when the current recovery began."""
        return self.controller.recover

    # ------------------------------------------------------------------
    # Sending machinery
    # ------------------------------------------------------------------
    def _segments_available(self) -> int:
        if self._infinite_source:
            return 1 << 30
        return -(-self._app_bytes_available // self.mss_bytes) if self._app_bytes_available else 0

    def _try_send(self) -> None:
        limit = self.highest_acked + max(self.window, 1)
        # Post-timeout go-back-N: re-send the outstanding window in order
        # before transmitting anything new (mirrors slow-start retransmission
        # after an RTO in real stacks; without it a second hole would stall
        # the connection until another timeout).
        while self._resend_next < min(self._recover_until, limit):
            if self._resend_next >= self.highest_acked:
                self._transmit_segment(self._resend_next, is_retransmission=True)
            self._resend_next += 1
        while self.next_seq < limit:
            if not self._infinite_source:
                if self._app_bytes_available <= 0:
                    break
                self._app_bytes_available = max(0, self._app_bytes_available - self.mss_bytes)
            self._transmit_segment(self.next_seq, is_retransmission=False)
            self.next_seq += 1

    def _transmit_segment(self, seq: int, is_retransmission: bool) -> None:
        segment = TcpSegment(flow_id=self.flow_id, seq=seq, is_retransmission=is_retransmission)
        packet = Packet(
            src=self.src,
            dst=self.dst,
            size_bytes=self.mss_bytes,
            flow_id=self.flow_id,
            seq=seq,
            kind="tcp-data",
            created_ns=self.sim.now,
            payload=segment,
        )
        self.stats.segments_sent += 1
        if is_retransmission:
            self.stats.retransmissions += 1
            self._send_timestamps.pop(seq, None)  # Karn: never time retransmitted segments
        else:
            self._send_timestamps[seq] = self.sim.now
        self.host.send(packet)
        if self._rto_event is None:
            self._arm_rto()

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def _on_packet(self, packet: Packet) -> None:
        payload = packet.payload
        if not isinstance(payload, TcpAck):
            return
        self.stats.acks_received += 1
        ack = payload.ack
        if ack > self.highest_acked:
            self._on_new_ack(ack)
        elif ack == self.highest_acked:
            self._on_duplicate_ack(ack)
        self._try_send()
        self._check_completion()

    def _on_new_ack(self, ack: int) -> None:
        newly_acked = ack - self.highest_acked
        self._sample_rtt(ack)
        self.highest_acked = ack
        self._backoff = 1
        if self._resend_next < ack:
            self._resend_next = ack
        if self.controller.on_ack(ack, newly_acked, self.flight_size, self.sim.now, self.srtt_ns):
            # Partial ACK during recovery: retransmit the next hole.
            self._transmit_segment(self.highest_acked, is_retransmission=True)
        if self.flight_size > 0:
            self._arm_rto(restart=True)
        else:
            self._cancel_rto()

    def _on_duplicate_ack(self, ack: int) -> None:
        self.stats.duplicate_acks += 1
        if self.flight_size == 0:
            return
        if self.controller.on_dupack(self.flight_size, self.next_seq, self.sim.now, self.srtt_ns):
            self.stats.fast_retransmits += 1
            self._transmit_segment(self.highest_acked, is_retransmission=True)

    def _sample_rtt(self, ack: int) -> None:
        # Use the oldest newly-acknowledged segment that was never retransmitted.
        sample: Optional[int] = None
        for seq in range(self.highest_acked, ack):
            sent_at = self._send_timestamps.pop(seq, None)
            if sample is None and sent_at is not None:
                sample = self.sim.now - sent_at
        if sample is None:
            return
        if self.srtt_ns is None:
            self.srtt_ns = sample
            self.rttvar_ns = sample // 2
        else:
            delta = abs(sample - self.srtt_ns)
            self.rttvar_ns = int(0.75 * self.rttvar_ns + 0.25 * delta)
            self.srtt_ns = int(0.875 * self.srtt_ns + 0.125 * sample)
        rto = self.srtt_ns + 4 * max(self.rttvar_ns, 1)
        self.rto_ns = min(max(rto, self.min_rto_ns), self.max_rto_ns)

    # ------------------------------------------------------------------
    # Retransmission timeout
    # ------------------------------------------------------------------
    def _arm_rto(self, restart: bool = False) -> None:
        if restart:
            self._cancel_rto()
        if self._rto_event is None:
            self._rto_event = self.sim.schedule(self.rto_ns * self._backoff, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.flight_size == 0:
            return
        self.stats.timeouts += 1
        if self._backoff > 1:
            self.stats.rto_backoffs += 1
        self.controller.on_timeout(self.flight_size, self.sim.now)
        self._backoff = min(self._backoff * 2, 64)
        self._recover_until = self.next_seq
        self._resend_next = self.highest_acked + 1
        self._transmit_segment(self.highest_acked, is_retransmission=True)
        self._arm_rto(restart=True)

    def _check_completion(self) -> None:
        if not self._completion_callbacks or not self.transfer_complete:
            return
        callbacks, self._completion_callbacks = self._completion_callbacks, []
        for callback in callbacks:
            callback()


class TcpSink:
    """Cumulative-ACK receiver with re-ordering and goodput accounting."""

    __slots__ = (
        "sim",
        "host",
        "flow_id",
        "peer",
        "mss_bytes",
        "ack_bytes",
        "stats",
        "next_expected",
        "_out_of_order",
        "_highest_seen",
        "_in_order_base",
    )

    def __init__(
        self,
        sim: Simulator,
        host: "TransportHost",
        flow_id: int,
        peer: int,
        mss_bytes: int = 1000,
        ack_bytes: int = TCP_ACK_BYTES,
    ) -> None:
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.peer = peer
        self.mss_bytes = mss_bytes
        self.ack_bytes = ack_bytes
        self.stats = TcpSinkStats()
        self.next_expected = 0
        self._out_of_order: set[int] = set()
        self._highest_seen = -1
        self._in_order_base = 0
        host.register_flow(flow_id, self._on_packet)

    def reset_stats(self) -> None:
        """Zero the counters while keeping protocol state (sequence tracking).

        Called at the warmup/measurement boundary so that goodput and
        re-ordering statistics cover only the measurement window.
        """
        self.stats = TcpSinkStats()
        self._in_order_base = self.next_expected

    def _on_packet(self, packet: Packet) -> None:
        payload = packet.payload
        if not isinstance(payload, TcpSegment):
            return
        now = self.sim.now
        if self.stats.first_arrival_ns is None:
            self.stats.first_arrival_ns = now
        self.stats.last_arrival_ns = now
        seq = payload.seq
        self.stats.segments_received += 1
        if seq < self.next_expected or seq in self._out_of_order:
            self.stats.duplicate_segments += 1
        else:
            self.stats.unique_bytes += packet.size_bytes
            if seq < self._highest_seen:
                self.stats.reordered_segments += 1
            self._highest_seen = max(self._highest_seen, seq)
            if seq == self.next_expected:
                self.next_expected += 1
                while self.next_expected in self._out_of_order:
                    self._out_of_order.discard(self.next_expected)
                    self.next_expected += 1
            else:
                self._out_of_order.add(seq)
        self.stats.in_order_bytes = (self.next_expected - self._in_order_base) * self.mss_bytes
        self._send_ack()

    def _send_ack(self) -> None:
        ack_payload = TcpAck(flow_id=self.flow_id, ack=self.next_expected)
        packet = Packet(
            src=self.host.node_id,
            dst=self.peer,
            size_bytes=self.ack_bytes,
            flow_id=self.flow_id,
            seq=self.next_expected,
            kind="tcp-ack",
            created_ns=self.sim.now,
            payload=ack_payload,
        )
        self.stats.acks_sent += 1
        self.host.send(packet)

    # ------------------------------------------------------------------
    # Metrics helpers
    # ------------------------------------------------------------------
    def goodput_bps(self, duration_ns: int) -> float:
        """Unique received bytes per second of simulated time, in bits/s."""
        if duration_ns <= 0:
            return 0.0
        return self.stats.unique_bytes * 8 / ns_to_seconds(duration_ns)

    @property
    def reordering_ratio(self) -> float:
        """Fraction of received segments that arrived behind a later segment."""
        if self.stats.segments_received == 0:
            return 0.0
        return self.stats.reordered_segments / self.stats.segments_received
