"""Deterministic scripted fault injection at the transport/network seam.

The loss-recovery trace tests need to drive a congestion controller
through *named* episodes — "drop segment 7 once", "drop the whole
window", "delay segment 3 past its successors" — with nothing stochastic
in the loop.  A :class:`DropScript` attached to a
:class:`~repro.transport.host.TransportHost` intercepts every outgoing
packet and assigns it a fate:

* **pass** — hand the packet to the network layer unchanged;
* **drop** — swallow it silently (the network never sees it), exactly
  like a queue-overflow or retry-exhaustion loss;
* **delay** — hold it for a scripted number of nanoseconds, then send it,
  which re-orders it behind later packets without losing anything (the
  preExOR/MCExOR signature the paper measures).

Rules are keyed by packet ``kind`` and ``seq`` with an occurrence budget,
so "drop the first copy of segment 7 but let the retransmission through"
is ``script.drop(7)`` — the second transmission of seq 7 no longer
matches the exhausted rule.  Scripts are pure bookkeeping driven by the
simulation clock; attaching one never perturbs runs that do not use it
(the hot-path cost when absent is a single ``is None`` check).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.packet import Packet

#: Fate returned by :meth:`DropScript.fate` for a packet to forward unchanged.
PASS = 0
#: Fate returned by :meth:`DropScript.fate` for a packet to swallow.
DROP = -1


class DropScript:
    """Scripted per-packet fates (drop / delay / pass) for one host's sends."""

    __slots__ = ("_rules", "dropped", "delayed", "passed")

    def __init__(self) -> None:
        # (kind, seq) -> list of pending fates, consumed front-first; each
        # entry is (fate, remaining_occurrences).
        self._rules: Dict[Tuple[str, int], List[List[int]]] = {}
        self.dropped = 0
        self.delayed = 0
        self.passed = 0

    # ------------------------------------------------------------------
    # Script construction
    # ------------------------------------------------------------------
    def drop(self, seq: int, kind: str = "tcp-data", times: int = 1) -> "DropScript":
        """Drop the next ``times`` packets of ``kind`` carrying ``seq``."""
        if times > 0:
            self._rules.setdefault((kind, seq), []).append([DROP, times])
        return self

    def drop_range(self, start: int, stop: int, kind: str = "tcp-data", times: int = 1) -> "DropScript":
        """Drop sequences ``start`` (inclusive) through ``stop`` (exclusive)."""
        for seq in range(start, stop):
            self.drop(seq, kind=kind, times=times)
        return self

    def delay(self, seq: int, delay_ns: int, kind: str = "tcp-data", times: int = 1) -> "DropScript":
        """Hold the next ``times`` packets of ``kind``/``seq`` for ``delay_ns``."""
        if delay_ns <= 0:
            raise ValueError(f"delay_ns must be positive, got {delay_ns}")
        if times > 0:
            self._rules.setdefault((kind, seq), []).append([int(delay_ns), times])
        return self

    # ------------------------------------------------------------------
    # Consumption (called by TransportHost.send)
    # ------------------------------------------------------------------
    def fate(self, packet: Packet) -> int:
        """Return ``DROP`` (-1), a positive delay in ns, or ``PASS`` (0)."""
        pending = self._rules.get((packet.kind, packet.seq))
        if not pending:
            self.passed += 1
            return PASS
        entry = pending[0]
        entry[1] -= 1
        if entry[1] <= 0:
            pending.pop(0)
        if entry[0] == DROP:
            self.dropped += 1
            return DROP
        self.delayed += 1
        return entry[0]

    @property
    def exhausted(self) -> bool:
        """True once every scripted fate has been consumed."""
        return not any(self._rules.values())
