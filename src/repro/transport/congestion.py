"""Pluggable TCP congestion control: the state machines behind the senders.

The paper's central claim is that MAC-induced re-ordering, loss and delay
interact with *TCP's congestion control* — yet which congestion control?
The seed hard-coded one responder (the Reno-with-partial-ACK machine in
:class:`~repro.transport.tcp.TcpSender`).  This module extracts that
machine behind a :class:`CongestionController` seam and adds the classic
alternatives, so "does RIPPLE's aggregation win survive Cubic?" becomes a
runnable scenario instead of an open question.

The seam is deliberately narrow.  A controller owns exactly the
congestion state — ``cwnd``/``ssthresh`` in MSS-sized segments, the
duplicate-ACK count, and the recovery marker — and is driven by three
sender events:

* :meth:`~CongestionController.on_ack` — a cumulative ACK advanced;
  returns True when the sender should retransmit the next hole
  (partial-ACK recovery);
* :meth:`~CongestionController.on_dupack` — a duplicate ACK arrived
  (the sender has already filtered zero-flight echoes); returns True
  when the sender should fast-retransmit *now*;
* :meth:`~CongestionController.on_timeout` — the retransmission timer
  fired (the sender keeps RTO estimation, exponential backoff and
  go-back-N resending to itself — those are timer mechanics, not
  congestion policy).

Everything a controller sees is simulation state (``now_ns`` is the
event-loop clock, never the host's), so runs stay deterministic and
cacheable; per-flow state is simply per-instance state, since every
:class:`~repro.transport.tcp.TcpSender` owns one controller.

:class:`RenoController` reproduces the seed machine bit-for-bit — same
expressions, same branch order — which is what keeps default-transport
scenario results byte-identical to pre-registry builds (tested in
``tests/transport``).
"""

from __future__ import annotations

from typing import Optional

#: Duplicate-ACK count that triggers fast retransmit (RFC 5681).
DUPACK_THRESHOLD = 3


class CongestionController:
    """Base congestion-control state machine (segment-granular, like NS-2).

    Subclasses override the three event hooks; the base class carries the
    shared state and the ``attach`` handshake the sender performs at
    construction time (``ssthresh`` starts at the advertised window, the
    classic "slow start until the receiver limit" initialisation).
    """

    __slots__ = ("cwnd", "ssthresh", "dupacks", "in_recovery", "recover")

    #: Registry name, set by subclasses (used in reprs and result labels).
    name = "base"

    def __init__(self) -> None:
        self.cwnd = 1.0
        self.ssthresh = float("inf")
        self.dupacks = 0
        self.in_recovery = False
        self.recover = 0

    def attach(self, awnd_segments: int, initial_cwnd: float) -> "CongestionController":
        """Initialise the window state for one flow; returns self."""
        self.cwnd = float(initial_cwnd)
        self.ssthresh = float(awnd_segments)
        self.dupacks = 0
        self.in_recovery = False
        self.recover = 0
        return self

    # ------------------------------------------------------------------
    # Sender events
    # ------------------------------------------------------------------
    def on_ack(
        self,
        ack: int,
        newly_acked: int,
        flight_size: int,
        now_ns: int,
        srtt_ns: Optional[int],
    ) -> bool:
        """A new cumulative ACK; True = retransmit the next hole (partial ACK)."""
        raise NotImplementedError

    def on_dupack(
        self,
        flight_size: int,
        next_seq: int,
        now_ns: int,
        srtt_ns: Optional[int],
    ) -> bool:
        """A duplicate ACK with data in flight; True = fast-retransmit now."""
        raise NotImplementedError

    def on_timeout(self, flight_size: int, now_ns: int) -> None:
        """The retransmission timer fired; collapse to slow start."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(cwnd={self.cwnd:.2f}, ssthresh={self.ssthresh:.2f}, "
            f"dupacks={self.dupacks}, in_recovery={self.in_recovery})"
        )


class RenoController(CongestionController):
    """The seed sender's machine: Reno fast recovery with partial-ACK retention.

    This is *exactly* the congestion logic that lived inline in
    ``TcpSender`` before the registry existed — slow start, congestion
    avoidance, triple-dupACK fast retransmit, window inflation during
    recovery, and the seed's NewReno-flavoured partial-ACK handling
    (retransmit the next hole, deflate no lower than ``ssthresh``).  The
    expressions and branch order are preserved verbatim so the default
    transport stays bit-identical to pre-registry builds; by-the-RFC
    NewReno (pure deflation, burst-avoiding exit) is the separate
    :class:`NewRenoController`.
    """

    __slots__ = ()

    name = "reno"

    def on_ack(self, ack, newly_acked, flight_size, now_ns, srtt_ns) -> bool:
        self.dupacks = 0
        if self.in_recovery:
            if ack > self.recover:
                # Full recovery: deflate the window back to ssthresh.
                self.in_recovery = False
                self.cwnd = self.ssthresh
                return False
            # Partial ACK (NewReno-style): retransmit the next hole and
            # stay in recovery, deflating by the amount acknowledged.
            self.cwnd = max(self.ssthresh, self.cwnd - newly_acked + 1)
            return True
        if self.cwnd < self.ssthresh:
            self.cwnd += newly_acked  # slow start
        else:
            self.cwnd += newly_acked / self.cwnd  # congestion avoidance
        return False

    def on_dupack(self, flight_size, next_seq, now_ns, srtt_ns) -> bool:
        self.dupacks += 1
        if self.in_recovery:
            self.cwnd += 1.0  # window inflation while the hole persists
            return False
        if self.dupacks == DUPACK_THRESHOLD:
            self.ssthresh = max(flight_size / 2.0, 2.0)
            self.in_recovery = True
            self.recover = next_seq - 1
            self.cwnd = self.ssthresh + 3.0
            return True
        return False

    def on_timeout(self, flight_size, now_ns) -> None:
        self.ssthresh = max(flight_size / 2.0, 2.0)
        self.cwnd = 1.0
        self.dupacks = 0
        self.in_recovery = False


class TahoeController(CongestionController):
    """TCP Tahoe: fast retransmit, no fast recovery — every loss slow-starts.

    Three duplicate ACKs still trigger an immediate retransmission of the
    hole, but instead of inflating a halved window Tahoe collapses
    ``cwnd`` to one segment and climbs back through slow start (the
    pre-1990 behaviour Reno was invented to fix).  Under MAC-induced
    *re-ordering* this is the worst case the paper gestures at: a
    spurious fast retransmit costs a full slow-start epoch, not a
    halving.
    """

    __slots__ = ()

    name = "tahoe"

    def on_ack(self, ack, newly_acked, flight_size, now_ns, srtt_ns) -> bool:
        self.dupacks = 0
        if self.cwnd < self.ssthresh:
            self.cwnd += newly_acked  # slow start
        else:
            self.cwnd += newly_acked / self.cwnd  # congestion avoidance
        return False

    def on_dupack(self, flight_size, next_seq, now_ns, srtt_ns) -> bool:
        self.dupacks += 1
        if self.dupacks == DUPACK_THRESHOLD:
            self.ssthresh = max(flight_size / 2.0, 2.0)
            self.cwnd = 1.0
            return True
        return False

    def on_timeout(self, flight_size, now_ns) -> None:
        self.ssthresh = max(flight_size / 2.0, 2.0)
        self.cwnd = 1.0
        self.dupacks = 0


class NewRenoController(CongestionController):
    """NewReno per RFC 6582: partial-ACK retention with pure deflation.

    Differs from :class:`RenoController` (the seed machine) in the two
    places the RFC tightened: a partial ACK deflates the window by
    exactly the amount acknowledged plus one segment — no ``ssthresh``
    floor, so a long recovery episode keeps draining — and full recovery
    exits with ``min(ssthresh, flight + 1)`` segments (the RFC's
    burst-avoidance option), not a flat ``ssthresh``.
    """

    __slots__ = ()

    name = "newreno"

    def on_ack(self, ack, newly_acked, flight_size, now_ns, srtt_ns) -> bool:
        self.dupacks = 0
        if self.in_recovery:
            if ack > self.recover:
                # Full ACK: RFC 6582 option 1 exit avoids a deflation burst.
                self.in_recovery = False
                self.cwnd = min(self.ssthresh, float(flight_size) + 1.0)
                return False
            # Partial ACK: deflate by the amount acked, add back one MSS,
            # retransmit the next hole, stay in recovery.
            self.cwnd = max(self.cwnd - newly_acked + 1.0, 1.0)
            return True
        if self.cwnd < self.ssthresh:
            self.cwnd += newly_acked  # slow start
        else:
            self.cwnd += newly_acked / self.cwnd  # congestion avoidance
        return False

    def on_dupack(self, flight_size, next_seq, now_ns, srtt_ns) -> bool:
        self.dupacks += 1
        if self.in_recovery:
            self.cwnd += 1.0
            return False
        if self.dupacks == DUPACK_THRESHOLD:
            self.ssthresh = max(flight_size / 2.0, 2.0)
            self.in_recovery = True
            self.recover = next_seq - 1
            self.cwnd = self.ssthresh + 3.0
            return True
        return False

    def on_timeout(self, flight_size, now_ns) -> None:
        self.ssthresh = max(flight_size / 2.0, 2.0)
        self.cwnd = 1.0
        self.dupacks = 0
        self.in_recovery = False


class CubicController(CongestionController):
    """CUBIC (RFC 8312): time-based window growth with fast convergence.

    Congestion avoidance grows the window along ``W(t) = C·(t−K)³ +
    W_max`` — a function of *elapsed time since the last loss epoch*, not
    of ACK count — so long-RTT multi-hop paths are not starved relative
    to short ones.  ``t`` is simulation time (``now_ns`` from the event
    loop; no wall clock touches the hot path), which keeps Cubic runs as
    deterministic and cacheable as every other scheme.  The standard
    companions are included: *fast convergence* (a flow that lost ground
    since its last W_max concedes bandwidth to newcomers by shrinking its
    recorded plateau) and the *TCP-friendly region* (the window never
    drops below what an AIMD flow with the same β would achieve, computed
    from the smoothed RTT).  Loss reaction is the multiplicative-decrease
    β (default 0.7) with Reno-structured fast recovery around it.
    """

    __slots__ = ("c", "beta", "fast_convergence", "w_max", "_epoch_start_ns", "_k", "_origin", "_w_est")

    name = "cubic"

    def __init__(self, c: float = 0.4, beta: float = 0.7, fast_convergence: bool = True) -> None:
        super().__init__()
        self.c = float(c)
        self.beta = float(beta)
        self.fast_convergence = bool(fast_convergence)
        self.w_max = 0.0
        self._epoch_start_ns = -1
        self._k = 0.0
        self._origin = 0.0
        self._w_est = 0.0

    def attach(self, awnd_segments: int, initial_cwnd: float) -> "CubicController":
        super().attach(awnd_segments, initial_cwnd)
        self.w_max = 0.0
        self._epoch_start_ns = -1
        return self

    # ------------------------------------------------------------------
    # Loss reaction shared by fast retransmit and RTO
    # ------------------------------------------------------------------
    def _register_loss(self) -> None:
        if self.fast_convergence and self.cwnd < self.w_max:
            # Losing ground since the last plateau: release bandwidth
            # faster so competing (newer) flows converge.
            self.w_max = self.cwnd * (2.0 - self.beta) / 2.0
        else:
            self.w_max = self.cwnd
        self.ssthresh = max(self.cwnd * self.beta, 2.0)
        self._epoch_start_ns = -1  # new cubic epoch starts at the next ACK

    def _start_epoch(self, now_ns: int) -> None:
        self._epoch_start_ns = now_ns
        if self.w_max > self.cwnd:
            # K: time to climb back to the previous plateau.
            self._k = ((self.w_max - self.cwnd) / self.c) ** (1.0 / 3.0)
            self._origin = self.w_max
        else:
            self._k = 0.0
            self._origin = self.cwnd
        self._w_est = self.cwnd

    def on_ack(self, ack, newly_acked, flight_size, now_ns, srtt_ns) -> bool:
        self.dupacks = 0
        if self.in_recovery:
            if ack > self.recover:
                self.in_recovery = False
                self.cwnd = self.ssthresh
                return False
            self.cwnd = max(self.ssthresh, self.cwnd - newly_acked + 1.0)
            return True
        if self.cwnd < self.ssthresh:
            self.cwnd += newly_acked  # slow start
            return False
        if self._epoch_start_ns < 0:
            self._start_epoch(now_ns)
        t_s = (now_ns - self._epoch_start_ns) / 1e9
        rtt_s = (srtt_ns / 1e9) if srtt_ns else 0.0
        # Target the cubic curve one RTT ahead, per the RFC's pacing rule.
        offset = t_s + rtt_s - self._k
        target = self._origin + self.c * offset * offset * offset
        # TCP-friendly region: the AIMD window an equivalent Reno flow
        # with multiplicative decrease beta would have grown by now.
        self._w_est += 3.0 * (1.0 - self.beta) / (1.0 + self.beta) * (newly_acked / self.cwnd)
        if target < self._w_est:
            target = self._w_est
        if target > self.cwnd:
            # Standard per-ACK pacing: close 1/cwnd of the gap per segment.
            self.cwnd += (target - self.cwnd) / self.cwnd * newly_acked
        else:
            # At or above the curve (concave plateau): creep, don't stall.
            self.cwnd += 0.01 * newly_acked / self.cwnd
        return False

    def on_dupack(self, flight_size, next_seq, now_ns, srtt_ns) -> bool:
        self.dupacks += 1
        if self.in_recovery:
            self.cwnd += 1.0
            return False
        if self.dupacks == DUPACK_THRESHOLD:
            self._register_loss()
            self.in_recovery = True
            self.recover = next_seq - 1
            self.cwnd = self.ssthresh + 3.0
            return True
        return False

    def on_timeout(self, flight_size, now_ns) -> None:
        self._register_loss()
        self.cwnd = 1.0
        self.dupacks = 0
        self.in_recovery = False
