"""Minimal UDP endpoints.

VoIP streams (Section IV-E) and the saturating "hidden" background flows
(Figs. 5(b), 10 and 12) are carried over UDP: no retransmission, no
congestion control, just datagrams whose delivery and delay statistics
are recorded at the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.units import ns_to_seconds


@dataclass(slots=True)
class UdpDatagram:
    """Transport payload attached to a UDP packet."""

    flow_id: int
    seq: int


@dataclass(slots=True)
class UdpStats:
    """Sender/receiver counters for one UDP flow."""

    sent: int = 0
    sent_bytes: int = 0
    received: int = 0
    received_bytes: int = 0
    duplicates: int = 0
    delays_ns: List[int] = field(default_factory=list)


class UdpSender:
    """Datagram source for one flow."""

    __slots__ = ("sim", "host", "flow_id", "dst", "stats", "_next_seq")

    def __init__(self, sim: Simulator, host: "TransportHost", flow_id: int, dst: int) -> None:
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.dst = dst
        self.stats = UdpStats()
        self._next_seq = 0

    def reset_stats(self) -> None:
        """Zero the counters (sequence numbering continues where it was)."""
        self.stats = UdpStats()

    def send(self, size_bytes: int) -> Packet:
        """Emit one datagram of ``size_bytes`` towards the destination."""
        packet = Packet(
            src=self.host.node_id,
            dst=self.dst,
            size_bytes=size_bytes,
            flow_id=self.flow_id,
            seq=self._next_seq,
            kind="udp",
            created_ns=self.sim.now,
            payload=UdpDatagram(flow_id=self.flow_id, seq=self._next_seq),
        )
        self._next_seq += 1
        self.stats.sent += 1
        self.stats.sent_bytes += size_bytes
        self.host.send(packet)
        return packet


class UdpReceiver:
    """Datagram sink recording delivery, duplicates and one-way delay."""

    __slots__ = ("sim", "host", "flow_id", "stats", "_seen", "_on_receive")

    def __init__(
        self,
        sim: Simulator,
        host: "TransportHost",
        flow_id: int,
        on_receive: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.stats = UdpStats()
        self._seen: set[int] = set()
        self._on_receive = on_receive
        host.register_flow(flow_id, self._on_packet)

    def reset_stats(self) -> None:
        """Zero the counters while keeping duplicate-detection state."""
        self.stats = UdpStats()

    def _on_packet(self, packet: Packet) -> None:
        payload = packet.payload
        if not isinstance(payload, UdpDatagram):
            return
        if payload.seq in self._seen:
            self.stats.duplicates += 1
            return
        self._seen.add(payload.seq)
        self.stats.received += 1
        self.stats.received_bytes += packet.size_bytes
        self.stats.delays_ns.append(self.sim.now - packet.created_ns)
        if self._on_receive is not None:
            self._on_receive(packet)

    def throughput_bps(self, duration_ns: int) -> float:
        """Received bytes per second of simulated time, in bits/s."""
        if duration_ns <= 0:
            return 0.0
        return self.stats.received_bytes * 8 / ns_to_seconds(duration_ns)
