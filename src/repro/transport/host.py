"""Per-node transport multiplexer.

One :class:`TransportHost` lives on each node.  It registers itself as the
network agent's local-delivery callback and dispatches incoming packets to
the transport endpoint (TCP sender, TCP sink, UDP receiver, ...) that owns
the packet's flow id.  Outgoing packets from any endpoint funnel through
:meth:`send`, which hands them to the network layer — or, when a
:class:`~repro.transport.dropscript.DropScript` is attached, consults it
first so tests can force deterministic drops, delays and re-orderings at
exactly this seam.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.packet import Packet
from repro.routing.agent import NetworkAgent
from repro.sim.engine import Simulator
from repro.transport.dropscript import DropScript


class TransportHost:
    """Flow-id based dispatch between the network layer and transport endpoints."""

    __slots__ = ("sim", "node_id", "network", "_handlers", "undelivered", "drop_script")

    def __init__(self, sim: Simulator, node_id: int, network: NetworkAgent) -> None:
        self.sim = sim
        self.node_id = node_id
        self.network = network
        self._handlers: Dict[int, List[Callable[[Packet], None]]] = {}
        self.undelivered: int = 0
        self.drop_script: Optional[DropScript] = None
        network.set_local_delivery(self.receive)

    def register_flow(self, flow_id: int, handler: Callable[[Packet], None]) -> None:
        """Register a callback for packets of ``flow_id`` addressed to this node."""
        self._handlers.setdefault(flow_id, []).append(handler)

    def attach_drop_script(self, script: Optional[DropScript]) -> None:
        """Install (or clear, with None) a scripted fate for outgoing packets."""
        self.drop_script = script

    def send(self, packet: Packet) -> bool:
        """Hand an outgoing packet to the network layer."""
        script = self.drop_script
        if script is not None:
            fate = script.fate(packet)
            if fate < 0:
                return True  # scripted drop: swallowed, sender believes it left
            if fate > 0:
                # Scripted delay: re-inject into the network later without
                # the sender observing anything unusual.
                self.sim.schedule(fate, lambda p=packet: self.network.send(p))
                return True
        return self.network.send(packet)

    def receive(self, packet: Packet) -> None:
        """Network-layer callback: dispatch an incoming packet by flow id."""
        handlers = self._handlers.get(packet.flow_id)
        if not handlers:
            self.undelivered += 1
            return
        for handler in handlers:
            handler(packet)
