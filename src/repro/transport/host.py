"""Per-node transport multiplexer.

One :class:`TransportHost` lives on each node.  It registers itself as the
network agent's local-delivery callback and dispatches incoming packets to
the transport endpoint (TCP sender, TCP sink, UDP receiver, ...) that owns
the packet's flow id.  Outgoing packets from any endpoint funnel through
:meth:`send`, which hands them to the network layer.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.packet import Packet
from repro.routing.agent import NetworkAgent
from repro.sim.engine import Simulator


class TransportHost:
    """Flow-id based dispatch between the network layer and transport endpoints."""

    def __init__(self, sim: Simulator, node_id: int, network: NetworkAgent) -> None:
        self.sim = sim
        self.node_id = node_id
        self.network = network
        self._handlers: Dict[int, List[Callable[[Packet], None]]] = {}
        self.undelivered: int = 0
        network.set_local_delivery(self.receive)

    def register_flow(self, flow_id: int, handler: Callable[[Packet], None]) -> None:
        """Register a callback for packets of ``flow_id`` addressed to this node."""
        self._handlers.setdefault(flow_id, []).append(handler)

    def send(self, packet: Packet) -> bool:
        """Hand an outgoing packet to the network layer."""
        return self.network.send(packet)

    def receive(self, packet: Packet) -> None:
        """Network-layer callback: dispatch an incoming packet by flow id."""
        handlers = self._handlers.get(packet.flow_id)
        if not handlers:
            self.undelivered += 1
            return
        for handler in handlers:
            handler(packet)
