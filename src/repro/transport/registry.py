"""The transport scheme registry: named congestion controllers, per flow.

The seventh component registry.  Each entry is a factory ``scheme(**params)
-> CongestionController`` returning a *fresh* controller instance — state
is per flow, so every :class:`~repro.transport.tcp.TcpSender` calls the
factory once and owns the result.  Selection rides the spec layer
(:class:`~repro.spec.TransportSpec`, ``--set transport=cubic``) or a
per-flow ``FlowSpec.transport`` override, with ``reno`` the default that
keeps every pre-registry scenario digest and result bit-identical.
"""

from __future__ import annotations

from repro.registry import Registry
from repro.transport.congestion import (
    CongestionController,
    CubicController,
    NewRenoController,
    RenoController,
    TahoeController,
)

#: The registry of congestion-controller factories.
TRANSPORT_SCHEMES = Registry("transport scheme")

#: Canonical name of the default controller (the seed's hard-coded machine).
DEFAULT_TRANSPORT = "reno"


def register_transport(name: str):
    """Decorator registering a ``scheme(**params) -> CongestionController`` factory."""
    return TRANSPORT_SCHEMES.register(name)


def build_controller(name: str, **params) -> CongestionController:
    """Instantiate the controller registered under ``name`` with ``params``."""
    factory = TRANSPORT_SCHEMES.lookup(name)
    return factory(**params)


@register_transport("reno")
def _reno() -> CongestionController:
    """TCP Reno with the seed's partial-ACK retention (the bit-identical default)."""
    return RenoController()


@register_transport("tahoe")
def _tahoe() -> CongestionController:
    """TCP Tahoe: fast retransmit but no fast recovery — every loss slow-starts."""
    return TahoeController()


@register_transport("newreno")
def _newreno() -> CongestionController:
    """NewReno per RFC 6582: pure partial-ACK deflation, burst-avoiding exit."""
    return NewRenoController()


@register_transport("cubic")
def _cubic(*, c: float = 0.4, beta: float = 0.7, fast_convergence: bool = True) -> CongestionController:
    """CUBIC (RFC 8312): sim-time window growth, fast convergence, TCP-friendly region."""
    return CubicController(c=float(c), beta=float(beta), fast_convergence=bool(fast_convergence))
