"""The corpus invariant checks: what every composable scenario must obey.

Each check is a registered, individually-selectable entry of
:data:`CORPUS_CHECKS` (a plain :class:`repro.registry.Registry`, the
same machinery behind every component registry — and covered by the
``registry-hygiene`` static-analysis rule like the rest).  A check takes
a :class:`CheckContext` for one sampled spec document and returns None
when the invariant holds, or a failure message.

The invariants are the platform's load-bearing contracts, checked *per
scenario* rather than per hand-picked test case:

* ``roundtrip`` — spec and config documents are fixpoints of
  ``to_dict``/``from_dict`` (what the CLI, the service and the cache
  exchange);
* ``digest-stability`` — the same document always hashes to the same
  sweep-cache digest, including across a serialization round-trip and a
  topology rebuild (builder determinism);
* ``determinism`` — two runs of the same seeded scenario produce
  byte-identical result JSON;
* ``parallel-serial`` — a multiprocessing sweep of the scenario equals
  the serial run (the SweepRunner contract);
* ``cache-roundtrip`` — a result stored in a fresh
  :class:`~repro.experiments.parallel.ResultCache` loads back
  byte-identical, by config and by raw digest.

The simulation entry points are injectable on :class:`CheckContext`
(``run`` / ``run_parallel``), which is how the test-suite proves the
catch-and-shrink pipeline end to end against a deliberately broken
component without touching the global write-once registries.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.registry import Registry

#: The registry of corpus invariant checks (``--check <id>`` on the CLI).
CORPUS_CHECKS = Registry("corpus check")


def _default_run(config) -> Dict[str, object]:
    from repro.experiments.runner import run_scenario

    return run_scenario(config).to_dict()


def _default_run_parallel(configs) -> List[Dict[str, object]]:
    from repro.experiments.parallel import SweepRunner

    results = SweepRunner(jobs=2).run(list(configs))
    return [result.to_dict() for result in results]


def _dumps(payload) -> str:
    """The canonical byte form results are compared in (sorted-key JSON)."""
    return json.dumps(payload, sort_keys=True)


def _first_delta(a: Dict[str, object], b: Dict[str, object]) -> str:
    """Name the first top-level key where two documents disagree."""
    for key in sorted(set(a) | set(b)):
        if a.get(key) != b.get(key):
            return f"{key!r}: {a.get(key)!r} != {b.get(key)!r}"
    return "(documents differ below the top level)"


class CheckContext:
    """Everything one spec document's checks share: builds, runs, memos.

    The first serial run is memoized so the run-based invariants
    (determinism, parallel==serial, cache round-trip) cost one extra run
    each instead of two — at 64 sampled specs that halves the CLI's
    wall-clock.  ``run``/``run_parallel`` default to the real simulator
    and are injectable for the shrinker tests.
    """

    def __init__(
        self,
        document: Dict[str, object],
        run: Optional[Callable] = None,
        run_parallel: Optional[Callable] = None,
    ) -> None:
        self.document = dict(document)
        self.run = run or _default_run
        self.run_parallel = run_parallel or _default_run_parallel
        self._config = None
        self._serial: Optional[Dict[str, object]] = None

    def spec(self):
        """A *fresh* ScenarioSpec parsed from the document (never cached)."""
        from repro.spec import ScenarioSpec

        return ScenarioSpec.from_dict(self.document)

    def config(self):
        """The resolved ScenarioConfig (topology built once, then reused)."""
        if self._config is None:
            self._config = self.spec().to_config()
        return self._config

    def serial_result(self) -> Dict[str, object]:
        """The memoized first serial run of the scenario."""
        if self._serial is None:
            self._serial = self.run(self.config())
        return self._serial


@dataclass
class CorpusFinding:
    """One failed invariant: the spec, the message, and its shrunk core."""

    check: str
    message: str
    document: Dict[str, object]
    #: Minimal failing document from the shrinker (None when not shrunk).
    shrunk: Optional[Dict[str, object]] = None
    #: The non-default pieces of the shrunk document, e.g. ``["mac=afr"]``
    #: — the component(s) the failure is pinned on.
    components: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "check": self.check,
            "message": self.message,
            "document": self.document,
            "shrunk": self.shrunk,
            "components": list(self.components),
        }

    def render(self) -> str:
        lines = [f"[{self.check}] {self.message}"]
        if self.components:
            lines.append(f"  components: {', '.join(self.components)}")
        if self.shrunk is not None:
            lines.append(f"  minimal failing spec: {json.dumps(self.shrunk, sort_keys=True)}")
        return "\n".join(lines)


class InvariantCheck:
    """Base class: one registered invariant over a :class:`CheckContext`."""

    id = "invariant"
    title = "corpus invariant"

    def run_check(self, ctx: CheckContext) -> Optional[str]:
        raise NotImplementedError

    def __call__(self, ctx: CheckContext) -> Optional[str]:
        return self.run_check(ctx)


def register_check(cls):
    """Class decorator: instantiate and register a check under its id."""
    CORPUS_CHECKS.add(cls.id, cls())
    return cls


@register_check
class RoundTrip(InvariantCheck):
    """Spec and config documents are ``to_dict``/``from_dict`` fixpoints.

    The corpus emits canonical documents, so parsing one and serializing
    it back must be the identity — and the resolved config must survive
    its own round-trip the same way.  A drift here means the CLI, the
    HTTP service and the cache are not exchanging the same scenario.
    """

    id = "roundtrip"
    title = "spec/config serialization round-trips to the identity"

    def run_check(self, ctx: CheckContext) -> Optional[str]:
        from repro.experiments.runner import ScenarioConfig

        reserialized = ctx.spec().to_dict()
        if reserialized != ctx.document:
            return f"spec document is not a from_dict/to_dict fixpoint: {_first_delta(ctx.document, reserialized)}"
        config_doc = ctx.config().to_dict()
        config_doc2 = ScenarioConfig.from_dict(config_doc).to_dict()
        if config_doc2 != config_doc:
            return f"config document is not a from_dict/to_dict fixpoint: {_first_delta(config_doc, config_doc2)}"
        return None


@register_check
class DigestStability(InvariantCheck):
    """The same document always produces the same sweep-cache digest.

    Hashes the resolved config three ways — as built, rebuilt from the
    document (folding topology-builder determinism in), and after a
    config round-trip.  Any disagreement means a cache keyed by one form
    misses (or worse, collides) under another.
    """

    id = "digest-stability"
    title = "config digest is stable across rebuilds and round-trips"

    def run_check(self, ctx: CheckContext) -> Optional[str]:
        from repro.experiments.parallel import config_digest
        from repro.experiments.runner import ScenarioConfig

        first = config_digest(ctx.config())
        rebuilt = config_digest(ctx.spec().to_config())
        if rebuilt != first:
            return f"digest changed on topology rebuild: {first} != {rebuilt}"
        roundtripped = config_digest(ScenarioConfig.from_dict(ctx.config().to_dict()))
        if roundtripped != first:
            return f"digest changed across config round-trip: {first} != {roundtripped}"
        return None


@register_check
class Determinism(InvariantCheck):
    """Same seed, same scenario => byte-identical result JSON.

    The whole platform (cache, parallel sweeps, the service) assumes a
    scenario is a pure function of its config; a scenario that draws
    outside the keyed RNG streams or depends on ambient state fails
    here.
    """

    id = "determinism"
    title = "two runs of the same seeded scenario are byte-identical"

    def run_check(self, ctx: CheckContext) -> Optional[str]:
        first = _dumps(ctx.serial_result())
        second = _dumps(ctx.run(ctx.spec().to_config()))
        if first != second:
            return "re-running the same seeded scenario changed the result JSON"
        return None


@register_check
class ParallelSerial(InvariantCheck):
    """A multiprocessing sweep equals the serial run, bit for bit.

    Runs the scenario twice through a two-worker
    :class:`~repro.experiments.parallel.SweepRunner` and compares both
    results against the serial memo — the contract that makes ``--jobs``
    and the distributed service pure accelerators.
    """

    id = "parallel-serial"
    title = "parallel sweep results equal the serial run"

    def run_check(self, ctx: CheckContext) -> Optional[str]:
        serial = _dumps(ctx.serial_result())
        for position, payload in enumerate(ctx.run_parallel([ctx.config(), ctx.config()])):
            if _dumps(payload) != serial:
                return f"parallel run {position} differs from the serial result"
        return None


@register_check
class CacheRoundTrip(InvariantCheck):
    """A stored result loads back byte-identical, by config and by digest.

    Stores the serial result in a throwaway
    :class:`~repro.experiments.parallel.ResultCache` and reads it back
    through both ``load(config)`` and ``load_raw(digest)`` — the two
    paths the sweep runner and the HTTP service actually use.
    """

    id = "cache-roundtrip"
    title = "result cache store/load is the identity"

    def run_check(self, ctx: CheckContext) -> Optional[str]:
        from repro.experiments.parallel import ResultCache, config_digest
        from repro.experiments.runner import ScenarioResult

        serial = ctx.serial_result()
        root = tempfile.mkdtemp(prefix="repro-corpus-cache-")
        try:
            cache = ResultCache(root)
            cache.store(ctx.config(), ScenarioResult.from_dict(serial))
            loaded = cache.load(ctx.config())
            if loaded is None:
                return "cache miss immediately after store"
            if _dumps(loaded.to_dict()) != _dumps(serial):
                return "cache load(config) returned a different result payload"
            raw = cache.load_raw(config_digest(ctx.config()))
            if raw is None or _dumps(raw) != _dumps(serial):
                return "cache load_raw(digest) returned a different result payload"
        finally:
            shutil.rmtree(root, ignore_errors=True)
        return None


def known_check_ids() -> List[str]:
    """Registered check ids in registration (cheapest-first) order."""
    return list(CORPUS_CHECKS.names())


def evaluate(
    documents: Sequence[Dict[str, object]],
    check_ids: Optional[Sequence[str]] = None,
    make_context: Callable[[Dict[str, object]], CheckContext] = CheckContext,
    shrink_failures: bool = True,
) -> List[CorpusFinding]:
    """Run the selected checks over every document; shrink what fails.

    A check that raises is a failure like any other (the exception text
    becomes the message): a spec the registries admitted must at least
    build and run.  Each failing (document, check) pair is minimized with
    :func:`repro.corpus.shrink.shrink_document` re-running *that* check,
    and the finding reports the offending non-default components.
    """
    from repro.corpus import shrink as shrink_mod

    checks = [CORPUS_CHECKS.lookup(check_id) for check_id in (check_ids or known_check_ids())]
    findings: List[CorpusFinding] = []
    for document in documents:
        ctx = make_context(document)
        for check in checks:
            message = run_check_on(check, ctx)
            if message is None:
                continue
            finding = CorpusFinding(check.id, message, dict(document))
            if shrink_failures:
                finding.shrunk = shrink_mod.shrink_document(
                    document,
                    lambda candidate: still_fails(check, candidate, make_context),
                )
                finding.components = shrink_mod.offending_components(
                    finding.shrunk, shrink_mod.baseline_document(like=document)
                )
            findings.append(finding)
    return findings


def run_check_on(check: InvariantCheck, ctx: CheckContext) -> Optional[str]:
    """One check on one context; an exception is a failure message."""
    try:
        return check(ctx)
    except Exception as exc:  # noqa: BLE001 - any crash on an admitted spec is a finding
        return f"{type(exc).__name__}: {exc}"


def still_fails(
    check: InvariantCheck,
    document: Dict[str, object],
    make_context: Callable[[Dict[str, object]], CheckContext],
) -> bool:
    """Whether ``document`` still fails ``check`` (the shrinker's oracle).

    A candidate that does not even parse as a ScenarioSpec is *not* a
    reproduction of the failure — the shrinker must stay inside the
    valid space while minimizing.
    """
    from repro.serialization import SpecError
    from repro.spec import ScenarioSpec

    try:
        ScenarioSpec.from_dict(document)
    except (SpecError, ValueError, KeyError, TypeError):
        return False
    return run_check_on(check, make_context(document)) is not None
