"""Delta-debugging minimizer for failing scenario specs.

When a corpus check fails on a sampled spec, the raw document names
seven composed layers — most of them innocent.  The shrinker walks the
failing document toward the registry-default baseline one field at a
time, keeping a replacement only while the *same* check still fails, and
reports the minimal failing spec plus the non-default components left in
it.  ``mac=afr`` in a three-line JSON document is actionable;
"sample 37 of 64 failed" is not.

The oracle (``still_fails``) is supplied by the caller
(:func:`repro.corpus.checks.evaluate` closes it over the failing check),
so the shrinker itself knows nothing about simulators — it is plain
greedy delta debugging over dict fields:

1. per top-level field, try the baseline value;
2. per surviving component entry, try emptying its ``params`` dict.

Each pass repeats until a full sweep makes no progress, which is a
fixpoint: every remaining non-default field is individually necessary to
reproduce the failure.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


def baseline_document(like: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """The all-defaults spec document shrinking steers toward.

    ``line`` topology, scheme-label defaults everywhere else.  Run
    framing (duration/warmup/seed) is copied from ``like`` so shrinking
    never changes how long the scenario runs — only what it composes.
    """
    from repro.spec import ScenarioSpec, TopologyRef

    document = ScenarioSpec(topology=TopologyRef("line")).to_dict()
    if like is not None:
        for key in ("duration_s", "warmup_s", "seed"):
            if key in like:
                document[key] = like[key]
    return document


def shrink_document(
    document: Dict[str, object],
    still_fails: Callable[[Dict[str, object]], bool],
    baseline: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Greedily minimize ``document`` while ``still_fails`` stays true.

    Returns the minimal failing document (possibly ``document`` itself
    when nothing can be simplified).  The input is never mutated.
    """
    if baseline is None:
        baseline = baseline_document(like=document)
    current = dict(document)
    progress = True
    while progress:
        progress = False
        for key in sorted(current):
            replacement = baseline.get(key)
            if current[key] == replacement:
                continue
            candidate = dict(current)
            candidate[key] = replacement
            if still_fails(candidate):
                current = candidate
                progress = True
        for key in sorted(current):
            candidate_value = _without_params(current[key])
            if candidate_value is None:
                continue
            candidate = dict(current)
            candidate[key] = candidate_value
            if still_fails(candidate):
                current = candidate
                progress = True
    return current


def _without_params(value: object) -> Optional[object]:
    """The same component entry with its params cleared, or None if n/a."""
    if not isinstance(value, dict):
        return None
    if set(value) == {"ref"} and isinstance(value["ref"], dict):
        inner = _without_params(value["ref"])
        return None if inner is None else {"ref": inner}
    if value.get("params"):
        cleared = dict(value)
        cleared["params"] = {}
        return cleared
    return None


def offending_components(
    minimal: Dict[str, object], baseline: Dict[str, object]
) -> List[str]:
    """Human labels for the non-default fields of a shrunk document.

    E.g. ``["mac=afr"]`` — the components the failure is pinned on after
    everything else shrank away.
    """
    labels: List[str] = []
    for key in sorted(set(minimal) | set(baseline)):
        value = minimal.get(key)
        if value == baseline.get(key):
            continue
        labels.append(f"{key}={_component_label(key, value)}")
    return labels


def _component_label(key: str, value: object) -> str:
    if isinstance(value, dict):
        ref = value.get("ref")
        if isinstance(ref, dict):
            value = ref
        for name_key in ("name", "model", "propagation"):
            if name_key in value:
                label = str(value[name_key])
                params = value.get("params")
                if params:
                    inner = ",".join(f"{k}={v}" for k, v in sorted(params.items()))
                    label = f"{label}({inner})"
                return label
        return repr(value)
    return str(value)
