"""Generated corpus catalogue: render the live spec space to Markdown.

``docs/CORPUS.md`` is generated from the live registries and check/
constraint tables exactly the way ``docs/ANALYSIS.md`` is generated from
the rule registry: the committed copy is checked for freshness in CI, a
check without a docstring fails the build, and the document can never
drift from what ``python -m repro.corpus`` actually enumerates.

::

    python -m repro.corpus --write-docs     # (re)write docs/CORPUS.md
    python -m repro.corpus --check-docs     # exit 1 if the committed copy is stale
"""

from __future__ import annotations

import difflib
import inspect
from typing import List, Optional

from repro.corpus.checks import CORPUS_CHECKS, known_check_ids
from repro.corpus.space import CONSTRAINTS, LAYERS, default_space

#: Default location of the generated catalogue, relative to the repo root.
DEFAULT_OUTPUT = "docs/CORPUS.md"


class CorpusDocsError(RuntimeError):
    """Raised when a registered check cannot be documented (no docstring)."""


HEADER = """\
# Scenario corpus

<!-- GENERATED FILE - DO NOT EDIT.
     Regenerate with:  PYTHONPATH=src python -m repro.corpus --write-docs
     CI fails when this file is stale (python -m repro.corpus --check-docs). -->

`python -m repro.corpus` enumerates the valid scenario space straight
off the live component registries, samples it with a seeded Philox
stream, and runs every sampled spec through the platform's invariant
checks at short duration — serialization round-trips, digest stability,
run determinism, parallel==serial, cache round-trips.  Any failure is
delta-debugged down to a **minimal failing spec** naming the offending
component(s), and the CLI exits 1 (same ergonomics as
`python -m repro.analysis`).

```
python -m repro.corpus --sample 64 --seed 0          # the CI smoke sample
python -m repro.corpus --check determinism           # one invariant only
python -m repro.corpus --format json                 # machine-readable findings
python -m repro.corpus --write-golden tests/corpus/golden_digests.json
```

The same sampled specs are runnable as a cached experiment family:
`python -m repro.experiments report corpus`.
"""

GOLDEN_NOTE = """\
## Golden digest pins

`tests/corpus/golden_digests.json` pins the sweep-cache digest of one
canonical scenario per registered component (generated with
`--write-golden`).  A tier-1 test fails on any drift unless
`CACHE_SCHEMA_VERSION` was bumped — the one sanctioned way to invalidate
existing caches.  After an intentional digest change: bump the schema
version, regenerate the pins, commit both.
"""


def _layer_section() -> List[str]:
    space = default_space()
    lines = ["## Enumeration axes", ""]
    lines.append(
        "Each axis is walked off its live registry at enumeration time — a "
        "newly registered component joins the corpus with no corpus change. "
        f"The current space holds {space.size()} raw combinations before "
        "constraint filtering."
    )
    lines.append("")
    for layer in LAYERS:
        labels = ", ".join(f"`{choice.label}`" for choice in space.layers[layer])
        lines.append(f"- **{layer}**: {labels}")
    lines.append("")
    return lines


def _constraint_section() -> List[str]:
    lines = [
        "## Constraint table",
        "",
        "Combinations are only skipped for a written reason — every skip "
        "traces to exactly one row here (`repro.corpus.space.CONSTRAINTS`).",
        "",
        "| id | rule |",
        "| --- | --- |",
    ]
    for constraint in CONSTRAINTS:
        lines.append(f"| `{constraint.id}` | {constraint.description} |")
    lines.append("")
    return lines


def _check_section(check_id: str) -> List[str]:
    check = CORPUS_CHECKS.lookup(check_id)
    doc = inspect.getdoc(type(check))
    if not doc or not doc.strip():
        raise CorpusDocsError(
            f"corpus check {check_id!r}: check class has no docstring; the "
            "generated catalogue needs the contract a failure reader sees"
        )
    lines = [
        f"### `{check_id}`",
        "",
        f"**{check.title}**",
        "",
    ]
    lines.extend(doc.strip().splitlines())
    lines.append("")
    return lines


def generate_corpus_markdown() -> str:
    """The full CORPUS.md document, rendered from the live registries."""
    lines = [HEADER]
    lines.extend(_layer_section())
    lines.extend(_constraint_section())
    lines.extend(
        [
            "## Invariant checks",
            "",
            "Run in registration order (cheapest first); select one with "
            "`--check <id>`.  Each failing (spec, check) pair is shrunk "
            "toward registry defaults before being reported.",
            "",
        ]
    )
    for check_id in known_check_ids():
        lines.extend(_check_section(check_id))
    lines.append(GOLDEN_NOTE)
    return "\n".join(lines).rstrip() + "\n"


def check_freshness(path: str) -> Optional[str]:
    """None when ``path`` matches the generated document, else a unified diff."""
    expected = generate_corpus_markdown()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            committed = handle.read()
    except OSError:
        committed = ""
    if committed == expected:
        return None
    return "".join(
        difflib.unified_diff(
            committed.splitlines(keepends=True),
            expected.splitlines(keepends=True),
            fromfile=f"{path} (committed)",
            tofile=f"{path} (generated)",
        )
    )
