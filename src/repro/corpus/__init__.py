"""Scenario corpus: enumerate the registry cross-product, gate invariants.

The composable scenario API means the platform's real surface is the
cross-product of its registries (topology x MAC x routing x traffic x
transport x propagation x mobility) — tens of thousands of valid
scenarios, of which hand-written tests exercise a handful.  This package
turns that surface into a first-class test subject:

* :mod:`repro.corpus.space` — enumerate the valid spec space straight
  off the live registries, filtered by a declarative constraint table,
  with fully seeded sampling;
* :mod:`repro.corpus.checks` — the registered invariant checks every
  sampled spec must pass (round-trip, digest stability, determinism,
  parallel==serial, cache round-trip);
* :mod:`repro.corpus.shrink` — delta-debug any failure to a minimal
  failing spec naming the offending component(s);
* :mod:`repro.corpus.golden` — pinned sweep-cache digests tripwiring
  accidental schema drift;
* :mod:`repro.corpus.docs` — the generated ``docs/CORPUS.md`` catalogue.

CLI: ``python -m repro.corpus --sample 64 --seed 0`` (exit 1 on
findings); the same sampled specs run as the cached ``corpus``
experiment family (``python -m repro.experiments report corpus``).
"""

from repro.corpus.checks import CORPUS_CHECKS, CheckContext, CorpusFinding, evaluate
from repro.corpus.shrink import baseline_document, offending_components, shrink_document
from repro.corpus.space import CONSTRAINTS, LAYERS, SpecSpace, default_space

__all__ = [
    "CORPUS_CHECKS",
    "CONSTRAINTS",
    "CheckContext",
    "CorpusFinding",
    "LAYERS",
    "SpecSpace",
    "baseline_document",
    "default_space",
    "evaluate",
    "offending_components",
    "shrink_document",
]
