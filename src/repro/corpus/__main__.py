"""CLI for the scenario-corpus invariant gate.

::

    python -m repro.corpus                          # sample 16 specs, all checks
    python -m repro.corpus --sample 64 --seed 0     # the CI smoke configuration
    python -m repro.corpus --check determinism      # one invariant (repeatable)
    python -m repro.corpus --format json            # machine-readable findings
    python -m repro.corpus --list                   # check catalogue (one line each)
    python -m repro.corpus --write-docs             # regenerate docs/CORPUS.md
    python -m repro.corpus --check-docs             # exit 1 if CORPUS.md is stale
    python -m repro.corpus --write-golden PATH      # regenerate the digest pins

Exit status: 0 = clean, 1 = findings (or stale docs), 2 = usage error —
the same contract as ``python -m repro.analysis``, so CI treats both
gates identically.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.driver import repo_root
from repro.corpus import checks as checks_mod
from repro.corpus import space as space_mod
from repro.corpus.docs import DEFAULT_OUTPUT, check_freshness, generate_corpus_markdown

#: Schema version of the ``--format json`` document.
JSON_SCHEMA_VERSION = 1

#: Default sample size: small enough for a PR-lane smoke, large enough to
#: touch every layer most runs.
DEFAULT_SAMPLE = 16


def _list_checks(out) -> None:
    for check_id in checks_mod.known_check_ids():
        check = checks_mod.CORPUS_CHECKS.lookup(check_id)
        print(f"{check_id}: {check.title}", file=out)


def _render_text(findings, labels: List[str], checks: List[str], out) -> None:
    for finding in findings:
        print(finding.render(), file=out)
    noun = "finding" if len(findings) == 1 else "findings"
    print(
        f"{len(findings)} {noun} over {len(labels)} sampled specs x "
        f"{len(checks)} checks",
        file=out,
    )


def _render_json(findings, labels: List[str], args, checks: List[str], out) -> None:
    document = {
        "schema": JSON_SCHEMA_VERSION,
        "sample": args.sample,
        "seed": args.seed,
        "duration_s": args.duration,
        "checks": checks,
        "specs": labels,
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    json.dump(document, out, indent=2, sort_keys=True)
    out.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.corpus",
        description="Registry-driven scenario corpus: enumerate, check invariants, "
        "shrink failures.",
    )
    parser.add_argument(
        "--sample",
        type=int,
        default=DEFAULT_SAMPLE,
        metavar="N",
        help=f"number of admissible specs to sample (default: {DEFAULT_SAMPLE})",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="sampling seed; the same (seed, sample) names the same specs "
        "on every machine (default: 0)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=space_mod.DEFAULT_DURATION_S,
        metavar="SECONDS",
        help="simulated duration of each invariant run "
        f"(default: {space_mod.DEFAULT_DURATION_S})",
    )
    parser.add_argument(
        "--check",
        action="append",
        dest="checks",
        metavar="ID",
        help="run only this invariant check (repeatable; see --list)",
    )
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report raw failing specs without delta-debugging them",
    )
    parser.add_argument(
        "--list", action="store_true", help="print the check catalogue and exit"
    )
    parser.add_argument(
        "--write-docs",
        action="store_true",
        help=f"regenerate {DEFAULT_OUTPUT} from the live registries and exit",
    )
    parser.add_argument(
        "--check-docs",
        action="store_true",
        help=f"exit 1 (with a diff) if the committed {DEFAULT_OUTPUT} is stale",
    )
    parser.add_argument(
        "--docs-output",
        default=None,
        metavar="PATH",
        help=f"where --write-docs/--check-docs look (default: <root>/{DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--write-golden",
        default=None,
        metavar="PATH",
        help="(re)write the golden digest pin file and exit",
    )
    args = parser.parse_args(argv)

    if args.list:
        _list_checks(sys.stdout)
        return 0

    if args.write_golden:
        from repro.corpus.golden import write_golden

        count = write_golden(args.write_golden)
        print(f"wrote {count} digest pins to {args.write_golden}")
        return 0

    if args.write_docs or args.check_docs:
        root = repo_root()
        docs_path = args.docs_output or str(root / DEFAULT_OUTPUT)
        if args.write_docs:
            markdown = generate_corpus_markdown()
            with open(docs_path, "w", encoding="utf-8") as handle:
                handle.write(markdown)
            print(f"wrote {docs_path}")
            return 0
        diff = check_freshness(docs_path)
        if diff is None:
            print(f"{docs_path} is up to date")
            return 0
        print(diff, end="")
        print(
            f"\n{docs_path} is stale; regenerate with: "
            "PYTHONPATH=src python -m repro.corpus --write-docs"
        )
        return 1

    known = checks_mod.known_check_ids()
    if args.checks:
        unknown = [check for check in args.checks if check not in known]
        if unknown:
            parser.error(f"unknown check id(s) {unknown}; known: {known}")
    selected = args.checks or known

    space = space_mod.default_space(duration_s=args.duration)
    combos = space.sample(args.sample, sample_seed=args.seed)
    labels = [space.describe(combo) for combo in combos]
    documents = [space.document_for(combo) for combo in combos]
    findings = checks_mod.evaluate(
        documents, selected, shrink_failures=not args.no_shrink
    )
    if args.format == "json":
        _render_json(findings, labels, args, selected, sys.stdout)
    else:
        _render_text(findings, labels, selected, sys.stdout)
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
