"""Golden sweep-cache digests: the schema-compatibility tripwire.

``config_digest`` is the identity of every cached result, every service
job and every corpus scenario.  An *accidental* change to it — a field
rename, a canonicalization tweak, a float formatting change — silently
orphans every existing cache entry.  This module pins the digests of a
canonical panel of scenarios (every topology, every MAC, each non-default
routing/traffic/transport/propagation/mobility choice) in
``tests/corpus/golden_digests.json``; a tier-1 test recomputes them and
fails on any drift **unless** :data:`~repro.experiments.parallel.CACHE_SCHEMA_VERSION`
was bumped — the one sanctioned way to invalidate the cache universe.

The panel is generated from the live registries
(:func:`golden_documents`), so registering a new component obliges a
regeneration (``python -m repro.corpus --write-golden
tests/corpus/golden_digests.json``) and the new component's digest is
pinned from day one.  Trace-addressed topologies are digested through
their *resolved* form (positions inline, name ``trace:<basename>``), so
the pins are machine- and path-independent.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.corpus.space import packaged_trace_fixture
from repro.experiments.parallel import config_digest
from repro.mobility.spec import MobilitySpec
from repro.phy.params import PhyParams
from repro.spec import (
    MacSpec,
    RoutingSpec,
    ScenarioSpec,
    TopologyRef,
    TrafficSpec,
    TransportSpec,
)

#: Where the pins live (repo-relative; the tier-1 test and the CLI agree).
DEFAULT_GOLDEN_PATH = "tests/corpus/golden_digests.json"

#: Run framing of every golden scenario.  Fixed forever: the panel pins
#: serialization + digesting, so the framing only has to be *stable*,
#: never representative.
GOLDEN_DURATION_S = 0.5
GOLDEN_SEED = 1


def _spec(topology: str = "line", **kwargs) -> ScenarioSpec:
    return ScenarioSpec(
        topology=TopologyRef(topology),
        duration_s=GOLDEN_DURATION_S,
        seed=GOLDEN_SEED,
        **kwargs,
    )


def golden_documents() -> Dict[str, Dict[str, object]]:
    """The pinned panel: label -> canonical ScenarioSpec document.

    One scenario per registered topology at defaults, the packaged trace
    fixture, and one ``line`` scenario per non-default MAC / routing /
    traffic / transport / propagation model / driveable mobility model —
    every registry surfaces in at least one pin.
    """
    from repro.corpus.space import (
        _MOBILITY_CHOICES,
        _is_wrapper,
        contention_inner_names,
    )
    from repro.mac.registry import MAC_SCHEMES
    from repro.mobility.models import MOBILITY_MODELS
    from repro.phy.registry import PROPAGATION_MODELS
    from repro.routing.registry import ROUTING_STRATEGIES
    from repro.topology.registry import TOPOLOGIES
    from repro.traffic.registry import TRAFFIC_KINDS
    from repro.transport.registry import TRANSPORT_SCHEMES

    panel: Dict[str, ScenarioSpec] = {}
    for name in TOPOLOGIES.names():
        panel[f"topology={name}"] = _spec(name)
    panel["topology=trace:corpus_line"] = _spec(f"trace:{packaged_trace_fixture()}")
    for name, info in MAC_SCHEMES.items():
        if _is_wrapper(info):
            inner = contention_inner_names()[0]
            panel[f"mac={name}(inner={inner})"] = _spec(mac=MacSpec(name, {"inner": inner}))
        else:
            panel[f"mac={name}"] = _spec(mac=MacSpec(name))
    for name in ROUTING_STRATEGIES.names():
        if name != "static":
            panel[f"routing={name}"] = _spec(routing=RoutingSpec(name))
    for name in TRAFFIC_KINDS.names():
        panel[f"traffic={name}"] = _spec(traffic=TrafficSpec(name))
    for name in TRANSPORT_SCHEMES.names():
        if name != "reno":
            panel[f"transport={name}"] = _spec(transport=TransportSpec(name))
    default_propagation = PhyParams().propagation
    for name in PROPAGATION_MODELS.names():
        if name != default_propagation:
            panel[f"phy.propagation={name}"] = _spec(
                phy=PhyParams.from_dict({"propagation": name})
            )
    for name in MOBILITY_MODELS.names():
        build = _MOBILITY_CHOICES.get(name)
        if build is not None:
            panel[f"mobility={name}"] = _spec(mobility=build())
    return {label: spec.to_dict() for label, spec in panel.items()}


def current_digests() -> Dict[str, str]:
    """Digest of every panel scenario's *resolved* config, freshly computed."""
    return {
        label: config_digest(ScenarioSpec.from_dict(document).to_config())
        for label, document in golden_documents().items()
    }


def golden_payload() -> Dict[str, object]:
    """The JSON document ``--write-golden`` persists."""
    from repro.experiments.parallel import CACHE_SCHEMA_VERSION

    return {"schema": CACHE_SCHEMA_VERSION, "digests": current_digests()}


def write_golden(path: str) -> int:
    """(Re)write the pin file; returns the number of pinned scenarios."""
    payload = golden_payload()
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(payload["digests"])


def verify_golden(stored: Dict[str, object]) -> List[str]:
    """Mismatch messages between a stored pin file and the live code.

    A schema-version difference short-circuits to a single message (the
    sanctioned invalidation path: bump + regenerate); otherwise every
    drifted, vanished or unpinned label is reported individually.
    """
    from repro.experiments.parallel import CACHE_SCHEMA_VERSION

    stored_schema = stored.get("schema")
    if stored_schema != CACHE_SCHEMA_VERSION:
        return [
            f"golden digests were pinned at cache schema {stored_schema!r} but the "
            f"code is at {CACHE_SCHEMA_VERSION!r}; regenerate the pins with "
            f"`python -m repro.corpus --write-golden {DEFAULT_GOLDEN_PATH}`"
        ]
    current = current_digests()
    pinned = stored.get("digests") or {}
    messages: List[str] = []
    for label in sorted(pinned):
        if label not in current:
            messages.append(f"pinned scenario {label!r} no longer exists in the registries")
        elif current[label] != pinned[label]:
            messages.append(
                f"digest drift for {label!r}: pinned {pinned[label]} but code now "
                f"produces {current[label]} — bump CACHE_SCHEMA_VERSION if the "
                f"change is intentional, then regenerate the pins"
            )
    for label in sorted(set(current) - set(pinned)):
        messages.append(
            f"scenario {label!r} is not pinned; regenerate "
            f"{DEFAULT_GOLDEN_PATH} to cover it"
        )
    return messages


def verify_golden_file(path: str) -> List[str]:
    """Load + verify a pin file (missing file is itself a finding)."""
    target = Path(path)
    if not target.is_file():
        return [f"golden digest file {path} is missing; write it with --write-golden"]
    return verify_golden(json.loads(target.read_text()))
