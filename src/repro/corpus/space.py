"""Enumeration of the valid scenario-spec space from the live registries.

Seven registries (topology x MAC x routing x traffic x transport x
propagation x mobility) span roughly 7e4 composable scenarios; tests
only ever exercised the handful each PR happened to add.  This module
makes the whole cross-product addressable:

* each registry becomes a **layer** of :class:`Choice` objects walked
  straight off the live registry (a newly registered component is
  enumerated on the day it lands, with no corpus change);
* a small declarative :data:`CONSTRAINTS` table states which
  combinations are *not* meaningful (a ``rate_adapt`` MAC needs a
  contention ``inner``; ``trace:`` topologies need their file; mobility
  is excluded on the paper's fixed-layout figure topologies);
* :class:`SpecSpace` indexes the product mixed-radix, filters it through
  the constraints, and emits each admissible combination as a canonical
  :class:`~repro.spec.ScenarioSpec` document — the exact dict
  ``ScenarioSpec.to_dict`` writes, so corpus documents are first-class
  citizens of the spec/CLI/cache ecosystem.

Sampling is seeded through the keyed Philox streams of
:mod:`repro.sim.rng` (no wall-clock randomness anywhere), so
``--sample 64 --seed 0`` names the same 64 scenarios on every machine,
forever — which is what lets CI, the nightly sweep and a developer's
shell all talk about "corpus spec 17".
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.mobility.spec import MobilitySpec
from repro.phy.params import PhyParams
from repro.sim.rng import RandomStreams
from repro.spec import (
    MacSpec,
    RoutingSpec,
    ScenarioSpec,
    TopologyRef,
    TrafficSpec,
    TransportSpec,
)

#: Layer order of the enumeration (mixed-radix digit order, docs order).
LAYERS: Tuple[str, ...] = (
    "topology", "mac", "routing", "traffic", "transport", "phy", "mobility",
)

#: Default simulated duration of a corpus invariant run: long enough for
#: every traffic kind to move packets, short enough that a 64-spec sample
#: finishes in CI minutes.
DEFAULT_DURATION_S = 0.02

#: Topologies whose placement *is* the experiment (the paper's figure
#: layouts — hidden-terminal geometry, collision-domain spacing); moving
#: their nodes silently changes what the figure measures.
FIXED_LAYOUT_TOPOLOGIES: Tuple[str, ...] = (
    "fig1", "fig1-voip", "fig1-web", "fig5a", "fig5b",
)

#: Tick cadence for corpus mobility choices: fast enough that mobility
#: actually moves nodes and re-estimates routes within a 0.02 s run.
_MOBILITY_INTERVALS = {"update_interval_s": 0.005, "reestimate_interval_s": 0.01}


@dataclass(frozen=True)
class Choice:
    """One enumerable value of one layer: a label plus the spec it means.

    ``value`` is the object handed to :class:`~repro.spec.ScenarioSpec`
    for that layer (None = the scenario default for optional layers);
    ``label`` is the stable human/docs name — path-free even when the
    value embeds a fixture path, so generated docs and CLI output are
    machine-independent.
    """

    layer: str
    label: str
    value: object


@dataclass(frozen=True)
class Constraint:
    """One declarative admissibility rule over a full layer combination.

    ``allows(combo)`` returns True when the combination is meaningful;
    the table below is rendered verbatim into ``docs/CORPUS.md``, so a
    combination the corpus skips is always skipped *for a written
    reason*, never by an opaque special case.
    """

    id: str
    description: str
    allows: Callable[[Dict[str, Choice]], bool]


# ----------------------------------------------------------------------
# Layer choices, walked off the live registries
# ----------------------------------------------------------------------

def topology_choices(trace_paths: Sequence[str] = ()) -> List[Choice]:
    """Every registered topology builder, plus one ref per trace file.

    Prefix entries cannot be enumerated from the registry alone (a
    ``trace:`` name needs a file argument the registry cannot invent),
    so callers pass concrete ``trace_paths``; the packaged fixture of
    :func:`packaged_trace_fixture` is the default space's choice.
    """
    from repro.topology.registry import TOPOLOGIES

    choices = [Choice("topology", name, TopologyRef(name)) for name in TOPOLOGIES.names()]
    for path in trace_paths:
        for prefix in TOPOLOGIES.prefixes():
            choices.append(
                Choice(
                    "topology",
                    f"{prefix}:{os.path.basename(path)}",
                    TopologyRef(f"{prefix}:{path}"),
                )
            )
    return choices


def _is_wrapper(info) -> bool:
    """Whether a MAC registry entry wraps another scheme (``inner`` param)."""
    return "inner" in getattr(info, "params", ())


def contention_inner_names() -> List[str]:
    """MAC schemes eligible as a wrapper's ``inner``: contention, non-wrapper."""
    from repro.mac.registry import MAC_SCHEMES

    return [
        name
        for name, info in MAC_SCHEMES.items()
        if not _is_wrapper(info) and not info.opportunistic
    ]


def mac_choices() -> List[Choice]:
    """Every registered MAC scheme; wrappers once per eligible inner."""
    from repro.mac.registry import MAC_SCHEMES

    choices = [Choice("mac", "(scheme-label default)", None)]
    for name, info in MAC_SCHEMES.items():
        if _is_wrapper(info):
            for inner in contention_inner_names():
                choices.append(
                    Choice("mac", f"{name}(inner={inner})", MacSpec(name, {"inner": inner}))
                )
        else:
            choices.append(Choice("mac", name, MacSpec(name)))
    return choices


def routing_choices() -> List[Choice]:
    """Every registered routing strategy (plus the scheme-label default)."""
    from repro.routing.registry import ROUTING_STRATEGIES

    choices = [Choice("routing", "(scheme-label default)", None)]
    choices.extend(
        Choice("routing", name, RoutingSpec(name)) for name in ROUTING_STRATEGIES.names()
    )
    return choices


def traffic_choices() -> List[Choice]:
    """Per-flow kinds (the default) plus every registered forced kind."""
    from repro.traffic.registry import TRAFFIC_KINDS

    choices = [Choice("traffic", "(per-flow kinds)", None)]
    choices.extend(
        Choice("traffic", name, TrafficSpec(name)) for name in TRAFFIC_KINDS.names()
    )
    return choices


def transport_choices() -> List[Choice]:
    """Every non-default congestion controller (absent = the default reno)."""
    from repro.experiments.runner import DEFAULT_TRANSPORT_SPEC
    from repro.transport.registry import TRANSPORT_SCHEMES

    choices = [Choice("transport", "(default reno)", None)]
    for name in TRANSPORT_SCHEMES.names():
        spec = TransportSpec(name)
        if spec == DEFAULT_TRANSPORT_SPEC:
            continue  # canonicalizes to absence; enumerating it twice is noise
        choices.append(Choice("transport", name, spec))
    return choices


def phy_choices() -> List[Choice]:
    """Every non-default propagation model as a PHY-parameter choice."""
    from repro.phy.registry import PROPAGATION_MODELS

    default = PhyParams().propagation
    choices = [Choice("phy", f"(default {default})", None)]
    for name in PROPAGATION_MODELS.names():
        if name == default:
            continue
        choices.append(
            Choice("phy", f"propagation={name}", PhyParams.from_dict({"propagation": name}))
        )
    return choices


#: Corpus parameterisation per mobility model.  ``static`` is a no-op by
#: definition and ``trace`` needs per-node samples the corpus cannot
#: invent (see the ``mobility-trace-samples`` constraint); models not
#: listed here are skipped from enumeration until given parameters.
_MOBILITY_CHOICES: Dict[str, Callable[[], MobilitySpec]] = {
    "random_waypoint": lambda: MobilitySpec.random_waypoint(4.0, **_MOBILITY_INTERVALS),
    "gauss_markov": lambda: MobilitySpec.gauss_markov(3.0, **_MOBILITY_INTERVALS),
}


def mobility_choices() -> List[Choice]:
    """Fixed placement plus every registered model the corpus can drive."""
    from repro.mobility.models import MOBILITY_MODELS

    choices = [Choice("mobility", "(fixed placement)", None)]
    for name in MOBILITY_MODELS.names():
        build = _MOBILITY_CHOICES.get(name)
        if build is not None:
            choices.append(Choice("mobility", name, build()))
    return choices


def packaged_trace_fixture() -> str:
    """Absolute path of the trace-topology fixture shipped in this package."""
    return str(Path(__file__).resolve().parent / "fixtures" / "corpus_line.csv")


# ----------------------------------------------------------------------
# The declarative constraint table
# ----------------------------------------------------------------------

def _topology_name(combo: Dict[str, Choice]) -> str:
    value = combo["topology"].value
    return value.canonical_name if isinstance(value, TopologyRef) else str(value)


def _mobility_allows_layout(combo: Dict[str, Choice]) -> bool:
    mobility = combo["mobility"].value
    if mobility is None or mobility.is_static:
        return True
    return _topology_name(combo) not in FIXED_LAYOUT_TOPOLOGIES


def _wrapper_has_contention_inner(combo: Dict[str, Choice]) -> bool:
    from repro.mac.registry import MAC_SCHEMES

    mac = combo["mac"].value
    if mac is None or not _is_wrapper(MAC_SCHEMES.lookup(mac.name)):
        return True
    inner = mac.params.get("inner")
    return inner in contention_inner_names()


def _trace_topology_file_exists(combo: Dict[str, Choice]) -> bool:
    from repro.topology.registry import TOPOLOGIES

    prefixed = TOPOLOGIES.split_prefixed(combo["topology"].value.name)
    if prefixed is None:
        return True
    return Path(prefixed[1]).is_file()


def _trace_mobility_has_samples(combo: Dict[str, Choice]) -> bool:
    mobility = combo["mobility"].value
    if mobility is None or mobility.model != "trace":
        return True
    return bool(mobility.params.get("traces"))


CONSTRAINTS: Tuple[Constraint, ...] = (
    Constraint(
        "rate-adapt-inner",
        "a wrapper MAC (`rate_adapt`) must name a contention, non-wrapper "
        "scheme as its `inner` — opportunistic schemes manage their own "
        "rate/forwarder coupling and a wrapper cannot wrap itself",
        _wrapper_has_contention_inner,
    ),
    Constraint(
        "trace-topology-file",
        "a `trace:` topology is only admissible when its file exists — the "
        "corpus ships `corpus_line.csv` so one prefix-addressed topology is "
        "always enumerable",
        _trace_topology_file_exists,
    ),
    Constraint(
        "mobility-fixed-layout",
        "non-static mobility is excluded on the paper's fixed-layout figure "
        "topologies (fig1 family, fig5a/fig5b): their placement is the "
        "experiment (hidden terminals, collision domains), so moving nodes "
        "changes what the scenario means",
        _mobility_allows_layout,
    ),
    Constraint(
        "mobility-trace-samples",
        "the `trace` mobility model needs per-node (t, x, y) samples; the "
        "corpus cannot invent them, so trace mobility only enters the space "
        "with explicit samples in its params",
        _trace_mobility_has_samples,
    ),
)


# ----------------------------------------------------------------------
# The indexed, constraint-filtered space
# ----------------------------------------------------------------------

class SpecSpace:
    """The constraint-filtered cross-product of per-layer choices.

    Combinations are addressed by a mixed-radix index over
    :data:`LAYERS` (last layer fastest, like nested for loops), which
    makes sampling a matter of drawing integers: the same ``(sample
    seed, n)`` names the same scenarios on every machine.
    """

    def __init__(
        self,
        layers: Optional[Dict[str, List[Choice]]] = None,
        constraints: Tuple[Constraint, ...] = CONSTRAINTS,
        duration_s: float = DEFAULT_DURATION_S,
        base_seed: int = 1,
    ) -> None:
        if layers is None:
            layers = default_layers()
        missing = [layer for layer in LAYERS if not layers.get(layer)]
        if missing:
            raise ValueError(f"spec space needs at least one choice per layer; empty: {missing}")
        self.layers = {layer: list(layers[layer]) for layer in LAYERS}
        self.constraints = tuple(constraints)
        self.duration_s = float(duration_s)
        self.base_seed = int(base_seed)

    def size(self) -> int:
        """Number of raw (pre-constraint) combinations."""
        total = 1
        for layer in LAYERS:
            total *= len(self.layers[layer])
        return total

    def combo_at(self, index: int) -> Dict[str, Choice]:
        """Mixed-radix decode of ``index`` into one choice per layer."""
        if not 0 <= index < self.size():
            raise IndexError(f"combo index {index} outside [0, {self.size()})")
        combo: Dict[str, Choice] = {}
        for layer in reversed(LAYERS):
            choices = self.layers[layer]
            index, digit = divmod(index, len(choices))
            combo[layer] = choices[digit]
        return {layer: combo[layer] for layer in LAYERS}

    def violated(self, combo: Dict[str, Choice]) -> Optional[Constraint]:
        """The first constraint the combination breaks, or None if admissible."""
        for constraint in self.constraints:
            if not constraint.allows(combo):
                return constraint
        return None

    def iter_admissible(self) -> Iterator[Dict[str, Choice]]:
        """Every admissible combination, in index order (exhaustive walks)."""
        for index in range(self.size()):
            combo = self.combo_at(index)
            if self.violated(combo) is None:
                yield combo

    def spec_for(self, combo: Dict[str, Choice]) -> ScenarioSpec:
        """The combination as a runnable (short-duration) ScenarioSpec."""
        return ScenarioSpec(
            topology=combo["topology"].value,
            mac=combo["mac"].value,
            routing=combo["routing"].value,
            traffic=combo["traffic"].value,
            transport=combo["transport"].value,
            mobility=combo["mobility"].value,
            phy=combo["phy"].value,
            duration_s=self.duration_s,
            seed=self.base_seed,
        )

    def document_for(self, combo: Dict[str, Choice]) -> Dict[str, object]:
        """The combination as a canonical ScenarioSpec document."""
        return self.spec_for(combo).to_dict()

    def describe(self, combo: Dict[str, Choice]) -> str:
        """Stable one-line label, e.g. ``topology=line mac=ripple ...``."""
        return " ".join(f"{layer}={combo[layer].label}" for layer in LAYERS)

    def sample(self, n: int, sample_seed: int = 0) -> List[Dict[str, Choice]]:
        """``n`` distinct admissible combinations, fully seed-determined.

        Rejection-samples indices from a keyed Philox stream; if the
        random phase cannot fill the quota (tiny spaces, harsh
        constraints), a deterministic index-order sweep tops the sample
        up, so asking for more combinations than exist returns them all.
        """
        if n <= 0:
            return []
        total = self.size()
        generator = RandomStreams(int(sample_seed)).stream_for("corpus-sample")
        chosen: List[Dict[str, Choice]] = []
        seen: set = set()
        attempts = 0
        cap = max(1000, 100 * n)
        while len(chosen) < n and attempts < cap and len(seen) < total:
            attempts += 1
            index = int(generator.integers(total))
            if index in seen:
                continue
            seen.add(index)
            combo = self.combo_at(index)
            if self.violated(combo) is None:
                chosen.append(combo)
        if len(chosen) < n:
            for index in range(total):
                if index in seen:
                    continue
                combo = self.combo_at(index)
                if self.violated(combo) is None:
                    chosen.append(combo)
                    if len(chosen) == n:
                        break
        return chosen


def default_layers(trace_paths: Optional[Sequence[str]] = None) -> Dict[str, List[Choice]]:
    """The layer table of the default space (all registries + the fixture)."""
    if trace_paths is None:
        trace_paths = (packaged_trace_fixture(),)
    return {
        "topology": topology_choices(trace_paths),
        "mac": mac_choices(),
        "routing": routing_choices(),
        "traffic": traffic_choices(),
        "transport": transport_choices(),
        "phy": phy_choices(),
        "mobility": mobility_choices(),
    }


def default_space(
    duration_s: float = DEFAULT_DURATION_S,
    base_seed: int = 1,
    trace_paths: Optional[Sequence[str]] = None,
) -> SpecSpace:
    """The full registry-driven space with the packaged trace fixture."""
    return SpecSpace(default_layers(trace_paths), duration_s=duration_s, base_seed=base_seed)
