"""The :class:`Finding` record every analysis rule emits.

A finding pins one contract violation to a source location.  Findings
are value objects: the driver sorts and deduplicates them, the CLI
renders them as ``path:line: [rule-id] message`` text or as JSON, and
the test-suite asserts on them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    #: Rule id, e.g. ``"no-unkeyed-rng"`` (a key of ``ANALYSIS_RULES``).
    rule: str
    #: Repo-relative posix path, e.g. ``"src/repro/topology/roofnet.py"``.
    path: str
    #: 1-indexed source line the violation anchors to.
    line: int
    #: Human-readable description of the violation and the fix direction.
    message: str
    #: 0-indexed column offset (as reported by ``ast``).
    column: int = 0

    def render(self) -> str:
        """The canonical one-line text form (clickable ``path:line``)."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation used by ``--format json``."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }

    def sort_key(self):
        return (self.path, self.line, self.column, self.rule, self.message)


def sorted_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Deduplicated findings in stable (path, line, rule) order."""
    return sorted(set(findings), key=Finding.sort_key)
