"""Rule model and registry for the static-analysis pass.

Rules are *instances* registered in :data:`ANALYSIS_RULES` — the same
write-once :class:`repro.registry.Registry` the simulator's component
layers use, so rule ids share the component registries' guarantees
(duplicate ids raise, unknown ids raise naming what exists) and the rule
catalogue in ``docs/ANALYSIS.md`` can be generated exactly the way
``docs/COMPONENTS.md`` is.

Two rule shapes exist:

* :class:`SourceRule` — pure AST analysis of one module at a time.  Each
  rule contributes a :class:`Checker` whose node handlers are merged
  into **one** shared tree walk per file (the driver visits every node
  once, dispatching to every interested rule), so adding rules does not
  multiply parse or walk cost.
* :class:`ProjectRule` — the semi-static layer: runs once per pass with
  import access to the live package, for properties that need real
  objects (dataclass fields vs ``to_dict()`` source, registry entries,
  ``from_dict`` strictness probes).

A rule's class docstring is its rationale in the generated catalogue;
like registered components, an undocumented rule fails the docs build.
"""

from __future__ import annotations

import ast
import fnmatch
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Tuple, Type, TypeVar

from repro.analysis.findings import Finding
from repro.analysis.pragmas import PragmaIndex
from repro.registry import Registry

#: Registry of rule instances, keyed by rule id.
ANALYSIS_RULES = Registry("analysis rule")

RuleT = TypeVar("RuleT", bound="Rule")


def register_rule(rule_class: Type[RuleT]) -> Type[RuleT]:
    """Class decorator: instantiate the rule and register it under its id."""
    ANALYSIS_RULES.add(rule_class.id, rule_class())
    return rule_class


@dataclass
class ModuleContext:
    """Everything a :class:`SourceRule` may inspect about one module."""

    #: Path relative to the repository root (``src/repro/sim/engine.py``);
    #: what findings report.
    path: str
    #: Path relative to the ``src`` root (``repro/sim/engine.py``); what
    #: rule scopes match against.
    module: str
    source: str
    tree: ast.Module
    pragmas: PragmaIndex

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        """A finding of ``rule`` anchored at ``node`` in this module."""
        return Finding(
            rule=rule.id,
            path=self.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            message=message,
        )


@dataclass
class ProjectContext:
    """What a :class:`ProjectRule` sees: the repo root and the module list."""

    root: Path
    #: ``(repo-relative path, src-relative module path)`` pairs in the pass.
    modules: Tuple[Tuple[str, str], ...] = ()


class Rule:
    """Common rule surface: identity, scope, and module matching."""

    #: Unique rule id; the pragma/CLI/docs handle.
    id: str = ""
    #: One-line summary shown in listings.
    title: str = ""
    #: fnmatch patterns (against the src-relative module path) the rule
    #: examines.  ``repro/*`` means the whole package.
    include: Tuple[str, ...] = ("repro/*",)
    #: Module paths exempt from the rule — the per-rule allowlist for
    #: whole files whose business *is* the banned construct (e.g.
    #: ``repro/sim/rng.py`` may construct generators).
    allow_modules: Tuple[str, ...] = ()

    def applies_to(self, module: str) -> bool:
        """Whether this rule examines ``module`` (a src-relative path)."""
        if any(fnmatch.fnmatch(module, pattern) for pattern in self.allow_modules):
            return False
        return any(fnmatch.fnmatch(module, pattern) for pattern in self.include)


class Checker:
    """Per-module collector a :class:`SourceRule` hands to the shared walk.

    Subclasses declare node handlers via :meth:`handlers`; the driver
    calls each handler for every matching node of the single shared tree
    walk, then collects :attr:`findings` through :meth:`finish`.
    """

    def __init__(self, rule: "SourceRule", ctx: ModuleContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.findings: List[Finding] = []

    def emit(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.ctx.finding(self.rule, node, message))

    def handlers(self) -> Dict[type, Callable[[ast.AST], None]]:
        """Mapping of AST node type -> handler for the shared walk."""
        raise NotImplementedError

    def finish(self) -> List[Finding]:
        """Findings for this module, called after the walk completes."""
        return self.findings


class SourceRule(Rule):
    """An AST rule: one :class:`Checker` per examined module."""

    def checker(self, ctx: ModuleContext) -> Checker:
        raise NotImplementedError


class ProjectRule(Rule):
    """A semi-static rule: runs once per pass against the live package."""

    def check_project(self, ctx: ProjectContext) -> Iterable[Finding]:
        raise NotImplementedError


class SharedWalk(ast.NodeVisitor):
    """The one tree walk per module every source rule shares.

    Handlers from all interested rules are merged by node type; each node
    is visited exactly once regardless of how many rules inspect it.
    """

    def __init__(self, checkers: Iterable[Checker]) -> None:
        self._handlers: Dict[type, List[Callable[[ast.AST], None]]] = {}
        for checker in checkers:
            for node_type, handler in checker.handlers().items():
                self._handlers.setdefault(node_type, []).append(handler)

    def generic_visit(self, node: ast.AST) -> None:
        for handler in self._handlers.get(type(node), ()):
            handler(node)
        super().generic_visit(node)

    visit = generic_visit


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted form of a Name/Attribute chain (``np.random.default_rng``).

    Non-name links (calls, subscripts) truncate the chain; the result is
    only ever used for suffix/equality matching, so a truncated chain
    simply fails to match.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        parts.append("")
    return ".".join(reversed(parts))
