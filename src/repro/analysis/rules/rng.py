"""``no-unkeyed-rng``: every random draw goes through ``RandomStreams``.

The determinism contract (PR 3) keys every stream by ``(seed, name,
keys)`` via :meth:`repro.sim.rng.RandomStreams.stream_for`, which is
what makes replays bit-identical and per-link sample paths independent
of registration order, receiver culling and mobility.  A module-level
``random.random()`` or a privately constructed
``np.random.default_rng(...)`` bypasses all of that: its draws depend on
process-global state or on a seed outside the scenario's root seed, so
two runs of the same config stop being comparable — the exact bug class
of the ad-hoc ``random`` use in the exemplar simulators.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict

from repro.analysis.base import Checker, ModuleContext, SourceRule, dotted_name, register_rule

#: Dotted call targets that construct or use generators outside the stream
#: registry.  Matched as suffixes so both ``np.random.default_rng`` and
#: ``numpy.random.default_rng`` hit.
_BANNED_CALL_SUFFIXES = (
    "random.default_rng",
    "random.Generator",
    "random.RandomState",
    "random.seed",
)

#: Names that, imported from ``numpy.random``, construct generators.
_BANNED_NUMPY_IMPORTS = {"default_rng", "Generator", "RandomState", "seed"}


@register_rule
class NoUnkeyedRng(SourceRule):
    """All randomness must derive from the scenario seed via ``RandomStreams``.

    Flags ``import random`` (and ``from random import ...``), calls to
    ``np.random.default_rng`` / ``Generator`` / ``RandomState`` /
    ``np.random.seed``, and ``from numpy.random import default_rng``-style
    imports anywhere in ``src/repro`` outside ``sim/rng.py`` (the one
    module whose business is constructing generators).  Route draws
    through ``RandomStreams.stream_for(name, *keys)`` instead, or pragma
    a genuinely seed-scoped exception (e.g. a topology layout generated
    from its own ``seed`` parameter) with the justification inline.
    """

    id = "no-unkeyed-rng"
    title = "ad-hoc RNG construction bypasses the keyed stream registry"
    allow_modules = ("repro/sim/rng.py",)

    def checker(self, ctx: ModuleContext) -> "_RngChecker":
        return _RngChecker(self, ctx)


class _RngChecker(Checker):
    def handlers(self) -> Dict[type, Callable[[ast.AST], None]]:
        return {
            ast.Import: self._import,
            ast.ImportFrom: self._import_from,
            ast.Call: self._call,
        }

    def _import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.emit(
                    node,
                    "stdlib 'random' is process-global state; draw from "
                    "RandomStreams.stream_for(name, *keys) instead",
                )

    def _import_from(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self.emit(
                node,
                "stdlib 'random' is process-global state; draw from "
                "RandomStreams.stream_for(name, *keys) instead",
            )
        elif node.module in ("numpy.random", "np.random"):
            banned = sorted(
                alias.name for alias in node.names if alias.name in _BANNED_NUMPY_IMPORTS
            )
            if banned:
                self.emit(
                    node,
                    f"importing {', '.join(banned)} from numpy.random constructs "
                    "unkeyed generators; use RandomStreams.stream_for instead",
                )

    def _call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if not name:
            return
        if any(name == suffix or name.endswith("." + suffix) for suffix in _BANNED_CALL_SUFFIXES):
            self.emit(
                node,
                f"{name}(...) constructs a generator outside the keyed stream "
                "registry; use RandomStreams.stream_for(name, *keys) so draws "
                "depend only on (seed, name, keys)",
            )
        elif name.startswith(("np.random.", "numpy.random.")):
            # The legacy module-level numpy API (np.random.normal, ...)
            # draws from one process-global generator.
            self.emit(
                node,
                f"{name}(...) draws from numpy's process-global generator; "
                "draw from RandomStreams.stream_for(name, *keys) instead",
            )
        elif name.startswith("random."):
            self.emit(
                node,
                f"{name}(...) uses the process-global stdlib RNG; draw from "
                "RandomStreams.stream_for(name, *keys) instead",
            )
