"""``no-unordered-set-iteration``: hot paths never iterate raw sets.

CPython iterates a set in hash order, and for strings that order is
salted per process (``PYTHONHASHSEED``) — so a ``for x in some_set`` in
the event loop, PHY dispatch, MAC or routing layers can reorder
callbacks, draws or route choices between two runs of the *same seed*.
Membership tests are fine; it is only *iteration order* that leaks
nondeterminism.  Iterate ``sorted(the_set)`` (or keep a list/dict, both
insertion-ordered) on any path that feeds the event loop.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Set

from repro.analysis.base import Checker, ModuleContext, SourceRule, register_rule

#: Set-returning methods: iterating their result is hash-ordered too.
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference", "copy"}

#: Calls through which a set's unordered iteration escapes into an
#: order-sensitive sequence.
_ORDER_SENSITIVE_WRAPPERS = {"list", "tuple", "enumerate", "iter"}

#: Annotation names marking a variable as a set.
_SET_ANNOTATIONS = {"set", "Set", "frozenset", "FrozenSet", "MutableSet"}


def _is_set_display(node: ast.AST) -> bool:
    """Whether ``node`` is syntactically a set right where it stands."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            # ``x.union(y)`` only returns a set when x is one; restrict to
            # receivers we can see are sets to avoid flagging e.g. an
            # unrelated object's ``.copy()``.
            return _is_set_display(func.value)
    return False


def _annotation_is_set(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id in _SET_ANNOTATIONS
    if isinstance(annotation, ast.Subscript):
        return _annotation_is_set(annotation.value)
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in _SET_ANNOTATIONS
    return False


@register_rule
class NoUnorderedSetIteration(SourceRule):
    """Hot-path modules must not iterate sets in hash order.

    Scoped to ``sim/``, ``phy/``, ``mac/`` and ``routing/`` — the code
    that runs inside the event loop.  Flags ``for``/comprehension
    iteration (and ``list()``/``tuple()``/``enumerate()``/``iter()``
    materialisation) over set displays, ``set()``/``frozenset()`` calls,
    set-returning methods, and names the module itself binds or
    annotates as sets.  String hash order is salted per process, so such
    iteration makes same-seed runs diverge.  Wrap the set in
    ``sorted(...)`` or keep an insertion-ordered container instead.
    """

    id = "no-unordered-set-iteration"
    title = "set iteration order is nondeterministic on the hot path"
    include = ("repro/sim/*", "repro/phy/*", "repro/mac/*", "repro/routing/*")

    def checker(self, ctx: ModuleContext) -> "_SetIterChecker":
        return _SetIterChecker(self, ctx)


class _SetIterChecker(Checker):
    def __init__(self, rule: SourceRule, ctx: ModuleContext) -> None:
        super().__init__(rule, ctx)
        #: Names (and ``self.x`` attributes, keyed as ``"self.x"``) the
        #: module binds to set expressions — a deliberately simple, local
        #: inference: one contrary (non-set) binding removes the name.
        self._set_names: Set[str] = set()
        self._collect_bindings(ctx.tree)

    # -- one up-front pass over assignments/annotations ------------------
    def _collect_bindings(self, tree: ast.Module) -> None:
        demoted: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._note_binding(target, node.value, demoted)
            elif isinstance(node, ast.AnnAssign):
                name = self._target_name(node.target)
                if name is None:
                    continue
                if _annotation_is_set(node.annotation):
                    self._set_names.add(name)
                elif node.value is not None:
                    self._note_binding(node.target, node.value, demoted)
            elif isinstance(node, ast.AugAssign):
                name = self._target_name(node.target)
                if name is not None and not isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
                    demoted.add(name)
        self._set_names -= demoted

    def _note_binding(self, target: ast.AST, value: ast.AST, demoted: Set[str]) -> None:
        name = self._target_name(target)
        if name is None:
            return
        if _is_set_display(value):
            self._set_names.add(name)
        else:
            demoted.add(name)

    @staticmethod
    def _target_name(target: ast.AST) -> "str | None":
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            if target.value.id == "self":
                return f"self.{target.attr}"
        return None

    # -- shared-walk handlers --------------------------------------------
    def handlers(self) -> Dict[type, Callable[[ast.AST], None]]:
        return {
            ast.For: self._for,
            ast.comprehension: self._comprehension,
            ast.Call: self._call,
        }

    def _is_set_expr(self, node: ast.AST) -> bool:
        if _is_set_display(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self._set_names
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == "self":
                return f"self.{node.attr}" in self._set_names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                return self._is_set_expr(func.value)
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _flag(self, node: ast.AST, how: str) -> None:
        self.emit(
            node,
            f"{how} iterates a set in (per-process salted) hash order on the "
            "hot path; iterate sorted(...) or an insertion-ordered container",
        )

    def _for(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._flag(node, "for loop")

    def _comprehension(self, node: ast.comprehension) -> None:
        if self._is_set_expr(node.iter):
            self._flag(node.iter, "comprehension")

    def _call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in _ORDER_SENSITIVE_WRAPPERS
            and node.args
            and self._is_set_expr(node.args[0])
        ):
            self._flag(node, f"{func.id}(...)")
