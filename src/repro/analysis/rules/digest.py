"""``digest-coverage``: every config field reaches the cache digest.

The sweep cache (:mod:`repro.experiments.parallel`) keys results by a
content hash of ``config.to_dict()``.  A dataclass field added without a
matching key in ``to_dict()`` is therefore a *cache-corruption* bug, not
a style issue: two configs differing only in the new field hash
identically, and the sweep serves one's cached result for the other.

This rule is semi-static: it imports each serializable class, takes its
``dataclasses.fields`` as ground truth, and parses the **source** of its
``to_dict`` method for the dict keys it emits (literal keys, ``d["k"] =``
subscript stores, or a blanket ``dataclasses.asdict`` call).  Parsing
the source rather than calling the method means conditionally-emitted
keys (e.g. ``ScenarioConfig``'s canonicalized ``mac``/``routing``/
``traffic``) count as covered without having to construct probe
instances for every branch.
"""

from __future__ import annotations

import ast
import importlib
import inspect
import textwrap
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Iterable, List, Set, Tuple

from repro.analysis.base import ProjectContext, ProjectRule, dotted_name, register_rule
from repro.analysis.findings import Finding

#: Serializable classes whose ``to_dict`` output feeds ``config_digest``
#: (directly, or nested inside ``ScenarioConfig.to_dict``).  A new
#: digest-relevant dataclass belongs on this list — the meta-test in
#: ``tests/analysis`` keeps the list itself from rotting.
DIGEST_CLASSES: Tuple[str, ...] = (
    "repro.experiments.runner.ScenarioConfig",
    "repro.phy.params.PhyParams",
    "repro.mobility.spec.MobilitySpec",
    "repro.spec.MacSpec",
    "repro.spec.RoutingSpec",
    "repro.spec.TrafficSpec",
    "repro.spec.TransportSpec",
    "repro.spec.TopologyRef",
    "repro.spec.ScenarioSpec",
    "repro.topology.spec.TopologySpec",
    "repro.topology.spec.FlowSpec",
)


def load_class(dotted_path: str) -> type:
    """Import ``"pkg.module.Class"`` and return the class object."""
    module_name, _, class_name = dotted_path.rpartition(".")
    return getattr(importlib.import_module(module_name), class_name)


def _emitted_keys(func) -> Tuple[Set[str], bool]:
    """``(keys, uses_asdict)`` statically collected from a ``to_dict`` body.

    Keys are string constants used as dict-literal keys or as subscript
    stores (``data["key"] = ...``); an ``asdict(...)`` call anywhere in
    the body covers every field at once.
    """
    source = textwrap.dedent(inspect.getsource(func))
    tree = ast.parse(source)
    keys: Set[str] = set()
    uses_asdict = False
    for node in ast.walk(tree):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.add(target.slice.value)
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name == "asdict" or name.endswith(".asdict"):
                uses_asdict = True
    return keys, uses_asdict


def uncovered_fields(cls: type) -> List[str]:
    """Dataclass fields of ``cls`` that its ``to_dict`` source never emits.

    An empty list means the serialization covers every field (or
    delegates wholesale to ``asdict``).  Raises ``TypeError`` for a
    non-dataclass and ``AttributeError`` when ``to_dict`` is missing —
    both are reported as findings by the rule, and surfaced directly
    when called from tests on scratch classes.
    """
    if not is_dataclass(cls):
        raise TypeError(f"{cls.__name__} is not a dataclass")
    to_dict = inspect.getattr_static(cls, "to_dict", None)
    if to_dict is None:
        raise AttributeError(f"{cls.__name__} has no to_dict")
    keys, uses_asdict = _emitted_keys(cls.to_dict)
    if uses_asdict:
        return []
    return [f.name for f in fields(cls) if f.name not in keys and not f.name.startswith("_")]


def _location(root: Path, obj) -> Tuple[str, int]:
    """Repo-relative ``(path, line)`` of a class/function, for findings."""
    try:
        source_file = inspect.getsourcefile(obj)
        _, line = inspect.getsourcelines(obj)
    except (OSError, TypeError):
        return "src/repro", 1
    path = Path(source_file or "src/repro")
    try:
        return path.resolve().relative_to(root.resolve()).as_posix(), line
    except ValueError:
        return path.as_posix(), line


@register_rule
class DigestCoverage(ProjectRule):
    """Serialized config classes must emit every dataclass field.

    For each class on :data:`DIGEST_CLASSES` the rule checks that every
    ``dataclasses.fields`` entry appears among the dict keys its
    ``to_dict`` source emits.  An uncovered field means two different
    configs can share a sweep-cache digest — fix the serialization *and*
    bump ``CACHE_SCHEMA_VERSION`` so entries written by the buggy layout
    are never reused.
    """

    id = "digest-coverage"
    title = "dataclass field missing from the to_dict() the cache hashes"

    def check_project(self, ctx: ProjectContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for dotted_path in DIGEST_CLASSES:
            try:
                cls = load_class(dotted_path)
            except (ImportError, AttributeError) as exc:
                findings.append(
                    Finding(
                        rule=self.id,
                        path="src/repro/analysis/rules/digest.py",
                        line=1,
                        message=f"DIGEST_CLASSES names {dotted_path!r} which does not import: {exc}",
                    )
                )
                continue
            findings.extend(self._check_class(ctx.root, cls))
        return findings

    def _check_class(self, root: Path, cls: type) -> Iterable[Finding]:
        path, line = _location(root, cls)
        try:
            missing = uncovered_fields(cls)
        except (TypeError, AttributeError) as exc:
            yield Finding(rule=self.id, path=path, line=line, message=str(exc))
            return
        for field_name in missing:
            yield Finding(
                rule=self.id,
                path=path,
                line=line,
                message=(
                    f"{cls.__name__}.{field_name} never appears in {cls.__name__}.to_dict(); "
                    "two configs differing only in this field would share a cache digest — "
                    "serialize it and bump CACHE_SCHEMA_VERSION"
                ),
            )
