"""``registry-hygiene``: the component registries stay usable and documented.

The registries are the public face of the scenario API: everything in
them must be resolvable by name from a JSON spec, rendered into the
generated ``docs/COMPONENTS.md``, and safe against stale cache entries
through strict ``from_dict`` parsing.  This rule re-checks those
properties against the *live* registries on every pass, so a component
merged without a docstring, a dangling alias, or a spec class whose
``from_dict`` silently swallows unknown keys is a lint failure rather
than a latent doc/CLI/cache bug.
"""

from __future__ import annotations

import inspect
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.analysis.base import ProjectContext, ProjectRule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.rules.digest import DIGEST_CLASSES, _location, load_class

#: The component registries under hygiene, as ``(module, attribute)``.
COMPONENT_REGISTRIES: Tuple[Tuple[str, str], ...] = (
    ("repro.mac.registry", "MAC_SCHEMES"),
    ("repro.routing.registry", "ROUTING_STRATEGIES"),
    ("repro.traffic.registry", "TRAFFIC_KINDS"),
    ("repro.transport.registry", "TRANSPORT_SCHEMES"),
    ("repro.topology.registry", "TOPOLOGIES"),
    ("repro.mobility.models", "MOBILITY_MODELS"),
    ("repro.phy.registry", "PROPAGATION_MODELS"),
    ("repro.corpus.checks", "CORPUS_CHECKS"),
)

#: Serialized wire classes outside the digest path that must still parse
#: strictly: the service's durable job records and HTTP request bodies.
#: A lax ``from_dict`` here lets a corrupted job file or a typo'd request
#: load as a half-default object instead of failing loudly.
STRICT_WIRE_CLASSES: Tuple[str, ...] = (
    "repro.service.store.JobRecord",
    "repro.service.schemas.SubmitRequest",
)

#: Key no serializable class can legitimately accept: the strictness probe.
_PROBE_KEY = "__repro_analysis_probe__"


def _entry_factory(entry) -> object:
    """The callable behind a registry entry (MAC entries wrap theirs)."""
    return getattr(entry, "factory", entry)


@register_rule
class RegistryHygiene(ProjectRule):
    """Registered components resolve, document themselves, and parse strictly.

    Checks, against the live registries: every entry's factory is
    callable and has the docstring the generated reference consumes;
    every alias resolves to a registered name; every prefix entry is
    callable and documented; and every serializable spec/config class —
    the digest-feeding classes plus the service's wire classes (job
    records, submit requests) — exposes ``to_dict`` plus a *strict*
    ``from_dict`` (probed with an unknown key, which must raise
    ``SpecError`` — anything laxer lets a stale or corrupted cache
    entry, job file or request body load as a half-default object).
    """

    id = "registry-hygiene"
    title = "component registry entry unusable, undocumented or lax"

    def check_project(self, ctx: ProjectContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for module_name, attribute in COMPONENT_REGISTRIES:
            findings.extend(self._check_registry(ctx.root, module_name, attribute))
        for dotted_path in DIGEST_CLASSES + STRICT_WIRE_CLASSES:
            findings.extend(self._check_spec_class(ctx.root, dotted_path))
        return findings

    # ------------------------------------------------------------------
    # Registries
    # ------------------------------------------------------------------
    def _check_registry(
        self, root: Path, module_name: str, attribute: str
    ) -> Iterable[Finding]:
        registry_path = f"src/{module_name.replace('.', '/')}.py"
        try:
            registry = load_class(f"{module_name}.{attribute}")
        except (ImportError, AttributeError) as exc:
            yield Finding(
                rule=self.id,
                path=registry_path,
                line=1,
                message=f"registry {module_name}.{attribute} does not import: {exc}",
            )
            return
        entries = list(registry.items()) + [
            (f"{prefix}:<arg>", entry) for prefix, entry in registry.prefix_items()
        ]
        for name, entry in entries:
            factory = _entry_factory(entry)
            path, line = _location(root, factory)
            if not callable(factory):
                yield Finding(
                    rule=self.id,
                    path=registry_path,
                    line=1,
                    message=f"{registry.kind} {name!r}: registered entry is not callable",
                )
                continue
            doc = inspect.getdoc(factory)
            if not doc or not doc.strip():
                yield Finding(
                    rule=self.id,
                    path=path,
                    line=line,
                    message=(
                        f"{registry.kind} {name!r}: factory has no docstring; the "
                        "generated component reference needs its one-line description"
                    ),
                )
        for alias, target in registry.alias_items():
            if target not in registry.names():
                yield Finding(
                    rule=self.id,
                    path=registry_path,
                    line=1,
                    message=f"{registry.kind} alias {alias!r} -> {target!r} does not resolve",
                )

    # ------------------------------------------------------------------
    # Spec classes
    # ------------------------------------------------------------------
    def _check_spec_class(self, root: Path, dotted_path: str) -> Iterable[Finding]:
        from repro.serialization import SpecError

        try:
            cls = load_class(dotted_path)
        except (ImportError, AttributeError):
            return  # digest-coverage already reports the broken import
        path, line = _location(root, cls)
        for method in ("to_dict", "from_dict"):
            if not callable(getattr(cls, method, None)):
                yield Finding(
                    rule=self.id,
                    path=path,
                    line=line,
                    message=f"serializable class {cls.__name__} lacks {method}()",
                )
                return
        try:
            cls.from_dict({_PROBE_KEY: None})
        except SpecError:
            return  # strict: the unknown key was rejected with the right error
        except Exception as exc:  # noqa: BLE001 - classifying arbitrary failures
            yield Finding(
                rule=self.id,
                path=path,
                line=line,
                message=(
                    f"{cls.__name__}.from_dict raised {type(exc).__name__} instead of "
                    "SpecError for an unknown key; strict parsing must name the key "
                    "and the class"
                ),
            )
            return
        yield Finding(
            rule=self.id,
            path=path,
            line=line,
            message=(
                f"{cls.__name__}.from_dict accepted an unknown key; strict parsing "
                "(repro.serialization.require_known_keys) is required so stale "
                "cache entries and typo'd specs fail loudly"
            ),
        )
