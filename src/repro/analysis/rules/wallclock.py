"""``no-wall-clock``: simulated time never reads the host clock.

The engine's clock (:attr:`repro.sim.engine.Simulator.now`) is the only
notion of time the simulation may observe.  A ``time.time()`` /
``datetime.now()`` / ``perf_counter()`` call inside the simulation or
serialization path leaks the host's wall clock into behaviour or into
cache payloads, which breaks bit-identical replays (two runs of the same
seed diverge) and cache-soundness (identical configs hash differently).
Legitimately wall-clocked code is allowlisted *by module*, not by
pragma: benchmark/sweep timing, and the service layer's single clock
shim (``repro/service/clock.py``) through which every lease expiry,
heartbeat and poll deadline is read.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict

from repro.analysis.base import Checker, ModuleContext, SourceRule, dotted_name, register_rule

#: Dotted attribute chains that read the host clock.  Matched on the
#: attribute *reference* (not just calls) so ``clock = time.perf_counter``
#: aliasing is caught too.
_BANNED_ATTRIBUTES = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
)

#: ``datetime``/``date`` constructors of "now"; matched as the final
#: attribute with a datetime-ish chain (``datetime.now``,
#: ``datetime.datetime.utcnow``, ``date.today``).
_BANNED_NOW_TAILS = {"now", "utcnow", "today"}

#: Names that, imported from ``time``/``datetime``, read the host clock.
_BANNED_TIME_IMPORTS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
}


@register_rule
class NoWallClock(SourceRule):
    """Host-clock reads are banned outside the benchmark/timing modules.

    Flags references to ``time.time``/``monotonic``/``perf_counter`` (and
    their ``_ns`` variants), ``datetime.now``/``utcnow``/``date.today``,
    and ``from time import perf_counter``-style imports anywhere in
    ``src/repro`` except ``experiments/bench.py`` and the sweep runner
    (``experiments/parallel.py``), whose job is measuring wall time, and
    ``service/clock.py`` — the simulation service's one window onto
    operational time (job leases, heartbeats, retry backoff).  The rest
    of the service package must route clock reads through that shim, and
    simulation code must derive every timestamp from ``Simulator.now``.
    """

    id = "no-wall-clock"
    title = "host-clock read inside the simulation/serialization path"
    allow_modules = (
        "repro/experiments/bench.py",
        "repro/experiments/parallel.py",
        "repro/service/clock.py",
    )

    def checker(self, ctx: ModuleContext) -> "_WallClockChecker":
        return _WallClockChecker(self, ctx)


class _WallClockChecker(Checker):
    def handlers(self) -> Dict[type, Callable[[ast.AST], None]]:
        return {ast.Attribute: self._attribute, ast.ImportFrom: self._import_from}

    def _attribute(self, node: ast.Attribute) -> None:
        name = dotted_name(node)
        if not name:
            return
        if any(name == banned or name.endswith("." + banned) for banned in _BANNED_ATTRIBUTES):
            self.emit(
                node,
                f"{name} reads the host clock; simulation code must use "
                "Simulator.now (wall-clock timing belongs in repro.experiments.bench)",
            )
            return
        head, _, tail = name.rpartition(".")
        if tail in _BANNED_NOW_TAILS and ("datetime" in head.split(".") or "date" in head.split(".")):
            self.emit(
                node,
                f"{name} reads the host clock; simulation code must use "
                "Simulator.now (wall-clock timing belongs in repro.experiments.bench)",
            )

    def _import_from(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            banned = sorted(
                alias.name for alias in node.names if alias.name in _BANNED_TIME_IMPORTS
            )
            if banned:
                self.emit(
                    node,
                    f"importing {', '.join(banned)} from time makes host-clock "
                    "reads ambient; simulation code must use Simulator.now",
                )
        elif node.module == "datetime":
            # ``from datetime import datetime`` is fine by itself; the
            # attribute handler catches ``datetime.now`` at the use site.
            return
