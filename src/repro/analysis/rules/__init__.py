"""Rule modules; importing this package registers every rule.

Each module registers one rule id in
:data:`repro.analysis.base.ANALYSIS_RULES` via the ``@register_rule``
decorator, exactly as simulator components register in their layer
registries.  The driver imports this package lazily so the registry is
populated before any lookup.
"""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (registration side effects)
    digest,
    registries,
    rng,
    sets,
    slots,
    wallclock,
)
