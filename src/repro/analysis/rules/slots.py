"""``slots-on-hot-path``: per-event classes keep their ``__slots__``.

PR 3 bought a large share of its speedup by slotting the objects the
event loop allocates by the tens of thousands per run (``Event``,
``Reception``, ``Transmission``).  A new class added to one of those
modules without ``__slots__`` quietly reintroduces a per-instance
``__dict__`` — an allocation and a pointer chase on every event — and
nothing fails; throughput just erodes.  This rule makes the regression
visible at lint time.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict

from repro.analysis.base import Checker, ModuleContext, SourceRule, dotted_name, register_rule

#: Base classes that manage their own storage; subclasses are exempt.
_EXEMPT_BASES = {
    "Enum",
    "IntEnum",
    "StrEnum",
    "Flag",
    "IntFlag",
    "Exception",
    "BaseException",
    "Protocol",
    "ABC",
    "NamedTuple",
    "TypedDict",
}

#: Exception naming convention: ``...Error`` classes are not hot-path data.
_EXEMPT_SUFFIXES = ("Error", "Exception", "Warning")


def _has_slots(node: ast.ClassDef) -> bool:
    """Whether the class body assigns ``__slots__`` or uses ``@dataclass(slots=True)``."""
    for statement in node.body:
        targets = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call) and dotted_name(decorator.func).endswith("dataclass"):
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "slots"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return True
    return False


def _is_exempt(node: ast.ClassDef) -> bool:
    if node.name.endswith(_EXEMPT_SUFFIXES):
        return True
    for base in node.bases:
        name = dotted_name(base)
        tail = name.rpartition(".")[2]
        if tail in _EXEMPT_BASES or tail.endswith(_EXEMPT_SUFFIXES):
            return True
    return False


@register_rule
class SlotsOnHotPath(SourceRule):
    """Classes in the event-loop modules must declare ``__slots__``.

    Scoped to ``sim/engine.py``, ``sim/rng.py``, ``phy/radio.py``,
    ``phy/channel.py``, ``phy/error_models.py``, ``packet.py`` and the
    ``transport/`` package — the modules whose instances are allocated
    (or whose attributes are chased) per event, per reception, per
    decoded frame, per packet or per ACK (``sim/rng.py`` and
    ``error_models.py`` joined the list with the PR-8 slab/batched-RNG
    refactor; ``transport/`` joined with the congestion-control registry:
    segments, ACKs and controller state are touched on every delivery).
    A plain ``__slots__`` tuple or ``@dataclass(slots=True)`` both
    satisfy the rule; ``Enum``, exception and ``Protocol`` classes are
    exempt (their metaclasses manage storage).  This protects the PR-3
    allocation wins from silently regressing when a helper class lands
    in a hot module.
    """

    id = "slots-on-hot-path"
    title = "hot-path class without __slots__ reintroduces per-instance dicts"
    include = (
        "repro/sim/engine.py",
        "repro/sim/rng.py",
        "repro/phy/radio.py",
        "repro/phy/channel.py",
        "repro/phy/error_models.py",
        "repro/packet.py",
        "repro/transport/congestion.py",
        "repro/transport/dropscript.py",
        "repro/transport/host.py",
        "repro/transport/tcp.py",
        "repro/transport/udp.py",
    )

    def checker(self, ctx: ModuleContext) -> "_SlotsChecker":
        return _SlotsChecker(self, ctx)


class _SlotsChecker(Checker):
    def handlers(self) -> Dict[type, Callable[[ast.AST], None]]:
        return {ast.ClassDef: self._class}

    def _class(self, node: ast.ClassDef) -> None:
        if _is_exempt(node) or _has_slots(node):
            return
        self.emit(
            node,
            f"class {node.name} in a hot-path module has no __slots__; declare "
            "one (or @dataclass(slots=True)) so instances stay dict-free",
        )
