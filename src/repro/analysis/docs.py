"""Generated rule catalogue: render the live rule registry to Markdown.

``docs/ANALYSIS.md`` is generated from :data:`ANALYSIS_RULES` exactly
the way ``docs/COMPONENTS.md`` is generated from the component
registries (:mod:`repro.docs`): the committed copy is checked for
freshness in CI, and a rule without a docstring fails the build —
an unexplained rule cannot be complied with.

::

    python -m repro.analysis --write-docs     # (re)write docs/ANALYSIS.md
    python -m repro.analysis --check-docs     # exit 1 if the committed copy is stale
"""

from __future__ import annotations

import difflib
import inspect
from typing import List, Optional

from repro.analysis.base import ANALYSIS_RULES, ProjectRule, Rule
from repro.analysis.pragmas import PRAGMA_RULE_ID

#: Default location of the generated catalogue, relative to the repo root.
DEFAULT_OUTPUT = "docs/ANALYSIS.md"


class AnalysisDocsError(RuntimeError):
    """Raised when a registered rule cannot be documented (no docstring)."""


HEADER = """\
# Static analysis rules

<!-- GENERATED FILE - DO NOT EDIT.
     Regenerate with:  PYTHONPATH=src python -m repro.analysis --write-docs
     CI fails when this file is stale (python -m repro.analysis --check-docs). -->

`python -m repro.analysis` enforces the platform's determinism and
cache-soundness contracts mechanically (see `repro.analysis`).  The pass
exits non-zero on any finding and gates CI; run it with `--format json`
for machine-readable output, `--rule <id>` to focus on one rule, or
`--list` to print the catalogue below from the live registry.

## Suppressing a finding

A finding is suppressed by an inline pragma **with a justification** on
the offending line, or on a comment line directly above it:

```python
rng = np.random.default_rng(seed)  # repro: allow[no-unkeyed-rng] seed-scoped layout draw

# repro: allow[no-wall-clock] progress display only, never in results
started = time.perf_counter()
```

A pragma with no reason, an unknown rule id, or a malformed
`# repro:` comment is itself reported (rule id `pragma`), and the
`pragma` rule cannot be suppressed.

## Rule catalogue
"""


def _rule_scope(rule: Rule) -> str:
    if isinstance(rule, ProjectRule):
        return "project-wide (semi-static: imports the live package)"
    scope = ", ".join(f"`{pattern}`" for pattern in rule.include)
    if rule.allow_modules:
        scope += "; exempt: " + ", ".join(f"`{module}`" for module in rule.allow_modules)
    return scope


def _rule_section(rule_id: str, rule: Rule) -> List[str]:
    doc = inspect.getdoc(type(rule))
    if not doc or not doc.strip():
        raise AnalysisDocsError(
            f"analysis rule {rule_id!r}: rule class has no docstring; the generated "
            "catalogue needs the rationale a suppression reviewer reads"
        )
    lines = [
        f"### `{rule_id}`",
        "",
        f"**{rule.title}**",
        "",
        f"Scope: {_rule_scope(rule)}",
        "",
    ]
    lines.extend(doc.strip().splitlines())
    lines.append("")
    return lines


def generate_analysis_markdown() -> str:
    """The full ANALYSIS.md document, rendered from the live rule registry."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    lines = [HEADER]
    for rule_id in sorted(ANALYSIS_RULES.keys()):
        lines.extend(_rule_section(rule_id, ANALYSIS_RULES.lookup(rule_id)))
    lines.extend(
        [
            f"### `{PRAGMA_RULE_ID}`",
            "",
            "**malformed suppression pragma**",
            "",
            "Scope: every analyzed module (always on; not suppressible)",
            "",
            "Reports `# repro:` comments that are not well-formed",
            "`allow[rule-id] reason` pragmas: a missing reason, an unknown rule",
            "id, or broken syntax.  A malformed pragma looks like a suppression",
            "while suppressing nothing, which is worse than either a finding or",
            "a working pragma.",
            "",
        ]
    )
    return "\n".join(lines).rstrip() + "\n"


def check_freshness(path: str) -> Optional[str]:
    """None when ``path`` matches the generated document, else a unified diff."""
    expected = generate_analysis_markdown()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            committed = handle.read()
    except OSError:
        committed = ""
    if committed == expected:
        return None
    return "".join(
        difflib.unified_diff(
            committed.splitlines(keepends=True),
            expected.splitlines(keepends=True),
            fromfile=f"{path} (committed)",
            tofile=f"{path} (generated)",
        )
    )
