"""The analysis driver: file discovery, the shared walk, suppression.

One pass = parse each module under ``src/repro`` once, run every
in-scope :class:`~repro.analysis.base.SourceRule` over a single shared
tree walk, apply the file's ``# repro: allow[...]`` pragmas, then run
each :class:`~repro.analysis.base.ProjectRule` once.  The result is a
sorted, deduplicated list of :class:`~repro.analysis.findings.Finding`
records — empty on a clean tree, which is what CI gates on.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.base import (
    ANALYSIS_RULES,
    Checker,
    ModuleContext,
    ProjectContext,
    ProjectRule,
    Rule,
    SharedWalk,
    SourceRule,
)
from repro.analysis.findings import Finding, sorted_findings
from repro.analysis.pragmas import PRAGMA_RULE_ID, PragmaIndex

#: Files under ``src`` the pass never examines (nothing is generated
#: today; the hook exists so generated modules can be excluded later).
_EXCLUDED_MODULES: Tuple[str, ...] = ()


def repo_root() -> Path:
    """The repository root, derived from this file's location in ``src``."""
    return Path(__file__).resolve().parents[3]


def iter_modules(root: Optional[Path] = None) -> List[Tuple[str, str]]:
    """``(repo-relative path, src-relative module)`` for every analyzed file."""
    root = Path(root) if root is not None else repo_root()
    src = root / "src"
    modules: List[Tuple[str, str]] = []
    for path in sorted((src / "repro").rglob("*.py")):
        module = path.relative_to(src).as_posix()
        if module in _EXCLUDED_MODULES:
            continue
        modules.append((path.relative_to(root).as_posix(), module))
    return modules


def _load_rules(rule_ids: Optional[Sequence[str]]) -> List[Rule]:
    """Resolve requested rule ids (default: every registered rule).

    Importing :mod:`repro.analysis.rules` populates the registry; it is
    deferred to here so rule modules may themselves import the driver.
    """
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    if rule_ids is None:
        return [rule for _, rule in ANALYSIS_RULES.items()]
    return [ANALYSIS_RULES.lookup(rule_id) for rule_id in rule_ids]


def known_rule_ids() -> List[str]:
    """Every registered rule id (sorted), for the CLI and pragma validation."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return sorted(ANALYSIS_RULES.keys())


def _analyze_module(
    ctx: ModuleContext, rules: Iterable[SourceRule], validate_pragmas: bool
) -> List[Finding]:
    """Run the shared walk of ``ctx`` for every in-scope source rule."""
    checkers: List[Checker] = [
        rule.checker(ctx) for rule in rules if rule.applies_to(ctx.module)
    ]
    findings: List[Finding] = []
    if checkers:
        SharedWalk(checkers).visit(ctx.tree)
        for checker in checkers:
            findings.extend(checker.finish())
    findings = [
        finding
        for finding in findings
        if not ctx.pragmas.suppresses(finding.rule, finding.line)
    ]
    if validate_pragmas:
        findings.extend(ctx.pragmas.errors())
    return findings


def _module_context(path: str, module: str, source: str) -> ModuleContext:
    tree = ast.parse(source, filename=path)
    pragmas = PragmaIndex(path, source, known_rules=set(known_rule_ids()))
    return ModuleContext(path=path, module=module, source=source, tree=tree, pragmas=pragmas)


def analyze_source(
    source: str,
    module: str = "repro/_snippet_.py",
    rule_ids: Optional[Sequence[str]] = None,
    path: Optional[str] = None,
) -> List[Finding]:
    """Analyze one in-memory module (the test fixtures' entry point).

    ``module`` is the src-relative path the snippet pretends to live at,
    which is what rule scopes (hot-path dirs, allowlists) match against.
    """
    rules = _load_rules(rule_ids)
    source_rules = [rule for rule in rules if isinstance(rule, SourceRule)]
    ctx = _module_context(path or f"src/{module}", module, source)
    return sorted_findings(
        _analyze_module(ctx, source_rules, validate_pragmas=rule_ids is None)
    )


def analyze(
    root: Optional[Path] = None,
    rule_ids: Optional[Sequence[str]] = None,
    modules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run the full pass and return every surviving finding.

    ``rule_ids`` restricts the pass to the named rules (pragma-syntax
    validation only runs with the full set, so ``--rule X`` output stays
    focused).  ``modules`` restricts the source rules to src-relative
    module paths matching any of the given substrings.
    """
    root = Path(root) if root is not None else repo_root()
    rules = _load_rules(rule_ids)
    source_rules = [rule for rule in rules if isinstance(rule, SourceRule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]
    validate_pragmas = rule_ids is None

    all_modules = iter_modules(root)
    selected = all_modules
    if modules:
        selected = [
            (path, module)
            for path, module in all_modules
            if any(wanted in module or wanted in path for wanted in modules)
        ]

    findings: List[Finding] = []
    for path, module in selected:
        source = (root / path).read_text(encoding="utf-8")
        try:
            ctx = _module_context(path, module, source)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule=PRAGMA_RULE_ID,
                    path=path,
                    line=exc.lineno or 1,
                    message=f"module does not parse: {exc.msg}",
                )
            )
            continue
        findings.extend(_analyze_module(ctx, source_rules, validate_pragmas))

    if modules is None:
        project_ctx = ProjectContext(root=root, modules=tuple(all_modules))
        for rule in project_rules:
            findings.extend(rule.check_project(project_ctx))
    return sorted_findings(findings)
