"""Static analysis for the platform's determinism & cache-soundness contracts.

The simulator's core guarantees are *global* properties that no single
unit test can protect:

* bit-identical replays — every random draw flows through the keyed
  per-link streams of :class:`repro.sim.rng.RandomStreams`;
* sound sweep caching — every behaviour-bearing config field appears in
  the ``to_dict()`` payload hashed by
  :func:`repro.experiments.parallel.config_digest`;
* write-once registries whose entries stay importable and documented.

One forgotten ``np.random.default_rng(...)`` or one dataclass field
missing from ``to_dict()`` silently breaks those guarantees.  This
package enforces them mechanically: an AST-based lint pass (rules
registered in :data:`repro.analysis.base.ANALYSIS_RULES`, one shared
tree walk per file) plus a semi-static introspection layer that imports
the registries and serializable classes and checks them against their
own source.

Run it as ``python -m repro.analysis`` (CI gates on the exit status);
suppress an individual finding with an inline pragma::

    rng = np.random.default_rng(seed)  # repro: allow[no-unkeyed-rng] seed-scoped layout draw

The rule catalogue (ids, rationale, pragma syntax) is generated into
``docs/ANALYSIS.md`` the same way ``docs/COMPONENTS.md`` is.
"""

from __future__ import annotations

from repro.analysis.base import ANALYSIS_RULES, ProjectRule, SourceRule, register_rule
from repro.analysis.driver import analyze, analyze_source, iter_modules
from repro.analysis.findings import Finding
from repro.analysis.pragmas import PRAGMA_RULE_ID, PragmaIndex

__all__ = [
    "ANALYSIS_RULES",
    "Finding",
    "PRAGMA_RULE_ID",
    "PragmaIndex",
    "ProjectRule",
    "SourceRule",
    "analyze",
    "analyze_source",
    "iter_modules",
    "register_rule",
]
