"""Inline suppression pragmas: ``# repro: allow[rule-id] reason``.

A pragma acknowledges one specific finding where it occurs, with a
mandatory human-readable justification — the reviewed, greppable
alternative to globally weakening a rule.  It applies to findings on its
own line or, when written as a comment-only line, to the line directly
below it::

    rng = np.random.default_rng(seed)  # repro: allow[no-unkeyed-rng] seed-scoped layout draw

    # repro: allow[no-wall-clock] progress display only, never in results
    started = time.perf_counter()

Malformed pragmas are themselves findings (rule id ``pragma``): a
missing reason, an unknown rule id, or a ``# repro:`` comment that is
not an ``allow[...]`` form would otherwise rot silently while appearing
to suppress something.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.analysis.findings import Finding

#: Rule id under which malformed pragmas are reported.  Not suppressible.
PRAGMA_RULE_ID = "pragma"

#: A well-formed pragma comment: the *whole* comment reads
#: ``repro: allow`` + bracketed rule id + reason.
_ALLOW_RE = re.compile(r"^#+\s*repro:\s*allow\[([A-Za-z0-9_-]*)\]\s*(.*)$")

#: A comment that *starts* as a repro pragma (possibly malformed).  Only
#: comment tokens are scanned (never string literals), and only comments
#: that lead with the marker — prose merely mentioning the syntax does
#: not trigger.
_INTENT_RE = re.compile(r"^#+\s*repro\s*:")


def _comment_tokens(source: str):
    """``(line, column, text)`` for every comment token in ``source``.

    Tokenizing (rather than scanning raw lines) is what keeps pragma
    syntax *mentioned inside string literals and docstrings* — like this
    module's own documentation — from being parsed as pragmas.
    """
    comments = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
    except (tokenize.TokenError, IndentationError):
        # The driver only analyzes modules that already parsed; a
        # tokenizer hiccup should not take the pragma layer down with it.
        pass
    return comments


@dataclass(frozen=True)
class Pragma:
    """One parsed suppression: which rule, where, and why."""

    rule: str
    #: 1-indexed line the pragma comment sits on.
    line: int
    #: Line findings must sit on to be suppressed (the pragma's own line,
    #: or the next line for comment-only pragmas).
    target_line: int
    reason: str


class PragmaIndex:
    """All pragmas of one file, queryable by (rule, line)."""

    def __init__(self, path: str, source: str, known_rules: Set[str]) -> None:
        self.path = path
        self._suppressions: Set[Tuple[str, int]] = set()
        self._errors: List[Finding] = []
        self.pragmas: List[Pragma] = []
        self._parse(source, known_rules)

    def _parse(self, source: str, known_rules: Set[str]) -> None:
        lines = source.splitlines()
        for index, column, text in _comment_tokens(source):
            if not _INTENT_RE.match(text):
                continue
            match = _ALLOW_RE.match(text)
            if match is None:
                self._error(index, "malformed pragma; expected '# repro: allow[rule-id] reason'")
                continue
            rule, reason = match.group(1), match.group(2).strip()
            if not rule:
                self._error(index, "pragma names no rule; expected '# repro: allow[rule-id] reason'")
                continue
            if known_rules and rule not in known_rules:
                self._error(
                    index,
                    f"pragma allows unknown rule {rule!r}; known: {sorted(known_rules)}",
                )
                continue
            if not reason:
                self._error(
                    index,
                    f"pragma allow[{rule}] gives no reason; every suppression "
                    "must say why the violation is acceptable",
                )
                continue
            # A comment-only pragma line covers the statement below it;
            # a trailing pragma covers its own line.
            comment_only = not lines[index - 1][:column].strip() if index <= len(lines) else True
            target = index + 1 if comment_only else index
            self.pragmas.append(Pragma(rule=rule, line=index, target_line=target, reason=reason))
            self._suppressions.add((rule, target))

    def _error(self, line: int, message: str) -> None:
        self._errors.append(
            Finding(rule=PRAGMA_RULE_ID, path=self.path, line=line, message=message)
        )

    def suppresses(self, rule: str, line: int) -> bool:
        """Whether a finding of ``rule`` at ``line`` is pragma-suppressed."""
        return (rule, line) in self._suppressions

    def errors(self) -> List[Finding]:
        """Findings for every malformed pragma in the file."""
        return list(self._errors)

    def by_rule(self) -> Dict[str, List[Pragma]]:
        """Well-formed pragmas grouped by the rule they suppress."""
        grouped: Dict[str, List[Pragma]] = {}
        for pragma in self.pragmas:
            grouped.setdefault(pragma.rule, []).append(pragma)
        return grouped
