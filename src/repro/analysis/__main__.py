"""CLI for the determinism & cache-soundness static-analysis pass.

::

    python -m repro.analysis                     # full pass; exit 1 on findings
    python -m repro.analysis --rule no-unkeyed-rng
    python -m repro.analysis --format json       # machine-readable findings
    python -m repro.analysis --list              # rule catalogue (one line each)
    python -m repro.analysis --write-docs        # regenerate docs/ANALYSIS.md
    python -m repro.analysis --check-docs        # exit 1 if ANALYSIS.md is stale

Exit status: 0 = clean, 1 = findings (or stale docs), 2 = usage error.
CI runs the bare form plus ``--check-docs`` and gates on both.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.base import ANALYSIS_RULES
from repro.analysis.docs import (
    DEFAULT_OUTPUT,
    check_freshness,
    generate_analysis_markdown,
)
from repro.analysis.driver import analyze, known_rule_ids, repo_root

#: Schema version of the ``--format json`` document.
JSON_SCHEMA_VERSION = 1


def _render_text(findings, out) -> None:
    for finding in findings:
        print(finding.render(), file=out)
    noun = "finding" if len(findings) == 1 else "findings"
    print(f"{len(findings)} {noun}", file=out)


def _render_json(findings, root: Path, out) -> None:
    document = {
        "schema": JSON_SCHEMA_VERSION,
        "root": str(root),
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    json.dump(document, out, indent=2, sort_keys=True)
    out.write("\n")


def _list_rules(out) -> None:
    for rule_id in known_rule_ids():
        rule = ANALYSIS_RULES.lookup(rule_id)
        print(f"{rule_id}: {rule.title}", file=out)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism & cache-soundness static analysis over src/repro.",
    )
    parser.add_argument(
        "modules",
        nargs="*",
        metavar="MODULE",
        help="restrict source rules to modules whose path contains MODULE "
        "(project-wide rules are skipped when given)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="ID",
        help="run only this rule id (repeatable; see --list)",
    )
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--root", metavar="DIR", help="repository root (default: auto-detected)")
    parser.add_argument("--list", action="store_true", help="print the rule catalogue and exit")
    parser.add_argument(
        "--write-docs",
        action="store_true",
        help=f"regenerate {DEFAULT_OUTPUT} from the rule registry and exit",
    )
    parser.add_argument(
        "--check-docs",
        action="store_true",
        help=f"exit 1 (with a diff) if the committed {DEFAULT_OUTPUT} is stale",
    )
    parser.add_argument(
        "--docs-output",
        default=None,
        metavar="PATH",
        help=f"where --write-docs/--check-docs look (default: <root>/{DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    root = Path(args.root) if args.root else repo_root()

    if args.list:
        _list_rules(sys.stdout)
        return 0

    docs_path = args.docs_output or str(root / DEFAULT_OUTPUT)
    if args.write_docs:
        markdown = generate_analysis_markdown()
        with open(docs_path, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        print(f"wrote {docs_path}")
        return 0
    if args.check_docs:
        diff = check_freshness(docs_path)
        if diff is None:
            print(f"{docs_path} is up to date")
            return 0
        print(diff, end="")
        print(
            f"\n{docs_path} is stale; regenerate with: "
            "PYTHONPATH=src python -m repro.analysis --write-docs"
        )
        return 1

    if args.rules:
        unknown = [rule for rule in args.rules if rule not in known_rule_ids()]
        if unknown:
            parser.error(
                f"unknown rule id(s) {unknown}; known: {known_rule_ids()}"
            )

    findings = analyze(
        root=root,
        rule_ids=args.rules,
        modules=args.modules or None,
    )
    if args.format == "json":
        _render_json(findings, root, sys.stdout)
    else:
        _render_text(findings, sys.stdout)
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
