"""Serializable mobility configuration for scenarios.

:class:`MobilitySpec` is the declarative description of a scenario's
mobility — model name, model parameters, tick/re-estimation cadence —
that rides inside :class:`~repro.experiments.runner.ScenarioConfig`.  It
round-trips losslessly through ``to_dict``/``from_dict`` (the sweep
cache hashes that dict), and :meth:`build_model` turns it into a live
:class:`~repro.mobility.models.MobilityModel` at network-build time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mobility.models import MOBILITY_MODELS, Bounds, MobilityModel
from repro.serialization import require_known_keys


def _model_names() -> tuple:
    return MOBILITY_MODELS.names()


#: Model names accepted by :class:`MobilitySpec` (the registry's contents).
MODEL_NAMES = _model_names()


@dataclass
class MobilitySpec:
    """Everything needed to reconstruct a scenario's mobility, JSON-safely."""

    model: str = "static"
    #: How often node positions are advanced (simulated seconds).
    update_interval_s: float = 0.05
    #: How often the ETX graph / routes are re-estimated; 0 disables.
    reestimate_interval_s: float = 0.25
    #: Node ids allowed to move; None means every node.
    mobile_nodes: Optional[List[int]] = None
    #: Model-specific parameters (see each model's constructor).
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.model not in MOBILITY_MODELS:
            raise ValueError(
                f"unknown mobility model {self.model!r}; known: {_model_names()}"
            )
        if self.update_interval_s <= 0:
            raise ValueError("update_interval_s must be positive")
        if self.reestimate_interval_s < 0:
            raise ValueError("reestimate_interval_s must be >= 0")

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def random_waypoint(
        cls,
        speed_mps: float,
        speed_min_mps: Optional[float] = None,
        pause_s: float = 0.0,
        bounds: Optional[Bounds] = None,
        **kwargs,
    ) -> "MobilitySpec":
        """Random-waypoint spec at (up to) ``speed_mps`` m/s."""
        params: Dict[str, object] = {
            "speed_min_mps": float(speed_mps if speed_min_mps is None else speed_min_mps),
            "speed_max_mps": float(speed_mps),
            "pause_s": float(pause_s),
        }
        if bounds is not None:
            params["bounds"] = [float(v) for v in bounds]
        return cls(model="random_waypoint", params=params, **kwargs)

    @classmethod
    def gauss_markov(
        cls,
        mean_speed_mps: float,
        alpha: float = 0.85,
        speed_std_mps: float = 0.3,
        heading_std_rad: float = 0.5,
        bounds: Optional[Bounds] = None,
        **kwargs,
    ) -> "MobilitySpec":
        params: Dict[str, object] = {
            "mean_speed_mps": float(mean_speed_mps),
            "alpha": float(alpha),
            "speed_std_mps": float(speed_std_mps),
            "heading_std_rad": float(heading_std_rad),
        }
        if bounds is not None:
            params["bounds"] = [float(v) for v in bounds]
        return cls(model="gauss_markov", params=params, **kwargs)

    @classmethod
    def trace(
        cls, traces: Dict[int, List[Tuple[float, float, float]]], **kwargs
    ) -> "MobilitySpec":
        """Spec replaying explicit ``{node_id: [(t_s, x, y), ...]}`` samples."""
        params = {
            "traces": {
                str(node_id): [[float(t), float(x), float(y)] for t, x, y in samples]
                for node_id, samples in traces.items()
            }
        }
        return cls(model="trace", params=params, **kwargs)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    @property
    def is_static(self) -> bool:
        """Whether this spec can never move a node (implies zero sim impact).

        Derived from the spec fields alone — mirroring each model's
        ``is_static`` — so reading the property neither constructs a model
        nor re-parses trace samples (``build_network`` consults it for
        every grid point of a sweep).
        """
        if self.model == "static":
            return True
        if self.mobile_nodes is not None and not self.mobile_nodes:
            return True  # an explicitly empty allow-list pins every node
        if self.model == "random_waypoint":
            return float(self.params.get("speed_max_mps", 1.0)) <= 0.0
        if self.model == "gauss_markov":
            return (
                float(self.params.get("mean_speed_mps", 1.0)) <= 0.0
                and float(self.params.get("speed_std_mps", 0.3)) <= 0.0
            )
        return not self.params.get("traces")  # "trace"

    def build_model(self) -> MobilityModel:
        """Instantiate the configured model through the registry.

        The registered builder validates the model-specific parameters
        (unknown keys raise a ValueError naming the model).
        """
        params = dict(self.params)
        bounds = params.pop("bounds", None)
        if bounds is not None:
            bounds = tuple(float(v) for v in bounds)
        builder = MOBILITY_MODELS.lookup(self.model)
        return builder(params, bounds)

    # ------------------------------------------------------------------
    # Serialization (sweep cache / cross-process exchange)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-safe representation (hashed by the sweep cache)."""
        return {
            "model": self.model,
            "update_interval_s": float(self.update_interval_s),
            "reestimate_interval_s": float(self.reestimate_interval_s),
            "mobile_nodes": None
            if self.mobile_nodes is None
            else sorted(int(n) for n in self.mobile_nodes),
            "params": _canonical_params(self.params),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MobilitySpec":
        require_known_keys(
            data,
            ("model", "update_interval_s", "reestimate_interval_s", "mobile_nodes", "params"),
            cls.__name__,
        )
        mobile = data.get("mobile_nodes")
        return cls(
            model=str(data["model"]),
            update_interval_s=float(data.get("update_interval_s", 0.05)),
            reestimate_interval_s=float(data.get("reestimate_interval_s", 0.25)),
            mobile_nodes=None if mobile is None else [int(n) for n in mobile],
            params=dict(data.get("params", {})),
        )


def _canonical_params(params: Dict[str, object]) -> Dict[str, object]:
    """Normalise parameter values so equal specs serialize identically."""
    canonical: Dict[str, object] = {}
    for key in sorted(params):
        value = params[key]
        if key == "traces":
            canonical[key] = {
                str(node_id): [[float(t), float(x), float(y)] for t, x, y in samples]
                for node_id, samples in sorted(value.items(), key=lambda item: int(item[0]))
            }
        elif key == "bounds":
            canonical[key] = [float(v) for v in value]
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            canonical[key] = float(value)
        else:
            canonical[key] = value
    return canonical
