"""Scheduling mobility into the discrete-event loop.

The :class:`MobilityManager` is the bridge between a pure
:class:`~repro.mobility.models.MobilityModel` and the running simulation:
every ``update_interval_ns`` it advances the model for each mobile node,
moves the node's radio (so the channel computes path loss from *current*
positions and drops any cached per-pair geometry), and every
``reestimate_interval_ns`` it fires the registered re-estimation
callbacks — the hook the network layer uses to rebuild the ETX
connectivity graph and refresh routes/forwarder lists mid-run.

Two properties the rest of the system relies on:

* **Static short-circuit** — a model whose ``is_static`` is true causes
  the manager to schedule *nothing*.  The event sequence (and therefore
  ``Simulator.processed_events`` and every tie-break) is bit-identical
  to a run without mobility.
* **Bounded work** — ticks re-arm themselves one at a time; stopping the
  manager cancels the pending events, so a manager never outlives its
  scenario.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.mobility.models import MobilityModel, Position
from repro.sim.engine import Event, Simulator
from repro.sim.units import ns_to_seconds


class MobilityManager:
    """Drives a mobility model from the simulator's event loop."""

    def __init__(
        self,
        sim: Simulator,
        model: MobilityModel,
        rng: np.random.Generator,
        update_interval_ns: int,
        move_node: Callable[[int, Position], None],
        mobile_nodes: Optional[Iterable[int]] = None,
    ) -> None:
        if update_interval_ns <= 0:
            raise ValueError("update_interval_ns must be positive")
        self.sim = sim
        self.model = model
        self.rng = rng
        self.update_interval_ns = int(update_interval_ns)
        self._move_node = move_node
        self._mobile_filter: Optional[Set[int]] = (
            None if mobile_nodes is None else {int(n) for n in mobile_nodes}
        )
        self._node_ids: List[int] = []
        #: (interval_ns, callback) per registration; each fires on its own cadence.
        self._reestimations: List[Tuple[int, Callable[[], None]]] = []
        self._tick_event: Optional[Event] = None
        self._reestimate_events: List[Event] = []
        self._last_advance_ns: int = 0
        self._stopped: bool = False
        self.updates: int = 0
        self.reestimations: int = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_reestimation(self, interval_ns: int, callback: Callable[[], None]) -> None:
        """Register a periodic link re-estimation callback (e.g. ETX rebuild).

        Each registration keeps its own cadence; callbacks always observe
        positions advanced to the callback's own timestamp.
        """
        if interval_ns <= 0:
            raise ValueError("reestimate interval must be positive")
        self._reestimations.append((int(interval_ns), callback))

    def start(self, positions: Mapping[int, Position]) -> None:
        """Install the initial placement and begin ticking (unless static)."""
        ordered = {node_id: positions[node_id] for node_id in sorted(positions)}
        self.model.setup(ordered, self.rng)
        self._node_ids = [
            node_id
            for node_id in sorted(ordered)
            if self._mobile_filter is None or node_id in self._mobile_filter
        ]
        if self.model.is_static or not self._node_ids:
            # Bit-identical static runs: a static model — or a mobile-node
            # filter that matches nothing — schedules no events.
            return
        self._stopped = False
        self._last_advance_ns = self.sim.now
        self._tick_event = self.sim.schedule(self.update_interval_ns, self._tick)
        self._reestimate_events = [
            self.sim.schedule(interval_ns, self._reestimate, index)
            for index, (interval_ns, _callback) in enumerate(self._reestimations)
        ]

    def stop(self) -> None:
        """Cancel pending ticks; safe to call from inside a re-estimation callback."""
        self._stopped = True
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None
        for event in self._reestimate_events:
            event.cancel()
        self._reestimate_events = []

    @property
    def active(self) -> bool:
        return self._tick_event is not None

    # ------------------------------------------------------------------
    # Event-loop callbacks
    # ------------------------------------------------------------------
    def _advance_positions(self) -> None:
        """Advance every mobile node to the current simulation time.

        Shared by ticks and re-estimations: a re-estimation that fires at
        the same timestamp as (but before) a position tick must not read
        one-interval-stale geometry, so whichever event runs first does the
        advancing and the other sees ``dt == 0`` and leaves state alone.
        """
        now_ns = self.sim.now
        if now_ns <= self._last_advance_ns:
            return
        dt_s = ns_to_seconds(now_ns - self._last_advance_ns)
        now_s = ns_to_seconds(now_ns)
        self._last_advance_ns = now_ns
        for node_id in self._node_ids:
            before = self.model.position(node_id)
            after = self.model.advance(node_id, now_s, dt_s, self.rng)
            if after != before:
                self._move_node(node_id, after)

    def _tick(self) -> None:
        if self._stopped:
            return
        self._advance_positions()
        self.updates += 1
        if not self._stopped:  # a move callback may have stopped the manager
            self._tick_event = self.sim.schedule(self.update_interval_ns, self._tick)

    def _reestimate(self, index: int) -> None:
        if self._stopped:
            return
        self._advance_positions()
        self.reestimations += 1
        interval_ns, callback = self._reestimations[index]
        callback()
        if not self._stopped:  # the callback itself may have called stop()
            self._reestimate_events[index] = self.sim.schedule(
                interval_ns, self._reestimate, index
            )
