"""Mobility models: how station positions evolve over time.

Each model answers one question — *where is node n at time t + dt, given
where it was at t* — through :meth:`MobilityModel.advance`.  The classic
models from the ad-hoc networking literature are provided:

* :class:`StaticMobility` — nobody moves (the paper's setting);
* :class:`RandomWaypoint` — pick a destination uniformly in a rectangle,
  travel to it at a uniformly drawn speed, pause, repeat;
* :class:`GaussMarkov` — temporally correlated speed and heading, tuned
  by a memory parameter ``alpha`` (1 = straight line, 0 = Brownian);
* :class:`TraceMobility` — replay externally recorded ``(t, x, y)``
  samples with piecewise-linear interpolation (e.g. GPS logs of a real
  deployment).

Models are deliberately free of any simulator coupling: they consume a
``numpy`` generator passed in by the caller (the
:class:`~repro.mobility.manager.MobilityManager` hands them the named
``"mobility"`` stream) and keep all per-node state internally, which is
what makes trajectories a pure function of ``(seed, model parameters)``.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

Position = Tuple[float, float]
#: Rectangle the mobile nodes are confined to: (min_x, min_y, max_x, max_y).
Bounds = Tuple[float, float, float, float]

#: Padding added around the initial placement when no bounds are given, so
#: nodes have somewhere to go even in degenerate (collinear) layouts.
DEFAULT_BOUNDS_MARGIN_M = 50.0


def bounds_from_positions(
    positions: Mapping[int, Position], margin_m: float = DEFAULT_BOUNDS_MARGIN_M
) -> Bounds:
    """Bounding box of ``positions`` expanded by ``margin_m`` on every side."""
    if not positions:
        return (-margin_m, -margin_m, margin_m, margin_m)
    xs = [x for x, _ in positions.values()]
    ys = [y for _, y in positions.values()]
    return (min(xs) - margin_m, min(ys) - margin_m, max(xs) + margin_m, max(ys) + margin_m)


def _clamp(value: float, low: float, high: float) -> float:
    return low if value < low else high if value > high else value


def _check_bounds(bounds: Optional[Bounds]) -> Optional[Bounds]:
    """Normalise and sanity-check an explicit bounds rectangle."""
    if bounds is None:
        return None
    min_x, min_y, max_x, max_y = (float(v) for v in bounds)
    if not all(math.isfinite(v) for v in (min_x, min_y, max_x, max_y)):
        raise ValueError(f"bounds must be finite, got {bounds!r}")
    if min_x > max_x or min_y > max_y:
        raise ValueError(f"bounds must satisfy min <= max, got {bounds!r}")
    return (min_x, min_y, max_x, max_y)


class MobilityModel(abc.ABC):
    """Evolves node positions; all state lives inside the model instance."""

    @property
    @abc.abstractmethod
    def is_static(self) -> bool:
        """True when the model can never move any node.

        The manager uses this to schedule *no* events for static models,
        which keeps static runs bit-identical to a build without mobility.
        """

    def setup(self, positions: Mapping[int, Position], rng: np.random.Generator) -> None:
        """Install the initial placement (called once, before the run starts)."""
        self._positions: Dict[int, Position] = {
            node_id: (float(x), float(y)) for node_id, (x, y) in positions.items()
        }

    def position(self, node_id: int) -> Position:
        """Current position of ``node_id`` as this model last computed it."""
        return self._positions[node_id]

    @abc.abstractmethod
    def advance(
        self, node_id: int, now_s: float, dt_s: float, rng: np.random.Generator
    ) -> Position:
        """Move ``node_id`` forward by ``dt_s`` seconds and return its new position.

        ``now_s`` is the simulation time *after* the step (used by trace
        playback); models that only integrate velocities may ignore it.
        """


class StaticMobility(MobilityModel):
    """The degenerate model: everything stays exactly where it was placed."""

    @property
    def is_static(self) -> bool:
        return True

    def advance(
        self, node_id: int, now_s: float, dt_s: float, rng: np.random.Generator
    ) -> Position:
        return self._positions[node_id]


class RandomWaypoint(MobilityModel):
    """The random-waypoint model (Johnson & Maltz).

    Each node repeatedly (1) draws a destination uniformly inside
    ``bounds``, (2) travels towards it in a straight line at a speed drawn
    uniformly from ``[speed_min, speed_max]`` m/s, (3) pauses ``pause_s``
    seconds, and starts over.  ``speed_max == 0`` degrades to
    :class:`StaticMobility` (and reports ``is_static`` accordingly).
    """

    def __init__(
        self,
        speed_min_mps: float = 0.0,
        speed_max_mps: float = 1.0,
        pause_s: float = 0.0,
        bounds: Optional[Bounds] = None,
    ) -> None:
        if speed_min_mps < 0 or speed_max_mps < 0:
            raise ValueError("speeds must be non-negative")
        if speed_min_mps > speed_max_mps:
            raise ValueError(
                f"speed_min ({speed_min_mps}) must not exceed speed_max ({speed_max_mps})"
            )
        if pause_s < 0:
            raise ValueError("pause_s must be non-negative")
        self.speed_min_mps = float(speed_min_mps)
        self.speed_max_mps = float(speed_max_mps)
        self.pause_s = float(pause_s)
        self.bounds = _check_bounds(bounds)
        self._waypoint: Dict[int, Position] = {}
        self._speed: Dict[int, float] = {}
        self._pause_left: Dict[int, float] = {}

    @property
    def is_static(self) -> bool:
        return self.speed_max_mps <= 0.0

    def setup(self, positions: Mapping[int, Position], rng: np.random.Generator) -> None:
        super().setup(positions, rng)
        if self.bounds is None:
            self.bounds = bounds_from_positions(positions)
        self._waypoint.clear()
        self._speed.clear()
        self._pause_left = {node_id: 0.0 for node_id in positions}

    def _pick_leg(self, node_id: int, rng: np.random.Generator) -> None:
        min_x, min_y, max_x, max_y = self.bounds  # type: ignore[misc]
        self._waypoint[node_id] = (
            float(rng.uniform(min_x, max_x)),
            float(rng.uniform(min_y, max_y)),
        )
        self._speed[node_id] = float(rng.uniform(self.speed_min_mps, self.speed_max_mps))

    def advance(
        self, node_id: int, now_s: float, dt_s: float, rng: np.random.Generator
    ) -> Position:
        if self.is_static:
            return self._positions[node_id]
        remaining = dt_s
        x, y = self._positions[node_id]
        while remaining > 1e-12:
            pause = self._pause_left.get(node_id, 0.0)
            if pause > 0.0:
                consumed = min(pause, remaining)
                self._pause_left[node_id] = pause - consumed
                remaining -= consumed
                continue
            if node_id not in self._waypoint:
                self._pick_leg(node_id, rng)
            wx, wy = self._waypoint[node_id]
            speed = self._speed[node_id]
            distance = math.hypot(wx - x, wy - y)
            if speed <= 0.0 or distance <= 1e-9:
                # A zero-speed or zero-length leg would never consume time
                # (degenerate bounds can put the waypoint on top of the node);
                # treat it as a pause so the loop always terminates.
                self._pause_left[node_id] = self.pause_s if self.pause_s > 0 else remaining
                del self._waypoint[node_id]
                continue
            travel_time = distance / speed
            if travel_time <= remaining:
                x, y = wx, wy
                remaining -= travel_time
                del self._waypoint[node_id]
                self._pause_left[node_id] = self.pause_s
            else:
                fraction = (speed * remaining) / distance
                x += (wx - x) * fraction
                y += (wy - y) * fraction
                remaining = 0.0
        self._positions[node_id] = (x, y)
        return self._positions[node_id]


class GaussMarkov(MobilityModel):
    """Gauss-Markov mobility (Liang & Haas): correlated speed and heading.

    Per step: ``s' = a*s + (1-a)*mean + sqrt(1-a^2)*sigma_s*w`` and the same
    recursion for the heading, then integrate.  Nodes reflect off the
    ``bounds`` rectangle so they stay inside the simulated area.
    """

    def __init__(
        self,
        mean_speed_mps: float = 1.0,
        alpha: float = 0.85,
        speed_std_mps: float = 0.3,
        heading_std_rad: float = 0.5,
        bounds: Optional[Bounds] = None,
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must lie in [0, 1]")
        if mean_speed_mps < 0 or speed_std_mps < 0 or heading_std_rad < 0:
            raise ValueError("speed/std parameters must be non-negative")
        self.mean_speed_mps = float(mean_speed_mps)
        self.alpha = float(alpha)
        self.speed_std_mps = float(speed_std_mps)
        self.heading_std_rad = float(heading_std_rad)
        self.bounds = _check_bounds(bounds)
        self._speed: Dict[int, float] = {}
        self._heading: Dict[int, float] = {}

    @property
    def is_static(self) -> bool:
        return self.mean_speed_mps <= 0.0 and self.speed_std_mps <= 0.0

    def setup(self, positions: Mapping[int, Position], rng: np.random.Generator) -> None:
        super().setup(positions, rng)
        if self.bounds is None:
            self.bounds = bounds_from_positions(positions)
        self._speed = {node_id: self.mean_speed_mps for node_id in positions}
        # Deterministic order: dict iteration follows insertion, which setup
        # receives already sorted from the manager.
        self._heading = {
            node_id: float(rng.uniform(0.0, 2.0 * math.pi)) for node_id in positions
        }

    def advance(
        self, node_id: int, now_s: float, dt_s: float, rng: np.random.Generator
    ) -> Position:
        if self.is_static:
            return self._positions[node_id]
        a = self.alpha
        noise_scale = math.sqrt(max(0.0, 1.0 - a * a))
        speed = (
            a * self._speed[node_id]
            + (1.0 - a) * self.mean_speed_mps
            + noise_scale * self.speed_std_mps * float(rng.normal())
        )
        speed = max(0.0, speed)
        # Blend headings via the wrapped angular difference: raw radians would
        # e.g. pull a 6.2 rad heading the long way round towards a 0.1 rad
        # steer target instead of nudging it across the 0/2-pi seam.
        current_heading = self._heading[node_id]
        steer = math.remainder(self._mean_heading(node_id) - current_heading, math.tau)
        heading = (
            current_heading
            + (1.0 - a) * steer
            + noise_scale * self.heading_std_rad * float(rng.normal())
        )
        x, y = self._positions[node_id]
        x += speed * dt_s * math.cos(heading)
        y += speed * dt_s * math.sin(heading)
        min_x, min_y, max_x, max_y = self.bounds  # type: ignore[misc]
        # Reflect at the walls (flip the offending heading component).
        if x < min_x or x > max_x:
            x = _clamp(x, min_x, max_x)
            heading = math.pi - heading
        if y < min_y or y > max_y:
            y = _clamp(y, min_y, max_y)
            heading = -heading
        self._speed[node_id] = speed
        self._heading[node_id] = heading % (2.0 * math.pi)
        self._positions[node_id] = (x, y)
        return self._positions[node_id]

    def _mean_heading(self, node_id: int) -> float:
        """Drift target for the heading: steer towards the area centre near walls."""
        min_x, min_y, max_x, max_y = self.bounds  # type: ignore[misc]
        x, y = self._positions[node_id]
        margin_x = 0.1 * (max_x - min_x)
        margin_y = 0.1 * (max_y - min_y)
        near_wall = (
            x < min_x + margin_x
            or x > max_x - margin_x
            or y < min_y + margin_y
            or y > max_y - margin_y
        )
        if near_wall:
            return math.atan2((min_y + max_y) / 2.0 - y, (min_x + max_x) / 2.0 - x)
        return self._heading[node_id]


class TraceMobility(MobilityModel):
    """Replay recorded position samples with piecewise-linear interpolation.

    ``traces`` maps a node id to a time-sorted list of ``(t_s, x, y)``
    samples.  Before the first sample a node sits at that sample's
    position, after the last it stays at the last; nodes without a trace
    never move.  Useful both for replaying real GPS logs and for writing
    exactly-scripted test scenarios.
    """

    def __init__(self, traces: Mapping[int, Sequence[Tuple[float, float, float]]]) -> None:
        self.traces: Dict[int, List[Tuple[float, float, float]]] = {}
        for node_id, samples in traces.items():
            ordered = [(float(t), float(x), float(y)) for t, x, y in samples]
            if any(b[0] < a[0] for a, b in zip(ordered, ordered[1:])):
                raise ValueError(f"trace for node {node_id} is not time-sorted")
            if not ordered:
                raise ValueError(f"trace for node {node_id} is empty")
            self.traces[int(node_id)] = ordered

    @property
    def is_static(self) -> bool:
        # Any trace — even a constant one — may demand a position that
        # differs from the node's topology placement, so only a trace-less
        # player is truly inert.
        return not self.traces

    def advance(
        self, node_id: int, now_s: float, dt_s: float, rng: np.random.Generator
    ) -> Position:
        samples = self.traces.get(node_id)
        if not samples:
            return self._positions[node_id]
        position = self._interpolate(samples, now_s)
        self._positions[node_id] = position
        return position

    @staticmethod
    def _interpolate(
        samples: Sequence[Tuple[float, float, float]], now_s: float
    ) -> Position:
        if now_s <= samples[0][0]:
            return (samples[0][1], samples[0][2])
        if now_s >= samples[-1][0]:
            return (samples[-1][1], samples[-1][2])
        for (t0, x0, y0), (t1, x1, y1) in zip(samples, samples[1:]):
            if t0 <= now_s <= t1:
                if t1 == t0:
                    return (x1, y1)
                fraction = (now_s - t0) / (t1 - t0)
                return (x0 + (x1 - x0) * fraction, y0 + (y1 - y0) * fraction)
        return (samples[-1][1], samples[-1][2])  # pragma: no cover - unreachable


# ----------------------------------------------------------------------
# The mobility model registry
# ----------------------------------------------------------------------
from repro.registry import Registry  # noqa: E402  (registry carries no deps)

#: Named mobility-model builders; :class:`~repro.mobility.spec.MobilitySpec`
#: validates against and instantiates through this registry, so a new model
#: registered here is immediately addressable from scenario specs and the
#: CLI (``--set mobility=<name>``).
MOBILITY_MODELS = Registry("mobility model")


def register_mobility_model(name: str):
    """Decorator registering ``build(params, bounds) -> MobilityModel``.

    ``params`` is the spec's model-parameter dict (the builder pops what it
    understands and must reject leftovers); ``bounds`` is the already
    normalised movement rectangle or None.
    """
    return MOBILITY_MODELS.register(name)


@register_mobility_model("static")
def _build_static(params: Dict[str, object], bounds: Optional[Bounds]) -> MobilityModel:
    """Nobody moves — the paper's fixed-placement setting (schedules no events)."""
    if params:
        raise ValueError(f"static mobility takes no parameters, got {sorted(params)}")
    return StaticMobility()


_build_static.doc_params = ()


@register_mobility_model("random_waypoint")
def _build_random_waypoint(params: Dict[str, object], bounds: Optional[Bounds]) -> MobilityModel:
    """Random waypoint: travel to uniform destinations at a uniform speed, pause, repeat."""
    model = RandomWaypoint(
        speed_min_mps=float(params.pop("speed_min_mps", 0.0)),
        speed_max_mps=float(params.pop("speed_max_mps", 1.0)),
        pause_s=float(params.pop("pause_s", 0.0)),
        bounds=bounds,
    )
    if params:
        raise ValueError(f"unknown random_waypoint parameters: {sorted(params)}")
    return model


_build_random_waypoint.doc_params = ("speed_min_mps=0.0", "speed_max_mps=1.0", "pause_s=0.0")


@register_mobility_model("gauss_markov")
def _build_gauss_markov(params: Dict[str, object], bounds: Optional[Bounds]) -> MobilityModel:
    """Gauss-Markov mobility: temporally correlated speed and heading (memory ``alpha``)."""
    model = GaussMarkov(
        mean_speed_mps=float(params.pop("mean_speed_mps", 1.0)),
        alpha=float(params.pop("alpha", 0.85)),
        speed_std_mps=float(params.pop("speed_std_mps", 0.3)),
        heading_std_rad=float(params.pop("heading_std_rad", 0.5)),
        bounds=bounds,
    )
    if params:
        raise ValueError(f"unknown gauss_markov parameters: {sorted(params)}")
    return model


_build_gauss_markov.doc_params = (
    "mean_speed_mps=1.0",
    "alpha=0.85",
    "speed_std_mps=0.3",
    "heading_std_rad=0.5",
)


@register_mobility_model("trace")
def _build_trace(params: Dict[str, object], bounds: Optional[Bounds]) -> MobilityModel:
    """Replay recorded ``(t, x, y)`` position samples with linear interpolation."""
    traces = params.pop("traces", {})
    if params:
        raise ValueError(f"unknown trace-mobility parameters: {sorted(params)}")
    return TraceMobility(
        {
            int(node_id): [(float(t), float(x), float(y)) for t, x, y in samples]
            for node_id, samples in traces.items()
        }
    )


_build_trace.doc_params = ("traces={node_id: [(t_s, x, y), ...]}",)
