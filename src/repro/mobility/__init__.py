"""Mobility and dynamic topology: time-varying node positions.

The paper evaluates RIPPLE on fixed layouts (Fig. 1, lines, Wigle,
Roofnet); this package removes that assumption.  A
:class:`~repro.mobility.models.MobilityModel` describes how stations
move, a :class:`~repro.mobility.manager.MobilityManager` schedules
position-update ticks into the existing event loop (moving the radios so
the channel sees *current* positions for every transmission), and a
serializable :class:`~repro.mobility.spec.MobilitySpec` plugs the whole
thing into :class:`~repro.experiments.runner.ScenarioConfig` so mobile
scenarios flow through the sweep runner and result cache like any other.

Determinism rules (the test-suite enforces all three):

* mobility draws come from their own named
  :class:`~repro.sim.rng.RandomStreams` stream (``"mobility"``), so
  enabling mobility never perturbs MAC/channel/traffic sample paths;
* a static model (``speed == 0``) schedules **no** events, which keeps
  static runs bit-identical to pre-mobility builds;
* parallel sweep results equal serial ones because the model state lives
  entirely inside the scenario.
"""

from repro.mobility.manager import MobilityManager
from repro.mobility.models import (
    MOBILITY_MODELS,
    GaussMarkov,
    MobilityModel,
    RandomWaypoint,
    StaticMobility,
    TraceMobility,
    register_mobility_model,
)
from repro.mobility.spec import MobilitySpec

__all__ = [
    "MOBILITY_MODELS",
    "register_mobility_model",
    "GaussMarkov",
    "MobilityManager",
    "MobilityModel",
    "MobilitySpec",
    "RandomWaypoint",
    "StaticMobility",
    "TraceMobility",
]
