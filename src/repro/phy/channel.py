"""The shared broadcast medium.

The channel is the single object through which every transmission flows.
For each transmission it decides, per potential receiver,

* whether the signal is strong enough to be *sensed* (contributes to
  carrier sensing and can collide with other receptions),
* whether it is strong enough to be *decoded* (candidate for delivery),

using the shadowing propagation model with an independent per-link,
per-frame fading draw — exactly the independence assumption the paper
relies on ("losses between the source and different forwarders are
independent").  Signals below the carrier-sense threshold are invisible,
which is what creates hidden terminals in the Fig. 5(b), Wigle and
Roofnet scenarios.

Bit errors (the i.i.d. BER model) are applied at reception completion by
the receiving radio via :meth:`WirelessChannel.apply_bit_errors`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.phy.error_models import BitErrorModel, FrameErrorResult
from repro.phy.params import PhyParams
from repro.phy.propagation import ShadowingPropagation, propagation_delay_ns
from repro.phy.radio import Radio, Reception
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


@dataclass
class Transmission:
    """A frame in flight on the medium."""

    transmission_id: int
    frame: object
    sender: Radio
    start_time: int
    duration_ns: int

    @property
    def end_time(self) -> int:
        return self.start_time + self.duration_ns


@dataclass
class ChannelStats:
    """Medium-wide counters used by experiments and tests."""

    transmissions: int = 0
    deliveries_attempted: int = 0


class WirelessChannel:
    """Shared wireless medium connecting every radio in the scenario."""

    def __init__(
        self,
        sim: Simulator,
        params: PhyParams,
        propagation: Optional[ShadowingPropagation] = None,
        error_model: Optional[BitErrorModel] = None,
        rng: Optional[RandomStreams] = None,
        model_propagation_delay: bool = True,
    ) -> None:
        self.sim = sim
        self.params = params
        self.propagation = propagation or ShadowingPropagation()
        self.error_model = error_model or BitErrorModel()
        self.rng = rng or RandomStreams()
        self.model_propagation_delay = model_propagation_delay
        self.stats = ChannelStats()
        self._radios: List[Radio] = []
        self._ids = itertools.count()
        #: Cached pairwise distances, dropped whenever any radio moves.
        self._distance_cache: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, radio: Radio) -> None:
        """Add a radio to the medium (called from ``Radio.__init__``)."""
        self._radios.append(radio)

    @property
    def radios(self) -> List[Radio]:
        return list(self._radios)

    # ------------------------------------------------------------------
    # Transmission dispatch
    # ------------------------------------------------------------------
    def start_transmission(self, sender: Radio, frame, duration_ns: int) -> Transmission:
        """Propagate ``frame`` from ``sender`` to every radio that can hear it."""
        transmission = Transmission(
            transmission_id=next(self._ids),
            frame=frame,
            sender=sender,
            start_time=self.sim.now,
            duration_ns=int(duration_ns),
        )
        self.stats.transmissions += 1
        shadow_rng = self.rng.stream("shadowing")
        for radio in self._radios:
            if radio is sender:
                continue
            distance = self.distance(sender, radio)
            power = self.propagation.received_power_dbm(
                self.params.tx_power_dbm, distance, shadow_rng
            )
            if power < self.params.cs_threshold_dbm:
                continue  # too weak even to sense: no carrier, no interference
            decodable = power >= self.params.rx_threshold_dbm
            reception = Reception(transmission=transmission, power_dbm=power, decodable=decodable)
            delay = propagation_delay_ns(distance) if self.model_propagation_delay else 0
            self.stats.deliveries_attempted += 1
            self.sim.schedule(delay, radio._signal_start, reception)
            self.sim.schedule(delay + transmission.duration_ns, radio._signal_end, reception)
        self.sim.schedule(transmission.duration_ns, sender._end_own_transmission, transmission)
        return transmission

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def apply_bit_errors(self, frame) -> FrameErrorResult:
        """Run the i.i.d. BER model over a decoded frame's header and sub-packets."""
        rng = self.rng.stream("biterror")
        subpacket_bits = [subpacket.bits for subpacket in frame.subpackets]
        return self.error_model.evaluate_frame(frame.header_bits, subpacket_bits, rng)

    def distance(self, a: Radio, b: Radio) -> float:
        """Euclidean distance between two radios in metres (cached per pair).

        The cache is keyed by the node-id pair and invalidated whenever any
        radio moves (:meth:`notify_position_changed`), so transmissions
        always see *current* geometry even mid-run under mobility.
        """
        key = (a.node_id, b.node_id) if a.node_id <= b.node_id else (b.node_id, a.node_id)
        cached = self._distance_cache.get(key)
        if cached is None:
            ax, ay = a.position
            bx, by = b.position
            cached = math.hypot(ax - bx, ay - by)
            self._distance_cache[key] = cached
        return cached

    def notify_position_changed(self, radio: Optional[Radio] = None) -> None:
        """Invalidate cached per-pair geometry after a mobility update.

        Moves arrive in batches (one mobility tick relocates many nodes), so
        the whole cache is dropped rather than surgically pruned.
        """
        self._distance_cache.clear()

    def link_delivery_probability(self, a: Radio, b: Radio, frame_bits: int = 8000) -> float:
        """Expected frame delivery probability on link a→b.

        Combines the shadowing outage probability with the BER-induced frame
        error probability.  Used by the ETX metric and by topology helpers;
        the per-frame simulation never uses this closed form.
        """
        distance = self.distance(a, b)
        p_power = self.propagation.reception_probability(
            self.params.tx_power_dbm, distance, self.params.rx_threshold_dbm
        )
        p_bits = self.error_model.success_probability(frame_bits)
        return p_power * p_bits
