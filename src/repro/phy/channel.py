"""The shared broadcast medium.

The channel is the single object through which every transmission flows.
For each transmission it decides, per potential receiver,

* whether the signal is strong enough to be *sensed* (contributes to
  carrier sensing and can collide with other receptions),
* whether it is strong enough to be *decoded* (candidate for delivery),

using the shadowing propagation model with an independent per-link,
per-frame fading draw — exactly the independence assumption the paper
relies on ("losses between the source and different forwarders are
independent").  Signals below the carrier-sense threshold are invisible,
which is what creates hidden terminals in the Fig. 5(b), Wigle and
Roofnet scenarios.

Bit errors (the i.i.d. BER model) are applied at reception completion by
the receiving radio via :meth:`WirelessChannel.apply_bit_errors`.

Hot-path design
---------------
Dispatch is O(degree), not O(radios).  Per sender the channel keeps a
:class:`_DispatchPlan`: the radios whose deterministic path-loss power
plus the maximum possible shadowing fade (the propagation model bounds
its draws at ``max_deviation_sigmas``) still reaches the carrier-sense
threshold.  Everything else provably cannot sense the frame, so skipping
it is exact, not approximate.  Skipping is only sound because every link
draws fading and bit errors from its *own* keyed RNG stream
(:meth:`~repro.sim.rng.RandomStreams.stream_for`) — with the old single
shared stream, culling one receiver would have shifted every other
link's sample path.

Fade draws are **batched across the whole candidate list**: the plan
fills a ``(BLOCK, k)`` matrix column-by-column from the per-link fade
buffers (each column is one link's own keyed stream, so per-link sample
paths stay independent and registration-order-free), adds the
precomputed mean powers in one vectorised operation, and serves one
ready-made row of received powers per transmission.  Per frame the
dispatch loop is then pure Python-float compares — no numpy scalar
dispatch at all.  Plans also carry each receiver's bound signal
callbacks so the two-entry signal window is scheduled through
:meth:`~repro.sim.engine.Simulator.schedule_window` without creating a
bound method per event, and :class:`Reception` objects are recycled
through a freelist (returned by the radio when the signal window
closes).  Plans are invalidated whenever any radio moves or registers;
the per-link stream buffers survive invalidation, so a link's fade
sample path never depends on when radios happened to move.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.phy.error_models import BitErrorModel, FrameErrorResult
from repro.phy.params import PhyParams
from repro.phy.propagation import PathLossModel, propagation_delay_ns
from repro.phy.radio import Radio, Reception
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams, UniformStream


class _LinkFadeStream:
    """Buffered, bounded fade draws for one (sender, receiver) link.

    Scalar generator calls cost ~1.5 us each in numpy call overhead;
    drawing a batch through the propagation model's ``fade_batch_db`` and
    serving it block-wise produces the *identical* value sequence (models
    fill vectorised draws from the same bit stream in order — the
    hot-path contract in :mod:`repro.phy.propagation`) at a fraction of
    the cost.  The buffer belongs to the link's keyed RNG stream, not to
    the dispatch-plan cache: geometry invalidation rebuilds plans but
    keeps these objects, so a link's fade sample path never depends on
    when radios happened to move.
    """

    #: Draws pulled from the generator per refill; must be a multiple of
    #: :attr:`_DispatchPlan.BLOCK` so block serving never straddles a refill.
    BATCH = 64

    __slots__ = ("generator", "propagation", "_buffer", "_index")

    def __init__(self, generator: np.random.Generator, propagation) -> None:
        self.generator = generator
        self.propagation = propagation
        self._buffer: Optional[np.ndarray] = None
        self._index = 0

    def take_block(self, count: int) -> np.ndarray:
        """The link's next ``count`` bounded fades, in dB (an ndarray view)."""
        index = self._index
        buffer = self._buffer
        if buffer is None or index >= len(buffer):
            buffer = self.propagation.fade_batch_db(self.generator, self.BATCH)
            self._buffer = buffer
            index = 0
        self._index = index + count
        return buffer[index : index + count]


class _DispatchPlan:
    """One sender's precomputed dispatch state (see module docstring).

    ``entries`` holds per-candidate ``(delay_ns, signal_start,
    signal_end)`` tuples — the bound radio callbacks are created once
    here instead of twice per frame in the dispatch loop.  ``refill``
    assembles the next ``BLOCK`` transmissions' received-power rows in
    one vectorised pass: column ``j`` of the fade matrix comes from
    candidate ``j``'s own link stream, so batching across the candidate
    list never couples links.
    """

    #: Transmissions' worth of power rows produced per vectorised refill.
    BLOCK = 16

    __slots__ = ("radios", "entries", "fade_streams", "means", "end_own", "rows", "row_index", "_matrix")

    def __init__(
        self,
        radios: List[Radio],
        entries: List[Tuple[int, object, object]],
        fade_streams: List[_LinkFadeStream],
        means: np.ndarray,
        end_own,
    ) -> None:
        self.radios = radios
        self.entries = entries
        self.fade_streams = fade_streams
        self.means = means
        self.end_own = end_own
        self.rows: List[List[float]] = []
        self.row_index = 0
        self._matrix = np.empty((self.BLOCK, len(fade_streams))) if fade_streams else None

    def refill(self) -> List[List[float]]:
        """Produce the next ``BLOCK`` rows of per-candidate received powers."""
        matrix = self._matrix
        block = self.BLOCK
        for column, fades in enumerate(self.fade_streams):
            matrix[:, column] = fades.take_block(block)
        rows = (matrix + self.means).tolist()
        self.rows = rows
        return rows


@dataclass(slots=True)
class Transmission:
    """A frame in flight on the medium."""

    transmission_id: int
    frame: object
    sender: Radio
    start_time: int
    duration_ns: int

    @property
    def end_time(self) -> int:
        return self.start_time + self.duration_ns


@dataclass(slots=True)
class ChannelStats:
    """Medium-wide counters used by experiments and tests."""

    transmissions: int = 0
    deliveries_attempted: int = 0


class WirelessChannel:
    """Shared wireless medium connecting every radio in the scenario."""

    __slots__ = (
        "sim",
        "params",
        "propagation",
        "error_model",
        "rng",
        "model_propagation_delay",
        "stats",
        "_radios",
        "_ids",
        "_distance_cache",
        "_plans",
        "_link_fades",
        "_link_noise",
        "_prob_cache",
        "_free_receptions",
    )

    #: Hard cap on cached per-pair distances; reached only by scenarios with
    #: thousands of stations, where a rare full drop is cheaper than growth.
    DISTANCE_CACHE_MAX = 1 << 16

    #: Hard cap on per-link stream buffers (fades and bit-error uniforms,
    #: each ~1 KB: a Generator plus a batch).  Overflow drops the whole
    #: table: the keyed stream registry retains every generator's state, so
    #: surviving links resume their sample paths minus any unserved
    #: buffered draws — a deterministic (same-seed-same-everything) but
    #: real perturbation, which is why the cap is far above any current
    #: workload's link count.
    LINK_FADES_MAX = 1 << 16

    #: Hard cap on recycled Reception objects kept for reuse.
    RECEPTION_FREELIST_MAX = 1024

    def __init__(
        self,
        sim: Simulator,
        params: PhyParams,
        propagation: Optional[PathLossModel] = None,
        error_model: Optional[BitErrorModel] = None,
        rng: Optional[RandomStreams] = None,
        model_propagation_delay: bool = True,
    ) -> None:
        self.sim = sim
        self.params = params
        # No explicit model: build the one the PHY parameters name (default
        # "shadowing" inheriting params.max_deviation_sigmas), so direct
        # channel construction honours phy.propagation exactly like
        # WirelessNetwork does.
        self.propagation = propagation or params.build_propagation()
        self.error_model = error_model or BitErrorModel()
        self.rng = rng or RandomStreams()
        self.model_propagation_delay = model_propagation_delay
        self.stats = ChannelStats()
        self._radios: List[Radio] = []
        self._ids = itertools.count()
        #: Cached pairwise distances, dropped whenever any radio moves.
        self._distance_cache: Dict[Tuple[int, int], float] = {}
        #: Per-sender dispatch plans (see module docstring).
        self._plans: Dict[int, _DispatchPlan] = {}
        #: Per-link fade buffers; keyed by (sender, receiver) node ids and
        #: deliberately *not* geometry-invalidated (fades are i.i.d. per
        #: frame, so they stay valid when stations move).
        self._link_fades: Dict[Tuple[int, int], _LinkFadeStream] = {}
        #: Per-link buffered bit-error uniforms, same lifecycle as fades.
        self._link_noise: Dict[Tuple[int, int], UniformStream] = {}
        #: Memoised block success probabilities (few distinct bit counts).
        self._prob_cache: Dict[int, float] = {}
        #: Recycled Reception objects (returned by radios at signal end).
        self._free_receptions: List[Reception] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, radio: Radio) -> None:
        """Add a radio to the medium (called from ``Radio.__init__``).

        Registration invalidates the cached geometry: dispatch plans must
        learn about the newcomer, and a reused node id must not resurrect a
        previous radio's cached distances.
        """
        self._radios.append(radio)
        self._invalidate_geometry()

    @property
    def radios(self) -> List[Radio]:
        """Registered radios, as a defensive copy.

        External callers may mutate the returned list freely; the
        per-transmission hot path never goes through this property (it
        would pay an O(N) copy per frame) — it iterates the internal list
        and the per-sender dispatch plans instead.
        """
        return list(self._radios)

    # ------------------------------------------------------------------
    # Transmission dispatch
    # ------------------------------------------------------------------
    def start_transmission(self, sender: Radio, frame, duration_ns: int) -> Transmission:
        """Propagate ``frame`` from ``sender`` to every radio that can hear it."""
        sim = self.sim
        duration_ns = int(duration_ns)
        now = sim.now
        transmission = Transmission(
            transmission_id=next(self._ids),
            frame=frame,
            sender=sender,
            start_time=now,
            duration_ns=duration_ns,
        )
        self.stats.transmissions += 1
        plan = self._plans.get(sender.node_id)
        if plan is None:
            plan = self._build_plan(sender)
            self._plans[sender.node_id] = plan
        entries = plan.entries
        if entries:
            rows = plan.rows
            row_index = plan.row_index
            if row_index >= len(rows):
                rows = plan.refill()
                row_index = 0
            powers = rows[row_index]
            plan.row_index = row_index + 1
            params = self.params
            cs_threshold = params.cs_threshold_dbm
            rx_threshold = params.rx_threshold_dbm
            window = sim.schedule_window
            free = self._free_receptions
            attempted = 0
            for (delay, signal_start, signal_end), power in zip(entries, powers):
                if power < cs_threshold:
                    continue  # too weak even to sense: no carrier, no interference
                if free:
                    reception = free.pop()
                    reception.transmission = transmission
                    reception.power_dbm = power
                    reception.decodable = power >= rx_threshold
                    reception.interfered = False
                else:
                    reception = Reception(
                        transmission=transmission,
                        power_dbm=power,
                        decodable=power >= rx_threshold,
                    )
                attempted += 1
                arrival = now + delay
                window(arrival, arrival + duration_ns, signal_start, signal_end, reception)
            self.stats.deliveries_attempted += attempted
        sim.schedule_signal(now + duration_ns, plan.end_own, transmission)
        return transmission

    def _recycle_reception(self, reception: Reception) -> None:
        """Return a Reception whose signal window has closed to the free pool."""
        free = self._free_receptions
        if len(free) < self.RECEPTION_FREELIST_MAX:
            reception.transmission = None
            free.append(reception)

    # ------------------------------------------------------------------
    # Neighborhood index
    # ------------------------------------------------------------------
    def _plan_for(self, sender: Radio) -> _DispatchPlan:
        """``sender``'s dispatch plan, built lazily and cached until invalidated."""
        plan = self._plans.get(sender.node_id)
        if plan is None:
            plan = self._build_plan(sender)
            self._plans[sender.node_id] = plan
        return plan

    def _build_plan(self, sender: Radio) -> _DispatchPlan:
        """Receivers ``sender`` could possibly reach, with link RNGs attached.

        A radio is excluded only when its deterministic received power plus
        the largest fade the propagation model can produce
        (:meth:`~repro.phy.propagation.ShadowingPropagation.max_shadowing_db`)
        still misses the carrier-sense threshold — a *sound* cull, not a
        heuristic one.  Each entry carries the link's deterministic power
        and propagation delay (both pure functions of the frozen geometry)
        so per-frame dispatch is one buffered fade row and a compare per
        candidate.  The per-link generators come from the keyed-stream
        registry, so rebuilding a plan after a move resumes each link's
        sample path instead of restarting it.
        """
        propagation = self.propagation
        params = self.params
        power_floor = params.cs_threshold_dbm - propagation.max_shadowing_db()
        tx_power = params.tx_power_dbm
        mean_power = propagation.mean_received_power_dbm
        model_delay = self.model_propagation_delay
        sender_id = sender.node_id
        radios: List[Radio] = []
        entries: List[Tuple[int, object, object]] = []
        fade_streams: List[_LinkFadeStream] = []
        means: List[float] = []
        for radio in self._radios:
            if radio is sender:
                continue
            distance = self.distance(sender, radio)
            mean_dbm = mean_power(tx_power, distance)
            if mean_dbm < power_floor:
                continue
            delay = propagation_delay_ns(distance) if model_delay else 0
            radios.append(radio)
            entries.append((delay, radio._signal_start, radio._signal_end))
            fade_streams.append(self._fades_for(sender_id, radio.node_id))
            means.append(mean_dbm)
        return _DispatchPlan(
            radios, entries, fade_streams, np.array(means), sender._end_own_transmission
        )

    def _fades_for(self, sender_id: int, receiver_id: int) -> _LinkFadeStream:
        """The (cached) buffered fade stream of one directed link."""
        key = (sender_id, receiver_id)
        fades = self._link_fades.get(key)
        if fades is None:
            fades = _LinkFadeStream(
                self.rng.stream_for("shadowing", sender_id, receiver_id),
                self.propagation,
            )
            if len(self._link_fades) >= self.LINK_FADES_MAX:
                self._link_fades.clear()
            self._link_fades[key] = fades
        return fades

    def candidate_receivers(self, sender: Radio) -> List[Radio]:
        """The radios a transmission from ``sender`` would be dispatched to.

        Exposed for tests and diagnostics; the margin guarantee is that any
        radio *not* in this list can never receive power at or above the
        carrier-sense threshold from ``sender`` at the current geometry.
        """
        return list(self._plan_for(sender).radios)

    def _invalidate_geometry(self) -> None:
        """Drop every geometry-derived cache (distances, dispatch plans)."""
        self._distance_cache.clear()
        self._plans.clear()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def apply_bit_errors(self, frame, receiver: Optional[Radio] = None,
                         sender: Optional[Radio] = None) -> FrameErrorResult:
        """Run the i.i.d. BER model over a decoded frame's header and sub-packets.

        When the receiving radio (and the transmitting one) are known the
        draws come from the link's keyed stream — buffered through a
        :class:`~repro.sim.rng.UniformStream`, which serves the identical
        uniform sequence as scalar draws — keeping bit-error sample paths
        independent across forwarders; anonymous callers fall back to the
        shared ``biterror`` stream.
        """
        if receiver is None or sender is None:
            rng = self.rng.stream("biterror")
            subpacket_bits = [subpacket.bits for subpacket in frame.subpackets]
            return self.error_model.evaluate_frame(frame.header_bits, subpacket_bits, rng)
        key = (sender.node_id, receiver.node_id)
        noise = self._link_noise.get(key)
        if noise is None:
            noise = UniformStream(self.rng.stream_for("biterror", key[0], key[1]))
            if len(self._link_noise) >= self.LINK_FADES_MAX:
                self._link_noise.clear()
            self._link_noise[key] = noise
        subpackets = frame.subpackets
        draws = noise.take(1 + len(subpackets))
        # Block success probabilities are memoised in a plain dict:
        # ``BitErrorModel.success_probability`` is already lru_cache-backed,
        # but its guard branches plus the lru machinery cost more than a
        # dict hit on the few distinct bit counts a scenario uses.
        cache = self._prob_cache
        model_success = self.error_model.success_probability
        bits = frame.header_bits
        probability = cache.get(bits)
        if probability is None:
            probability = model_success(bits)
            cache[bits] = probability
        header_ok = draws[0] < probability
        subpacket_ok = []
        append = subpacket_ok.append
        index = 0
        for subpacket in subpackets:
            bits = subpacket.bits
            probability = cache.get(bits)
            if probability is None:
                probability = model_success(bits)
                cache[bits] = probability
            index += 1
            append(draws[index] < probability)
        return FrameErrorResult(header_ok=header_ok, subpacket_ok=subpacket_ok)

    def distance(self, a: Radio, b: Radio) -> float:
        """Euclidean distance between two radios in metres (cached per pair).

        The cache is keyed symmetrically by the node-id pair — (a, b) and
        (b, a) share one entry — and invalidated whenever any radio moves
        or registers (:meth:`notify_position_changed`, :meth:`register`),
        so transmissions always see *current* geometry even mid-run under
        mobility.  Size is bounded by :data:`DISTANCE_CACHE_MAX`.
        """
        key = (a.node_id, b.node_id) if a.node_id <= b.node_id else (b.node_id, a.node_id)
        cached = self._distance_cache.get(key)
        if cached is None:
            ax, ay = a.position
            bx, by = b.position
            cached = math.hypot(ax - bx, ay - by)
            if len(self._distance_cache) >= self.DISTANCE_CACHE_MAX:
                self._distance_cache.clear()
            self._distance_cache[key] = cached
        return cached

    def notify_position_changed(self, radio: Optional[Radio] = None) -> None:
        """Invalidate cached per-pair geometry after a mobility update.

        Moves arrive in batches (one mobility tick relocates many nodes), so
        every geometry cache is dropped rather than surgically pruned.
        """
        self._invalidate_geometry()

    def link_delivery_probability(self, a: Radio, b: Radio, frame_bits: int = 8000) -> float:
        """Expected frame delivery probability on link a→b.

        Combines the shadowing outage probability with the BER-induced frame
        error probability.  Used by the ETX metric and by topology helpers;
        the per-frame simulation never uses this closed form.
        """
        distance = self.distance(a, b)
        p_power = self.propagation.reception_probability(
            self.params.tx_power_dbm, distance, self.params.rx_threshold_dbm
        )
        p_bits = self.error_model.success_probability(frame_bits)
        return p_power * p_bits
