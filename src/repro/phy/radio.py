"""Half-duplex radio attached to the shared wireless channel.

A :class:`Radio` models one station's transceiver.  It tracks

* its own transmissions (a half-duplex radio cannot decode anything while
  it transmits),
* the set of signals currently arriving that are strong enough to be
  *sensed* (these make the channel "busy" for carrier sensing), and
* which of those signals are strong enough to be *decoded*.

Two overlapping sensed signals at a receiver destroy each other (the
standard NS-2 no-capture collision model); this is how both "regular" and
"hidden" collisions from Section III arise — a hidden terminal's signal is
not sensed by the transmitter but still collides at the receiver.

The radio reports three things to the MAC attached to it:

* channel busy / idle transitions (used for backoff freezing and for the
  "idle for ``i * slot + SIFS``" timers of RIPPLE's mTXOP),
* successfully decoded frames together with per-sub-packet error flags,
* completion of its own transmissions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.phy.channel import Transmission, WirelessChannel


class RadioState(enum.Enum):
    """Coarse transceiver state, mostly useful for assertions and debugging."""

    IDLE = "idle"
    RECEIVING = "receiving"
    TRANSMITTING = "transmitting"


@dataclass(slots=True)
class Reception:
    """One signal arriving at one receiver.

    ``slots=True``: one Reception is allocated per sensed receiver per
    frame, squarely on the dispatch hot path.
    """

    transmission: "Transmission"
    power_dbm: float
    decodable: bool
    interfered: bool = False


@dataclass(slots=True)
class RadioStats:
    """Per-radio PHY counters used by tests and the experiment reports."""

    frames_sent: int = 0
    frames_decoded: int = 0
    frames_collided: int = 0
    frames_header_error: int = 0
    airtime_tx_ns: int = 0


class Radio:
    """A station's half-duplex transceiver."""

    __slots__ = (
        "node_id",
        "channel",
        "busy",
        "_sim",
        "_position",
        "mac",
        "stats",
        "_tx_until",
        "_current_tx",
        "_receptions",
        "_idle_since",
    )

    def __init__(self, node_id: int, position: tuple[float, float], channel: "WirelessChannel") -> None:
        self.node_id = node_id
        self.channel = channel
        self._sim = channel.sim
        self._position = (float(position[0]), float(position[1]))
        self.mac = None  # attached later by the node wiring
        self.stats = RadioStats()
        self._tx_until: Optional[int] = None
        self._current_tx: Optional["Transmission"] = None
        self._receptions: Dict[int, Reception] = {}
        self._idle_since: int = 0
        #: Carrier-sense state as a plain attribute: maintained at every
        #: state transition below so the MAC's hottest query (one or more
        #: reads per slot timer) is a single attribute load instead of a
        #: property call re-deriving it from the transmission/reception sets.
        self.busy = False
        channel.register(self)

    @property
    def position(self) -> tuple[float, float]:
        """Current location in metres."""
        return self._position

    @position.setter
    def position(self, value: tuple[float, float]) -> None:
        # Assigning the public attribute must never leave the channel's
        # per-pair geometry cache stale, so the setter notifies it.
        self._position = (float(value[0]), float(value[1]))
        self.channel.notify_position_changed(self)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_mac(self, mac) -> None:
        """Attach the MAC entity that will receive this radio's callbacks."""
        self.mac = mac

    # ------------------------------------------------------------------
    # Mobility
    # ------------------------------------------------------------------
    def move_to(self, position: tuple[float, float]) -> None:
        """Relocate this radio (mobility tick).

        Future transmissions — in either direction — use the new position;
        signals already in flight keep the geometry they were launched
        with, like a real wavefront.  The position setter notifies the
        channel so it drops any cached per-pair geometry.
        """
        self.position = position

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    @property
    def state(self) -> RadioState:
        if self._current_tx is not None:
            return RadioState.TRANSMITTING
        if self._receptions:
            return RadioState.RECEIVING
        return RadioState.IDLE

    @property
    def is_transmitting(self) -> bool:
        return self._current_tx is not None

    @property
    def is_channel_busy(self) -> bool:
        """Carrier-sense result: busy while transmitting or sensing any signal.

        Equal to the :attr:`busy` attribute, which hot paths read directly.
        """
        return self.busy

    @property
    def idle_since(self) -> int:
        """Simulation time at which the channel last became idle at this radio."""
        return self._idle_since

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(self, frame, duration_ns: int) -> "Transmission":
        """Start transmitting ``frame`` for ``duration_ns``.

        The MAC is responsible for having performed carrier sensing; if it
        transmits anyway while signals are arriving, those receptions are
        destroyed (this is exactly what happens to a real half-duplex radio).
        """
        was_busy = self.busy
        transmission = self.channel.start_transmission(self, frame, duration_ns)
        self._current_tx = transmission
        self._tx_until = transmission.end_time
        self.busy = True
        for reception in self._receptions.values():
            reception.interfered = True
        self.stats.frames_sent += 1
        self.stats.airtime_tx_ns += duration_ns
        if not was_busy:
            self._notify_busy()
        return transmission

    def _end_own_transmission(self, transmission: "Transmission") -> None:
        """Channel callback: our own transmission just finished."""
        self._current_tx = None
        self._tx_until = None
        if not self._receptions:
            self.busy = False
            self._mark_idle()
        if self.mac is not None:
            self.mac.on_transmission_complete(transmission.frame)

    # ------------------------------------------------------------------
    # Reception (channel callbacks)
    # ------------------------------------------------------------------
    def _signal_start(self, reception: Reception) -> None:
        was_busy = self.busy
        if self._current_tx is not None:
            reception.interfered = True
        if self._receptions:
            # No capture: a new overlapping signal corrupts everything in the air.
            reception.interfered = True
            for other in self._receptions.values():
                other.interfered = True
        self._receptions[reception.transmission.transmission_id] = reception
        self.busy = True
        if not was_busy:
            self._notify_busy()

    def _signal_end(self, reception: Reception) -> None:
        self._receptions.pop(reception.transmission.transmission_id, None)
        # Update carrier-sense state *before* delivering the frame: protocol
        # timers of the form "channel idle for T" (RIPPLE's relay deferral)
        # must see the idle period as starting at the end of this frame.
        if self._current_tx is None and not self._receptions:
            self.busy = False
            self._mark_idle()
        # Delivery is inlined here (not a helper) because this callback runs
        # once per sensed signal — the busiest event class in every workload.
        if reception.decodable:
            if reception.interfered:
                self.stats.frames_collided += 1
            else:
                transmission = reception.transmission
                frame = transmission.frame
                # Passing both ends of the link routes the draws through the
                # keyed per-link bit-error stream (independence across
                # forwarders).
                result = self.channel.apply_bit_errors(
                    frame, receiver=self, sender=transmission.sender
                )
                if not result.header_ok:
                    self.stats.frames_header_error += 1
                else:
                    self.stats.frames_decoded += 1
                    if self.mac is not None:
                        self.mac.on_frame_received(frame, result)
        # Both window entries are spent and the reception is out of every
        # tracking structure: hand it back to the channel's free pool.
        self.channel._recycle_reception(reception)

    # ------------------------------------------------------------------
    # Busy / idle notifications
    # ------------------------------------------------------------------
    def _notify_busy(self) -> None:
        if self.mac is not None:
            self.mac.on_channel_busy()

    def _mark_idle(self) -> None:
        self._idle_since = self._sim.now
        if self.mac is not None:
            self.mac.on_channel_idle()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Radio(node={self.node_id}, state={self.state.value})"
