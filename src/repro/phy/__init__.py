"""Physical-layer substrate: propagation, bit errors, radios and the shared channel.

This package replaces the NS-2 PHY the paper's evaluation runs on:

* :mod:`repro.phy.params` — PHY rates, transmit power, reception and
  carrier-sense thresholds (Table I of the paper).
* :mod:`repro.phy.propagation` — the log-distance + log-normal shadowing
  model (path-loss exponent 5, deviation 8 dB, 281 mW) used in Section IV,
  plus Rayleigh and Rician (K-factor) small-scale fading variants.
* :mod:`repro.phy.registry` — the named propagation-model registry
  (``shadowing`` / ``rayleigh`` / ``rician``) scenario specs select from
  via ``PhyParams.propagation``.
* :mod:`repro.phy.error_models` — the i.i.d. bit-error model (BER 1e-5 and
  1e-6) applied per sub-packet, which is what makes partial retransmission
  under aggregation meaningful.
* :mod:`repro.phy.radio` / :mod:`repro.phy.channel` — half-duplex radios
  attached to a shared broadcast channel with distance-based carrier
  sensing, hidden terminals and collision (no-capture) semantics.
"""

from repro.phy.channel import Transmission, WirelessChannel
from repro.phy.error_models import BitErrorModel, FrameErrorResult
from repro.phy.params import PhyParams
from repro.phy.propagation import (
    PathLossModel,
    RayleighFading,
    RicianFading,
    ShadowingPropagation,
)
from repro.phy.radio import Radio, RadioState
from repro.phy.registry import PROPAGATION_MODELS, build_propagation, register_propagation

__all__ = [
    "PhyParams",
    "PathLossModel",
    "ShadowingPropagation",
    "RayleighFading",
    "RicianFading",
    "PROPAGATION_MODELS",
    "build_propagation",
    "register_propagation",
    "BitErrorModel",
    "FrameErrorResult",
    "Radio",
    "RadioState",
    "WirelessChannel",
    "Transmission",
]
