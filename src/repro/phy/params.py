"""Physical-layer parameters (Table I of the paper).

Two PHY profiles are used in the evaluation:

* a high-rate profile — 216 Mb/s data rate, 54 Mb/s basic (control) rate —
  used for the TCP experiments (Figs. 3-8), and
* a low-rate profile — 6 Mb/s for both data and basic rate — used for the
  VoIP experiments (Table III) and the large Wigle/Roofnet topologies
  (Figs. 10 and 12).

The PLCP preamble + header occupies a fixed 20 microseconds regardless of
rate (``T_phyhdr`` in the paper's overhead formulas).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Dict, Optional

from repro.serialization import require_known_keys
from repro.sim.units import transmission_time_ns, us


@dataclass(frozen=True)
class PhyParams:
    """Radio and modulation parameters shared by every node in a scenario."""

    data_rate_bps: float = 216e6
    basic_rate_bps: float = 54e6
    phy_header_ns: int = us(20)
    tx_power_dbm: float = 24.49  # 281 mW, Section IV
    rx_threshold_dbm: float = -135.5  # nominal decode range ~250 m (see propagation)
    cs_threshold_dbm: float = -145.5  # nominal carrier-sense range ~400 m
    noise_floor_dbm: float = -170.0
    #: How many standard deviations the shadowing model's fade draws are
    #: clipped at — the margin that decides how aggressively the channel's
    #: receiver cull can prune dense meshes (6σ ≈ a 2e-9 clip probability;
    #: 4σ ≈ 3e-5 trades a statistically tiny model deviation for a much
    #: tighter cull radius).  Sweepable through the config/spec layer.
    max_deviation_sigmas: float = 6.0
    #: Which propagation model the channel installs, by name in
    #: :data:`repro.phy.registry.PROPAGATION_MODELS` (``shadowing`` — the
    #: paper's log-normal model — ``rayleigh``, ``rician``).
    propagation: str = "shadowing"
    #: Model-specific builder parameters (e.g. ``{"k_factor": 8}`` for
    #: ``rician``); None means "all defaults".
    propagation_params: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        from repro.phy.registry import PROPAGATION_MODELS

        if self.propagation not in PROPAGATION_MODELS:
            raise ValueError(
                f"unknown propagation model {self.propagation!r}; "
                f"known: {PROPAGATION_MODELS.known_names()}"
            )
        if self.propagation_params is not None and not isinstance(self.propagation_params, dict):
            raise ValueError(
                f"propagation_params must be a dict or None, "
                f"got {type(self.propagation_params).__name__}"
            )

    def build_propagation(self):
        """The propagation model instance these parameters select."""
        from repro.phy.registry import build_propagation

        return build_propagation(self)

    def data_airtime_ns(self, payload_bits: int) -> int:
        """Airtime of a frame body of ``payload_bits`` at the data rate, plus PLCP."""
        return self.phy_header_ns + transmission_time_ns(payload_bits, self.data_rate_bps)

    def control_airtime_ns(self, payload_bits: int) -> int:
        """Airtime of a control frame (ACK) of ``payload_bits`` at the basic rate, plus PLCP."""
        return self.phy_header_ns + transmission_time_ns(payload_bits, self.basic_rate_bps)

    def with_rates(self, data_rate_bps: float, basic_rate_bps: float) -> "PhyParams":
        """A copy of these parameters with different data / basic rates."""
        return replace(self, data_rate_bps=data_rate_bps, basic_rate_bps=basic_rate_bps)

    def to_dict(self) -> dict:
        """JSON-safe representation (used by the sweep cache)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "PhyParams":
        require_known_keys(data, (f.name for f in fields(cls)), cls.__name__)
        return cls(**data)


#: The default high-rate profile from Table I (216 / 54 Mb/s).
HIGH_RATE_PHY = PhyParams()

#: The low-rate profile used for VoIP and the large topologies (6 / 6 Mb/s).
LOW_RATE_PHY = PhyParams(data_rate_bps=6e6, basic_rate_bps=6e6)
