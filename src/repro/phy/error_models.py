"""Independent and identically distributed bit-error model.

Section IV: "We use a widely used independent and identically distributed
(i.i.d.) BER model ... we use a BER of 1e-5 and 1e-6 to simulate a 'noisy'
and a 'clear' channel state respectively."

The granularity matters: with packet aggregation (AFR and RIPPLE) a MAC
frame carries several upper-layer packets each protected by its own CRC,
so bit errors corrupt individual *sub-packets* while the rest of the frame
survives.  This model therefore evaluates errors per sub-packet (and
separately for the MAC header, whose corruption loses the whole frame).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence

import numpy as np


@lru_cache(maxsize=4096)
def _block_success_probability(bit_error_rate: float, bits: int) -> float:
    """``(1 - BER)^bits``, memoised.

    The channel evaluates this once per sub-packet per decoded frame, but a
    scenario only ever uses a handful of distinct ``(BER, bits)`` pairs
    (the paper's two BER operating points times a few frame layouts), so
    the ``pow`` — one of the hot-path's few transcendental operations — is
    worth caching process-wide.
    """
    return float((1.0 - bit_error_rate) ** bits)


@dataclass(slots=True)
class FrameErrorResult:
    """Outcome of pushing one frame through the bit-error model.

    ``slots=True``: one result is allocated per decoded frame, on the
    delivery hot path.
    """

    header_ok: bool
    subpacket_ok: List[bool]

    @property
    def any_payload_ok(self) -> bool:
        """True when at least one sub-packet survived."""
        return any(self.subpacket_ok)

    @property
    def all_payload_ok(self) -> bool:
        """True when every sub-packet survived."""
        return all(self.subpacket_ok)


@dataclass(frozen=True, slots=True)
class BitErrorModel:
    """i.i.d. per-bit error model with the paper's two operating points."""

    bit_error_rate: float = 1e-6

    def success_probability(self, bits: int) -> float:
        """Probability that a block of ``bits`` is received without any bit error."""
        if bits <= 0:
            return 1.0
        if self.bit_error_rate <= 0:
            return 1.0
        return _block_success_probability(self.bit_error_rate, bits)

    def block_ok(self, bits: int, rng: np.random.Generator) -> bool:
        """Draw whether a block of ``bits`` survives the channel."""
        return bool(rng.random() < self.success_probability(bits))

    def evaluate_frame(
        self, header_bits: int, subpacket_bits: Sequence[int], rng: np.random.Generator
    ) -> FrameErrorResult:
        """Apply bit errors to a frame's header and each of its sub-packets."""
        success = self.success_probability
        random = rng.random
        header_ok = bool(random() < success(header_bits))
        subpacket_ok = [bool(random() < success(bits)) for bits in subpacket_bits]
        return FrameErrorResult(header_ok=header_ok, subpacket_ok=subpacket_ok)


#: Clear channel operating point from Section IV.
CLEAR_CHANNEL = BitErrorModel(bit_error_rate=1e-6)

#: Noisy channel operating point from Section IV.
NOISY_CHANNEL = BitErrorModel(bit_error_rate=1e-5)
