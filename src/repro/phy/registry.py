"""The propagation model registry: how a scenario's PHY picks its channel model.

Each entry is a builder ``build(phy, **params) -> PathLossModel`` invoked
with the scenario's resolved :class:`~repro.phy.params.PhyParams`;
``params`` come from ``PhyParams.propagation_params``, so a model's knobs
are sweepable/JSON-addressable like every other component's::

    --set phy.propagation=rician 'phy.propagation_params={"k_factor": 8}'

The default entry, ``shadowing``, builds exactly the propagation object
pre-registry scenarios always built (the NS-2 log-normal model inheriting
the PHY's ``max_deviation_sigmas`` cull margin), so default runs are
bit-identical to builds that predate the registry.
"""

from __future__ import annotations

from repro.phy.propagation import (
    PathLossModel,
    RayleighFading,
    RicianFading,
    ShadowingPropagation,
)
from repro.registry import Registry

#: The registry of propagation model builders.
PROPAGATION_MODELS = Registry("propagation model")


def register_propagation(name: str):
    """Decorator registering a ``build(phy, **params) -> PathLossModel`` factory."""
    return PROPAGATION_MODELS.register(name)


@register_propagation("shadowing")
def _build_shadowing(
    phy,
    *,
    path_loss_exponent: float = 5.0,
    shadowing_deviation_db: float = 8.0,
    reference_distance_m: float = 1.0,
    frequency_hz: float = 2.4e9,
) -> ShadowingPropagation:
    """Log-distance path loss with log-normal shadowing (NS-2 model, the paper's default)."""
    return ShadowingPropagation(
        path_loss_exponent=float(path_loss_exponent),
        shadowing_deviation_db=float(shadowing_deviation_db),
        reference_distance_m=float(reference_distance_m),
        frequency_hz=float(frequency_hz),
        max_deviation_sigmas=phy.max_deviation_sigmas,
    )


@register_propagation("rayleigh")
def _build_rayleigh(
    phy,
    *,
    path_loss_exponent: float = 5.0,
    reference_distance_m: float = 1.0,
    frequency_hz: float = 2.4e9,
    max_fade_db: float = 10.0,
    min_fade_db: float = -40.0,
) -> RayleighFading:
    """Rayleigh (no-line-of-sight multipath) fading over log-distance path loss."""
    return RayleighFading(
        path_loss_exponent=float(path_loss_exponent),
        reference_distance_m=float(reference_distance_m),
        frequency_hz=float(frequency_hz),
        max_fade_db=float(max_fade_db),
        min_fade_db=float(min_fade_db),
    )


@register_propagation("rician")
def _build_rician(
    phy,
    *,
    k_factor: float = 4.0,
    path_loss_exponent: float = 5.0,
    reference_distance_m: float = 1.0,
    frequency_hz: float = 2.4e9,
    max_fade_db: float = 10.0,
    min_fade_db: float = -40.0,
) -> RicianFading:
    """Rician fading (line-of-sight K-factor multipath) over log-distance path loss."""
    return RicianFading(
        k_factor=float(k_factor),
        path_loss_exponent=float(path_loss_exponent),
        reference_distance_m=float(reference_distance_m),
        frequency_hz=float(frequency_hz),
        max_fade_db=float(max_fade_db),
        min_fade_db=float(min_fade_db),
    )


def build_propagation(phy) -> PathLossModel:
    """Build the propagation model named by ``phy.propagation`` with its params."""
    builder = PROPAGATION_MODELS.lookup(phy.propagation)
    params = dict(phy.propagation_params or {})
    try:
        return builder(phy, **params)
    except TypeError as exc:
        raise ValueError(
            f"bad parameters for propagation model {phy.propagation!r}: {exc}"
        ) from exc
