"""Log-distance path loss with log-normal shadowing.

Section IV of the paper uses the NS-2 *Shadowing* propagation model with a
path-loss exponent of 5, a shadowing deviation of 8 dB and a transmission
power of 281 mW, "in which frame losses are proportional to the distance
between stations" and losses on different links are independent.

The model implemented here is the same one NS-2 implements:

    Pr(d) [dBm] = Pt [dBm] - PL(d0) - 10 * beta * log10(d / d0) + X_sigma

where ``PL(d0)`` is the free-space (Friis) loss at the reference distance
``d0`` (1 m) and ``X_sigma`` is a zero-mean Gaussian with standard
deviation ``sigma`` dB drawn independently for every frame on every link.

The Gaussian is truncated at ``max_deviation_sigmas`` standard deviations
(default 6, i.e. a clip probability of ~2e-9 per draw — statistically
invisible at any simulated duration this repository runs).  The bound is
what makes the channel's receiver culling *sound* rather than heuristic:
a station whose deterministic power plus the maximum possible fade still
falls below the carrier-sense threshold provably cannot sense the frame,
so skipping it cannot change the simulation.

Whether a given frame is *decodable* (received power above the reception
threshold) or merely *sensed* (above the carrier-sense threshold) is
decided by the channel from the power this model returns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Speed of light, used for the Friis reference loss and propagation delay.
SPEED_OF_LIGHT_M_PER_S = 3.0e8


@dataclass(frozen=True)
class ShadowingPropagation:
    """NS-2 style log-normal shadowing propagation model."""

    path_loss_exponent: float = 5.0
    shadowing_deviation_db: float = 8.0
    reference_distance_m: float = 1.0
    frequency_hz: float = 2.4e9
    #: Shadowing draws are clipped to +/- this many standard deviations; see
    #: the module docstring for why the bound exists and why 6 is free.
    max_deviation_sigmas: float = 6.0

    def max_shadowing_db(self) -> float:
        """Largest fade (in dB, either sign) a single draw can produce."""
        return self.shadowing_deviation_db * self.max_deviation_sigmas

    def reference_loss_db(self) -> float:
        """Free-space path loss at the reference distance (Friis)."""
        wavelength = SPEED_OF_LIGHT_M_PER_S / self.frequency_hz
        return 20.0 * math.log10(4.0 * math.pi * self.reference_distance_m / wavelength)

    def mean_received_power_dbm(self, tx_power_dbm: float, distance_m: float) -> float:
        """Deterministic (no shadowing) received power at ``distance_m``."""
        if distance_m <= 0:
            return tx_power_dbm
        distance_m = max(distance_m, self.reference_distance_m)
        path_loss = self.reference_loss_db() + 10.0 * self.path_loss_exponent * math.log10(
            distance_m / self.reference_distance_m
        )
        return tx_power_dbm - path_loss

    def shadowing_db(self, rng: np.random.Generator) -> float:
        """One independent, bounded shadowing draw in dB.

        Split out from :meth:`received_power_dbm` so per-frame dispatch can
        add the draw to a *precomputed* deterministic power instead of
        re-deriving the path loss (a ``log10``) for every frame on a link
        whose geometry has not changed.
        """
        shadowing = rng.normal(0.0, self.shadowing_deviation_db)
        bound = self.shadowing_deviation_db * self.max_deviation_sigmas
        if shadowing > bound:
            return bound
        if shadowing < -bound:
            return -bound
        return shadowing

    def received_power_dbm(
        self, tx_power_dbm: float, distance_m: float, rng: np.random.Generator
    ) -> float:
        """Received power with an independent, bounded shadowing draw for this frame."""
        return self.mean_received_power_dbm(tx_power_dbm, distance_m) + self.shadowing_db(rng)

    def reception_probability(
        self, tx_power_dbm: float, distance_m: float, threshold_dbm: float
    ) -> float:
        """Closed-form P[received power >= threshold] at ``distance_m``.

        Used by tests and by the route/forwarder-selection metrics (ETX), not
        by the per-frame channel simulation, which draws actual powers.

        Matches the *truncated* draw distribution: clipping piles tail mass
        onto ``+/- max_shadowing_db()``, so the probability saturates to
        exactly 1 (or 0) once the threshold clears (or exceeds) the bound —
        keeping ETX from assigning finite weight to links the simulation
        can provably never deliver on (visible at small
        ``max_deviation_sigmas``; ~2e-9 at the default 6).
        """
        mean = self.mean_received_power_dbm(tx_power_dbm, distance_m)
        if self.shadowing_deviation_db <= 0:
            return 1.0 if mean >= threshold_dbm else 0.0
        offset = threshold_dbm - mean
        bound = self.max_shadowing_db()
        if offset <= -bound:
            return 1.0
        if offset > bound:
            return 0.0
        z = offset / self.shadowing_deviation_db
        return 0.5 * math.erfc(z / math.sqrt(2.0))

    def range_for_probability(
        self, tx_power_dbm: float, threshold_dbm: float, probability: float
    ) -> float:
        """Distance at which the reception probability equals ``probability``.

        Convenience used when laying out synthetic topologies: e.g. "place
        relays at the 95 %-reception distance and the end points at the
        10 %-reception distance".
        """
        if not 0.0 < probability < 1.0:
            raise ValueError("probability must be strictly between 0 and 1")
        # Invert: P[mean + X >= threshold] = probability
        #   mean = threshold - sigma * Phi^{-1}(1 - probability)
        from scipy.stats import norm  # local import: scipy is an optional heavy dep

        offset = self.shadowing_deviation_db * norm.ppf(1.0 - probability)
        target_mean = threshold_dbm + offset
        loss_db = tx_power_dbm - target_mean - self.reference_loss_db()
        return self.reference_distance_m * 10.0 ** (loss_db / (10.0 * self.path_loss_exponent))


def propagation_delay_ns(distance_m: float) -> int:
    """Line-of-sight propagation delay in integer nanoseconds."""
    return int(round(distance_m / SPEED_OF_LIGHT_M_PER_S * 1e9))
