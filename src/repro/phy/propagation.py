"""Propagation models: deterministic path loss plus per-frame fading.

Section IV of the paper uses the NS-2 *Shadowing* propagation model with a
path-loss exponent of 5, a shadowing deviation of 8 dB and a transmission
power of 281 mW, "in which frame losses are proportional to the distance
between stations" and losses on different links are independent.
:class:`ShadowingPropagation` implements exactly that model and remains
the default; :class:`RayleighFading` and :class:`RicianFading` add the
classic multipath small-scale fading distributions on top of the same
log-distance path loss.  Models are selected by name through
:data:`repro.phy.registry.PROPAGATION_MODELS`.

Every model decomposes the received power the same way:

    Pr(d) [dBm] = Pt [dBm] - PL(d0) - 10 * beta * log10(d / d0) + F

where ``PL(d0)`` is the free-space (Friis) loss at the reference distance
``d0`` (1 m) and ``F`` is a random per-frame, per-link fade in dB —
Gaussian for shadowing, ``10*log10`` of an exponential (Rayleigh) or
non-central-chi-squared (Rician, K-factor) power gain for the fading
models.

**The fade bound contract.**  Every model clips its fades to a finite
range and reports the largest possible *positive* excursion through
:meth:`max_shadowing_db`.  The bound is what makes the channel's receiver
culling *sound* rather than heuristic: a station whose deterministic
power plus the maximum possible fade still falls below the carrier-sense
threshold provably cannot sense the frame, so skipping it cannot change
the simulation.  (For the Gaussian model the default 6-sigma truncation
has a clip probability of ~2e-9 per draw — statistically invisible at any
simulated duration this repository runs.)

**The hot-path contract.**  The channel buffers fades per link through
:meth:`fade_batch_db`; a model's batched draws must consume its generator
exactly like repeated scalar draws would, so buffering never changes a
link's sample path.

Whether a given frame is *decodable* (received power above the reception
threshold) or merely *sensed* (above the carrier-sense threshold) is
decided by the channel from the power a model returns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

#: Speed of light, used for the Friis reference loss and propagation delay.
SPEED_OF_LIGHT_M_PER_S = 3.0e8


class PathLossModel:
    """Shared log-distance path-loss math (the deterministic half of a model).

    Subclasses are frozen dataclasses providing ``path_loss_exponent``,
    ``reference_distance_m`` and ``frequency_hz`` fields plus the random
    half of the interface: :meth:`fade_batch_db` (bounded per-frame fades,
    consumed by the channel's per-link buffers), :meth:`max_shadowing_db`
    (the largest possible positive fade — the culling margin) and
    :meth:`reception_probability` (the closed-form outage used by ETX).
    """

    def reference_loss_db(self) -> float:
        """Free-space path loss at the reference distance (Friis)."""
        wavelength = SPEED_OF_LIGHT_M_PER_S / self.frequency_hz
        return 20.0 * math.log10(4.0 * math.pi * self.reference_distance_m / wavelength)

    def mean_received_power_dbm(self, tx_power_dbm: float, distance_m: float) -> float:
        """Deterministic (no fading) received power at ``distance_m``."""
        if distance_m <= 0:
            return tx_power_dbm
        distance_m = max(distance_m, self.reference_distance_m)
        path_loss = self.reference_loss_db() + 10.0 * self.path_loss_exponent * math.log10(
            distance_m / self.reference_distance_m
        )
        return tx_power_dbm - path_loss

    def received_power_dbm(
        self, tx_power_dbm: float, distance_m: float, rng: np.random.Generator
    ) -> float:
        """Received power with one independent, bounded fade draw for this frame."""
        fade = float(self.fade_batch_db(rng, 1)[0])
        return self.mean_received_power_dbm(tx_power_dbm, distance_m) + fade


@dataclass(frozen=True)
class ShadowingPropagation(PathLossModel):
    """NS-2 style log-normal shadowing propagation model (the paper's default)."""

    path_loss_exponent: float = 5.0
    shadowing_deviation_db: float = 8.0
    reference_distance_m: float = 1.0
    frequency_hz: float = 2.4e9
    #: Shadowing draws are clipped to +/- this many standard deviations; see
    #: the module docstring for why the bound exists and why 6 is free.
    max_deviation_sigmas: float = 6.0

    def max_shadowing_db(self) -> float:
        """Largest fade (in dB, either sign) a single draw can produce."""
        return self.shadowing_deviation_db * self.max_deviation_sigmas

    def fade_batch_db(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """``count`` independent bounded shadowing draws, in dB.

        Must match :meth:`shadowing_db` draw for draw: numpy fills the
        vectorised ``normal`` from the same bit stream as repeated scalar
        calls, so the channel's per-link buffering is invisible.
        """
        draws = rng.normal(0.0, self.shadowing_deviation_db, count)
        bound = self.max_shadowing_db()
        np.clip(draws, -bound, bound, out=draws)
        return draws

    def shadowing_db(self, rng: np.random.Generator) -> float:
        """One independent, bounded shadowing draw in dB.

        Split out from :meth:`received_power_dbm` so per-frame dispatch can
        add the draw to a *precomputed* deterministic power instead of
        re-deriving the path loss (a ``log10``) for every frame on a link
        whose geometry has not changed.
        """
        shadowing = rng.normal(0.0, self.shadowing_deviation_db)
        bound = self.shadowing_deviation_db * self.max_deviation_sigmas
        if shadowing > bound:
            return bound
        if shadowing < -bound:
            return -bound
        return shadowing

    def received_power_dbm(
        self, tx_power_dbm: float, distance_m: float, rng: np.random.Generator
    ) -> float:
        """Received power with an independent, bounded shadowing draw for this frame."""
        return self.mean_received_power_dbm(tx_power_dbm, distance_m) + self.shadowing_db(rng)

    def reception_probability(
        self, tx_power_dbm: float, distance_m: float, threshold_dbm: float
    ) -> float:
        """Closed-form P[received power >= threshold] at ``distance_m``.

        Used by tests and by the route/forwarder-selection metrics (ETX), not
        by the per-frame channel simulation, which draws actual powers.

        Matches the *truncated* draw distribution: clipping piles tail mass
        onto ``+/- max_shadowing_db()``, so the probability saturates to
        exactly 1 (or 0) once the threshold clears (or exceeds) the bound —
        keeping ETX from assigning finite weight to links the simulation
        can provably never deliver on (visible at small
        ``max_deviation_sigmas``; ~2e-9 at the default 6).
        """
        mean = self.mean_received_power_dbm(tx_power_dbm, distance_m)
        if self.shadowing_deviation_db <= 0:
            return 1.0 if mean >= threshold_dbm else 0.0
        offset = threshold_dbm - mean
        bound = self.max_shadowing_db()
        if offset <= -bound:
            return 1.0
        if offset > bound:
            return 0.0
        z = offset / self.shadowing_deviation_db
        return 0.5 * math.erfc(z / math.sqrt(2.0))

    def range_for_probability(
        self, tx_power_dbm: float, threshold_dbm: float, probability: float
    ) -> float:
        """Distance at which the reception probability equals ``probability``.

        Convenience used when laying out synthetic topologies: e.g. "place
        relays at the 95 %-reception distance and the end points at the
        10 %-reception distance".
        """
        if not 0.0 < probability < 1.0:
            raise ValueError("probability must be strictly between 0 and 1")
        # Invert: P[mean + X >= threshold] = probability
        #   mean = threshold - sigma * Phi^{-1}(1 - probability)
        from scipy.stats import norm  # local import: scipy is an optional heavy dep

        offset = self.shadowing_deviation_db * norm.ppf(1.0 - probability)
        target_mean = threshold_dbm + offset
        loss_db = tx_power_dbm - target_mean - self.reference_loss_db()
        return self.reference_distance_m * 10.0 ** (loss_db / (10.0 * self.path_loss_exponent))


@dataclass(frozen=True)
class RicianFading(PathLossModel):
    """Log-distance path loss with Rician (K-factor) small-scale fading.

    The per-frame channel power gain is ``|h|^2`` for ``h = s + n`` with a
    deterministic line-of-sight component ``s = sqrt(K/(K+1))`` and a
    circularly symmetric scattered component ``n ~ CN(0, 1/(K+1))`` —
    unit mean power, so the fade in dB (``10*log10 |h|^2``) is zero-mean
    in the linear domain and the deterministic path loss keeps its
    meaning.  ``k_factor`` is the *linear* LOS-to-scatter power ratio K
    (K = 0 degenerates to Rayleigh fading; K -> infinity to no fading).

    Fades are clipped to ``[min_fade_db, max_fade_db]``: the positive
    bound is the culling margin the channel relies on (constructive
    multipath above +10 dB has probability ~1e-5 at K = 0 and vanishes as
    K grows), the negative bound keeps deep fades finite.
    """

    path_loss_exponent: float = 5.0
    k_factor: float = 4.0
    reference_distance_m: float = 1.0
    frequency_hz: float = 2.4e9
    #: Largest constructive fade a draw can produce (the culling margin).
    max_fade_db: float = 10.0
    #: Deepest destructive fade a draw can produce.
    min_fade_db: float = -40.0

    def __post_init__(self) -> None:
        if self.k_factor < 0:
            raise ValueError(f"k_factor must be non-negative, got {self.k_factor}")
        if self.min_fade_db >= self.max_fade_db:
            raise ValueError(
                f"min_fade_db ({self.min_fade_db}) must lie below max_fade_db ({self.max_fade_db})"
            )

    def max_shadowing_db(self) -> float:
        """Largest possible positive fade (the channel's culling margin)."""
        return self.max_fade_db

    def _gain_bounds(self) -> tuple:
        return (10.0 ** (self.min_fade_db / 10.0), 10.0 ** (self.max_fade_db / 10.0))

    def fade_batch_db(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """``count`` independent bounded Rician fades, in dB.

        One standard-normal batch of ``2*count``, de-interleaved into the
        in-phase/quadrature pair per fade — so fade ``i`` always consumes
        normals ``2i`` and ``2i+1`` and the sample path is invariant to
        the caller's buffer size (the hot-path contract).
        """
        k = self.k_factor
        los = math.sqrt(k / (k + 1.0))
        sigma = math.sqrt(1.0 / (2.0 * (k + 1.0)))
        normals = rng.standard_normal(2 * count)
        in_phase = sigma * normals[0::2] + los
        quadrature = sigma * normals[1::2]
        gains = in_phase * in_phase + quadrature * quadrature
        np.clip(gains, *self._gain_bounds(), out=gains)
        return 10.0 * np.log10(gains)

    def gain_tail_probability(self, gain: float) -> float:
        """P[unclipped channel power gain >= ``gain``] (the fade CCDF).

        ``2*(K+1)*|h|^2`` is noncentral chi-squared with 2 degrees of
        freedom and noncentrality ``2K``; scipy evaluates that exactly,
        and a numpy trapezoid integration of the Rician power pdf stands
        in when scipy is unavailable (tier-1 CI installs numpy only).
        """
        if gain <= 0.0:
            return 1.0
        k = self.k_factor
        try:
            from scipy.stats import ncx2  # local import: scipy is an optional heavy dep

            return float(ncx2.sf(2.0 * (k + 1.0) * gain, df=2, nc=2.0 * k))
        except ImportError:
            return _rician_tail_numpy(gain, k)

    def reception_probability(
        self, tx_power_dbm: float, distance_m: float, threshold_dbm: float
    ) -> float:
        """Closed-form P[received power >= threshold] at ``distance_m``.

        Matches the *clipped* draw distribution (same convention as
        :meth:`ShadowingPropagation.reception_probability`): saturates to
        exactly 1 (or 0) once the threshold clears (or exceeds) the fade
        bounds, so ETX never weights links the simulation can provably
        never deliver on.
        """
        mean = self.mean_received_power_dbm(tx_power_dbm, distance_m)
        offset = threshold_dbm - mean
        if offset <= self.min_fade_db:
            return 1.0
        if offset > self.max_fade_db:
            return 0.0
        return self.gain_tail_probability(10.0 ** (offset / 10.0))


@dataclass(frozen=True)
class RayleighFading(RicianFading):
    """Log-distance path loss with Rayleigh small-scale fading.

    The no-line-of-sight special case of :class:`RicianFading` (K = 0):
    the channel power gain is exponentially distributed with unit mean,
    so the fade CCDF is simply ``exp(-gain)``.  Kept as its own class
    (and registry entry) because the K = 0 draw path needs only *one*
    exponential batch per refill instead of two Gaussian ones — and
    because "rayleigh" is the name everyone reaches for.
    """

    k_factor: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.k_factor != 0.0:
            raise ValueError(
                f"RayleighFading is the K=0 case; got k_factor={self.k_factor} "
                "(use RicianFading for K > 0)"
            )

    def fade_batch_db(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """``count`` independent bounded Rayleigh fades, in dB."""
        gains = rng.standard_exponential(count)
        np.clip(gains, *self._gain_bounds(), out=gains)
        return 10.0 * np.log10(gains)

    def gain_tail_probability(self, gain: float) -> float:
        """P[unclipped channel power gain >= ``gain``] = exp(-gain)."""
        if gain <= 0.0:
            return 1.0
        return math.exp(-gain)


@lru_cache(maxsize=4096)
def _rician_tail_numpy(gain: float, k: float) -> float:
    """Trapezoid integration of the Rician power pdf on [0, ``gain``].

    pdf(w) = (K+1) * exp(-K - (K+1) w) * I0(2 sqrt(K (K+1) w)); integrating
    the *head* and returning ``1 - cdf`` avoids truncating the unbounded
    tail.  Only used when scipy is absent; accuracy (~1e-6 at 20k points)
    is ample for the ETX link metric this feeds.  Memoised because ETX
    re-estimation queries the same (distance-derived) gains for every node
    pair on every tick — an all-pairs sweep over a 40-node mesh would
    otherwise re-integrate tens of thousands of times.
    """
    points = 20_001
    w = np.linspace(0.0, gain, points)
    pdf = (k + 1.0) * np.exp(-k - (k + 1.0) * w) * np.i0(2.0 * np.sqrt(k * (k + 1.0) * w))
    head = float(np.trapezoid(pdf, w)) if hasattr(np, "trapezoid") else float(np.trapz(pdf, w))
    return max(0.0, min(1.0, 1.0 - head))


def propagation_delay_ns(distance_m: float) -> int:
    """Line-of-sight propagation delay in integer nanoseconds."""
    return int(round(distance_m / SPEED_OF_LIGHT_M_PER_S * 1e9))
