"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.packet import Packet
from repro.phy.error_models import BitErrorModel
from repro.routing.static import StaticRouting
from repro.topology.network import WirelessNetwork


def build_chain_network(
    scheme: str,
    n_nodes: int = 4,
    hop_m: float = 115.0,
    ber: float = 1e-6,
    seed: int = 3,
    shadowing_deviation: float | None = None,
    **mac_kwargs,
):
    """A straight chain 0 - 1 - ... - (n-1) with a static end-to-end route.

    Returns ``(network, routing)``.  Used by MAC / forwarding / transport
    tests that need a real multi-hop substrate without the full experiment
    harness.
    """
    from repro.phy.propagation import ShadowingPropagation

    propagation = None
    if shadowing_deviation is not None:
        propagation = ShadowingPropagation(shadowing_deviation_db=shadowing_deviation)
    network = WirelessNetwork(
        error_model=BitErrorModel(ber), seed=seed, propagation=propagation
    )
    for i in range(n_nodes):
        network.add_node(i, (i * hop_m, 0.0))
    route = list(range(n_nodes))
    routing = StaticRouting({(0, n_nodes - 1): route})
    network.install_stack(scheme, routing, **mac_kwargs)
    return network, routing


def inject_packets(network, src: int, dst: int, count: int, size_bytes: int = 1000, flow_id: int = 1):
    """Push raw packets into a node's network layer (no transport involved)."""
    packets = []
    for seq in range(count):
        packet = Packet(
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            flow_id=flow_id,
            seq=seq,
            kind="data",
            created_ns=network.sim.now,
        )
        network.node(src).network.send(packet)
        packets.append(packet)
    return packets


def collect_deliveries(network, node_id: int):
    """Attach a list-collecting local-delivery callback at ``node_id``."""
    received = []
    network.node(node_id).network.set_local_delivery(received.append)
    return received


@pytest.fixture
def chain_factory():
    """Fixture exposing the chain builder to tests."""
    return build_chain_network
