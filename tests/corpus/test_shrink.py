"""Shrinking: a failure on a rich spec is pinned to its offending component.

This is the acceptance scenario of the corpus gate end to end: a
deliberately broken component (a runner that misbehaves only when the
resolved MAC is ``afr``) is caught by the determinism check on a
many-layer sampled spec, and the delta-debugging minimizer walks the
spec down to the baseline-plus-``mac=afr`` document — naming the broken
component without touching the global registries.
"""

import functools

from repro.corpus.checks import CheckContext, evaluate
from repro.corpus.shrink import (
    baseline_document,
    offending_components,
    shrink_document,
)


def _broken_for_afr(config):
    """A runner that is deterministic everywhere except under mac=afr."""
    from repro.experiments.runner import run_scenario

    payload = run_scenario(config).to_dict()
    mac, _, _ = config.resolved_components()
    if mac.name == "afr":
        payload["events_processed"] = payload["events_processed"] + id(config) % 97
    return payload


def _rich_failing_document():
    document = baseline_document()
    document["duration_s"] = 0.01
    document["mac"] = {"name": "afr", "params": {}}
    document["routing"] = {"name": "shortest_path", "params": {}}
    document["traffic"] = {"name": "voip", "params": {}}
    document["transport"] = {"name": "cubic", "params": {}}
    return document


class TestEndToEnd:
    def test_broken_component_is_caught_and_shrunk(self):
        make_context = functools.partial(CheckContext, run=_broken_for_afr)
        findings = evaluate(
            [_rich_failing_document()],
            check_ids=["determinism"],
            make_context=make_context,
        )
        assert len(findings) == 1
        finding = findings[0]
        assert finding.check == "determinism"
        # Shrunk to exactly baseline + the broken component.
        expected = baseline_document(like=finding.document)
        expected["mac"] = {"name": "afr", "params": {}}
        assert finding.shrunk == expected
        assert finding.components == ["mac=afr"]

    def test_clean_components_produce_no_findings(self):
        make_context = functools.partial(CheckContext, run=_broken_for_afr)
        document = _rich_failing_document()
        document["mac"] = {"name": "dcf", "params": {}}
        assert evaluate([document], ["determinism"], make_context=make_context) == []


class TestShrinkMechanics:
    def test_shrink_reaches_the_baseline_when_anything_fails(self):
        document = _rich_failing_document()
        baseline = baseline_document(like=document)
        assert shrink_document(document, lambda candidate: True) == baseline

    def test_shrink_keeps_the_document_when_nothing_else_fails(self):
        document = _rich_failing_document()
        minimal = shrink_document(document, lambda candidate: candidate == document)
        assert minimal == document

    def test_shrink_clears_unneeded_params(self):
        document = baseline_document()
        document["mac"] = {"name": "ripple", "params": {"max_aggregation": 4}}

        def fails(candidate):
            mac = candidate.get("mac")
            return bool(mac) and mac.get("name") == "ripple"

        minimal = shrink_document(document, fails)
        assert minimal["mac"] == {"name": "ripple", "params": {}}

    def test_offending_components_label_the_delta(self):
        baseline = baseline_document()
        minimal = dict(baseline)
        minimal["mac"] = {"name": "rate_adapt", "params": {"inner": "dcf"}}
        minimal["seed"] = 9
        assert offending_components(minimal, baseline) == [
            "mac=rate_adapt(inner=dcf)",
            "seed=9",
        ]
