"""Enumeration contract: the space covers the registries, obeys its table."""

import json

import pytest

from repro.corpus.space import (
    CONSTRAINTS,
    LAYERS,
    SpecSpace,
    contention_inner_names,
    default_space,
    packaged_trace_fixture,
)
from repro.spec import ScenarioSpec


@pytest.fixture(scope="module")
def space():
    return default_space()


class TestCoverage:
    def test_every_registry_name_is_a_choice(self, space):
        """A registered component that cannot be enumerated is a silent hole."""
        from repro.mac.registry import MAC_SCHEMES
        from repro.phy.registry import PROPAGATION_MODELS
        from repro.routing.registry import ROUTING_STRATEGIES
        from repro.topology.registry import TOPOLOGIES
        from repro.traffic.registry import TRAFFIC_KINDS
        from repro.transport.registry import TRANSPORT_SCHEMES

        def labels(layer):
            return " ".join(choice.label for choice in space.layers[layer])

        for name in TOPOLOGIES.names():
            assert name in labels("topology")
        for name in MAC_SCHEMES.names():
            assert name in labels("mac")
        for name in ROUTING_STRATEGIES.names():
            assert name in labels("routing")
        for name in TRAFFIC_KINDS.names():
            assert name in labels("traffic")
        for name in TRANSPORT_SCHEMES.names():
            if name != "reno":  # the absent-spec default
                assert name in labels("transport")
        for name in PROPAGATION_MODELS.names():
            assert name in labels("phy")

    def test_trace_fixture_is_enumerable(self, space):
        labels = [choice.label for choice in space.layers["topology"]]
        assert "trace:corpus_line.csv" in labels

    def test_wrapper_mac_enumerated_per_inner(self, space):
        labels = [choice.label for choice in space.layers["mac"]]
        for inner in contention_inner_names():
            assert f"rate_adapt(inner={inner})" in labels

    def test_size_is_layer_product(self, space):
        expected = 1
        for layer in LAYERS:
            expected *= len(space.layers[layer])
        assert space.size() == expected


class TestConstraints:
    def test_sampled_combos_satisfy_every_constraint(self, space):
        for combo in space.sample(64, sample_seed=7):
            for constraint in CONSTRAINTS:
                assert constraint.allows(combo), constraint.id

    def test_mobility_excluded_on_fixed_layouts(self, space):
        moving = next(
            c for c in space.layers["mobility"] if c.label == "random_waypoint"
        )
        fig1 = next(c for c in space.layers["topology"] if c.label == "fig1")
        line = next(c for c in space.layers["topology"] if c.label == "line")
        base = space.combo_at(0)
        combo = dict(base, topology=fig1, mobility=moving)
        assert space.violated(combo) is not None
        assert space.violated(combo).id == "mobility-fixed-layout"
        assert space.violated(dict(base, topology=line, mobility=moving)) is None

    def test_missing_trace_file_is_inadmissible(self):
        space = default_space(trace_paths=("/nonexistent/never.csv",))
        bad = next(
            c for c in space.layers["topology"] if c.label == "trace:never.csv"
        )
        combo = dict(space.combo_at(0), topology=bad)
        assert space.violated(combo).id == "trace-topology-file"


class TestSampling:
    def test_sampling_is_deterministic_per_seed(self, space):
        first = [space.describe(c) for c in space.sample(16, sample_seed=3)]
        second = [space.describe(c) for c in space.sample(16, sample_seed=3)]
        other = [space.describe(c) for c in space.sample(16, sample_seed=4)]
        assert first == second
        assert first != other

    def test_sample_has_no_duplicates(self, space):
        described = [space.describe(c) for c in space.sample(48, sample_seed=0)]
        assert len(described) == len(set(described))

    def test_oversampling_tiny_space_returns_everything(self):
        layers = {
            layer: [choices[0]] for layer, choices in default_space().layers.items()
        }
        tiny = SpecSpace(layers)
        assert len(tiny.sample(10, sample_seed=0)) == tiny.size() == 1


class TestDocuments:
    def test_documents_parse_and_are_fixpoints(self, space):
        for combo in space.sample(24, sample_seed=1):
            document = space.document_for(combo)
            json.dumps(document)  # JSON-safe all the way down
            assert ScenarioSpec.from_dict(document).to_dict() == document

    def test_documents_carry_the_corpus_framing(self, space):
        document = space.document_for(space.sample(1, sample_seed=0)[0])
        assert document["duration_s"] == space.duration_s
        assert document["seed"] == space.base_seed

    def test_packaged_fixture_exists(self):
        import os

        assert os.path.isfile(packaged_trace_fixture())
