"""The golden-digest pin: accidental digest drift fails, schema bumps pass.

``tests/corpus/golden_digests.json`` pins the sweep-cache digest of one
canonical scenario per registered component.  The committed tree must
verify clean; any change that moves a digest without bumping
``CACHE_SCHEMA_VERSION`` must fail with an actionable message.
"""

import json
from pathlib import Path

import pytest

from repro.corpus import golden

GOLDEN_PATH = Path(__file__).parent / "golden_digests.json"


@pytest.fixture(scope="module")
def stored():
    return json.loads(GOLDEN_PATH.read_text())


class TestCommittedPins:
    def test_committed_tree_matches_the_pins(self, stored):
        assert golden.verify_golden(stored) == []

    def test_panel_covers_at_least_twenty_scenarios(self, stored):
        assert len(stored["digests"]) >= 20

    def test_every_registry_surfaces_in_the_panel(self, stored):
        labels = set(stored["digests"])
        for prefix in ("topology=", "mac=", "routing=", "traffic=",
                       "transport=", "phy.propagation=", "mobility="):
            assert any(label.startswith(prefix) for label in labels), prefix

    def test_trace_pin_is_path_independent(self, stored):
        # The fixture is addressed by an absolute path, but its digest is
        # computed over the resolved topology (name trace:corpus_line,
        # positions inline) — no machine-specific path can leak in.
        assert "topology=trace:corpus_line" in stored["digests"]
        documents = golden.golden_documents()
        digest = golden.current_digests()["topology=trace:corpus_line"]
        assert str(Path.cwd()) not in digest
        assert documents["topology=trace:corpus_line"]["topology"]["ref"]["name"].startswith("trace:")


class TestDriftDetection:
    def test_digest_change_without_schema_bump_fails(self, stored, monkeypatch):
        monkeypatch.setattr(
            golden, "config_digest", lambda config: "0" * 64
        )
        messages = golden.verify_golden(stored)
        assert messages and all("drift" in message for message in messages)
        assert any("CACHE_SCHEMA_VERSION" in message for message in messages)

    def test_schema_bump_short_circuits_to_regenerate_advice(self, stored, monkeypatch):
        import repro.experiments.parallel as parallel

        monkeypatch.setattr(
            parallel, "CACHE_SCHEMA_VERSION", parallel.CACHE_SCHEMA_VERSION + 1
        )
        messages = golden.verify_golden(stored)
        assert len(messages) == 1
        assert "regenerate" in messages[0]

    def test_missing_pin_file_is_reported(self, tmp_path):
        messages = golden.verify_golden_file(str(tmp_path / "absent.json"))
        assert messages and "missing" in messages[0]

    def test_unpinned_scenario_is_reported(self, stored):
        trimmed = {
            "schema": stored["schema"],
            "digests": dict(list(stored["digests"].items())[:-1]),
        }
        messages = golden.verify_golden(trimmed)
        assert messages and "not pinned" in messages[0]
