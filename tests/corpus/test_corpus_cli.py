"""CLI contract of python -m repro.corpus: exit codes, JSON, docs flags."""

import json

from repro.corpus.__main__ import JSON_SCHEMA_VERSION, main
from repro.corpus.checks import known_check_ids


class TestGate:
    def test_clean_sample_exits_zero(self, capsys):
        assert main(["--sample", "2", "--seed", "0", "--duration", "0.005"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_json_output_schema(self, capsys):
        status = main(
            [
                "--sample", "2", "--seed", "0", "--duration", "0.005",
                "--check", "roundtrip", "--format", "json",
            ]
        )
        assert status == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == JSON_SCHEMA_VERSION
        assert document["sample"] == 2
        assert document["seed"] == 0
        assert document["checks"] == ["roundtrip"]
        assert len(document["specs"]) == 2
        assert document["count"] == 0 and document["findings"] == []

    def test_list_prints_the_check_catalogue(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for check_id in known_check_ids():
            assert check_id in out

    def test_unknown_check_is_a_usage_error(self, capsys):
        try:
            main(["--check", "bogus"])
        except SystemExit as exc:
            assert exc.code == 2
        else:  # pragma: no cover - argparse always raises
            raise AssertionError("expected SystemExit")


class TestDocs:
    def test_committed_corpus_docs_are_fresh(self, capsys):
        assert main(["--check-docs"]) == 0
        assert "up to date" in capsys.readouterr().out

    def test_stale_docs_exit_one_with_diff(self, tmp_path, capsys):
        stale = tmp_path / "CORPUS.md"
        stale.write_text("outdated\n", encoding="utf-8")
        assert main(["--check-docs", "--docs-output", str(stale)]) == 1
        assert "stale" in capsys.readouterr().out

    def test_write_docs_round_trips_check(self, tmp_path, capsys):
        target = tmp_path / "CORPUS.md"
        assert main(["--write-docs", "--docs-output", str(target)]) == 0
        assert main(["--check-docs", "--docs-output", str(target)]) == 0


class TestGolden:
    def test_write_golden_creates_the_pin_file(self, tmp_path, capsys):
        target = tmp_path / "golden.json"
        assert main(["--write-golden", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert set(payload) == {"schema", "digests"}
        assert len(payload["digests"]) >= 20
