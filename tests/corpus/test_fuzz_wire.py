"""Property-fuzz the strict wire formats: every malformed document names itself.

Randomized mutations — unknown-key injection, required-key removal,
wrong-typed component entries — over every ``from_dict`` wire class
(component specs, ScenarioSpec, ScenarioConfig, the service's JobRecord
and SubmitRequest) must raise :class:`~repro.serialization.SpecError`
messages naming the offending field and the accepting class.  Randomness
comes only from the keyed Philox streams of :mod:`repro.sim.rng`
(seeded, machine-independent), so a failing mutation reproduces by
rerunning the test — no wall-clock seeds, no flakes.
"""

import pytest

from repro.corpus.shrink import baseline_document
from repro.serialization import SpecError
from repro.sim.rng import RandomStreams
from repro.spec import COMPONENT_SPEC_CLASSES, ScenarioSpec

#: Fuzz iterations per (class, mutation) pair — tiny documents, so cheap.
ROUNDS = 25


def _stream(*keys):
    return RandomStreams(0).stream_for("/".join(("fuzz-wire",) + keys))


def _random_key(generator, taken):
    while True:
        suffix = "".join(chr(ord("a") + int(d)) for d in generator.integers(0, 26, size=8))
        key = f"fz_{suffix}"
        if key not in taken:
            return key


def _wire_classes():
    """(class, known-good document) for every strict wire format."""
    from repro.experiments.runner import ScenarioConfig
    from repro.service.schemas import SubmitRequest
    from repro.service.store import JobRecord

    cases = []
    for field, cls in COMPONENT_SPEC_CLASSES.items():
        name = cls.registry().names()[0]
        cases.append((cls, {"name": name, "params": {}}))
    spec_doc = baseline_document()
    cases.append((ScenarioSpec, spec_doc))
    cases.append((ScenarioConfig, ScenarioSpec.from_dict(spec_doc).to_config().to_dict()))
    cases.append((JobRecord, {"job_id": "fuzz-1", "state": "queued"}))
    cases.append((SubmitRequest, {"spec": dict(spec_doc)}))
    return cases


@pytest.mark.parametrize(
    "cls,document", _wire_classes(), ids=lambda case: getattr(case, "__name__", None)
)
class TestUnknownKeyInjection:
    def test_random_unknown_keys_are_named(self, cls, document):
        generator = _stream("unknown", cls.__name__)
        cls.from_dict(dict(document))  # the unmutated document must parse
        for _ in range(ROUNDS):
            key = _random_key(generator, set(document))
            mutated = dict(document)
            mutated[key] = None
            with pytest.raises(SpecError) as excinfo:
                cls.from_dict(mutated)
            message = str(excinfo.value)
            assert key in message and cls.__name__ in message


def _required_cases():
    """(class, known-good document, keys its from_dict declares required)."""
    from repro.experiments.runner import ScenarioConfig
    from repro.service.schemas import SubmitRequest
    from repro.service.store import JobRecord

    cases = []
    for cls, document in _wire_classes():
        if cls in COMPONENT_SPEC_CLASSES.values():
            cases.append((cls, document, ("name",)))
    spec_doc = baseline_document()
    cases.append((ScenarioSpec, spec_doc, ("topology",)))
    cases.append(
        (
            ScenarioConfig,
            ScenarioSpec.from_dict(spec_doc).to_config().to_dict(),
            ("topology", "route_set", "bit_error_rate", "duration_s", "seed"),
        )
    )
    cases.append((JobRecord, {"job_id": "fuzz-1", "state": "queued"}, ("job_id",)))
    cases.append((SubmitRequest, {"spec": dict(spec_doc)}, ("spec",)))
    return cases


@pytest.mark.parametrize("cls,document,required", _required_cases())
class TestRequiredKeyRemoval:
    def test_truncated_documents_name_the_missing_field(self, cls, document, required):
        generator = _stream("truncate", cls.__name__)
        for _ in range(ROUNDS):
            key = required[int(generator.integers(len(required)))]
            mutated = {k: v for k, v in document.items() if k != key}
            with pytest.raises(SpecError) as excinfo:
                cls.from_dict(mutated)
            message = str(excinfo.value)
            assert "missing required field" in message
            assert key in message and cls.__name__ in message


class TestWrongTypes:
    #: ScenarioSpec fields that must hold component dicts (or None).
    COMPONENT_FIELDS = ("topology", "mac", "routing", "traffic", "transport", "mobility")
    SCALARS = (0, 1.5, "dcf", True, ["dcf"])

    def test_scalar_component_entries_raise_spec_errors(self):
        generator = _stream("wrong-type", "ScenarioSpec")
        for _ in range(ROUNDS):
            field = self.COMPONENT_FIELDS[int(generator.integers(len(self.COMPONENT_FIELDS)))]
            scalar = self.SCALARS[int(generator.integers(len(self.SCALARS)))]
            mutated = baseline_document()
            mutated[field] = scalar
            with pytest.raises((SpecError, ValueError)):
                ScenarioSpec.from_dict(mutated)

    def test_scalar_submit_spec_is_rejected_by_name(self):
        from repro.service.schemas import SubmitRequest

        with pytest.raises(SpecError, match="SubmitRequest.spec must be a dict"):
            SubmitRequest.from_dict({"spec": "line"})

    def test_non_dict_document_names_the_class(self):
        with pytest.raises(SpecError, match="ScenarioSpec expects a dict"):
            ScenarioSpec.from_dict("not a dict")
