"""Invariant checks: clean scenarios pass, injected breakage is caught."""

import pytest

from repro.corpus.checks import (
    CORPUS_CHECKS,
    CheckContext,
    evaluate,
    known_check_ids,
    run_check_on,
)
from repro.corpus.shrink import baseline_document


def _tiny_document(**overrides):
    document = baseline_document()
    document["duration_s"] = 0.01
    document.update(overrides)
    return document


class TestCleanPass:
    def test_all_checks_pass_on_the_baseline(self):
        ctx = CheckContext(_tiny_document())
        for check_id in known_check_ids():
            check = CORPUS_CHECKS.lookup(check_id)
            assert run_check_on(check, ctx) is None, check_id

    def test_evaluate_returns_no_findings(self):
        documents = [
            _tiny_document(),
            _tiny_document(mac={"name": "ripple", "params": {}}),
        ]
        assert evaluate(documents) == []


class TestRegistry:
    def test_check_ids_cover_the_advertised_invariants(self):
        assert known_check_ids() == [
            "roundtrip",
            "digest-stability",
            "determinism",
            "parallel-serial",
            "cache-roundtrip",
        ]

    def test_unknown_check_id_raises(self):
        from repro.registry import RegistryError

        with pytest.raises(RegistryError):
            CORPUS_CHECKS.lookup("bogus")


class TestInjectedBreakage:
    def test_nondeterministic_runner_trips_determinism(self):
        calls = {"n": 0}

        def flaky_run(config):
            from repro.experiments.runner import run_scenario

            payload = run_scenario(config).to_dict()
            calls["n"] += 1
            payload["events_processed"] = payload["events_processed"] + calls["n"]
            return payload

        ctx = CheckContext(_tiny_document(), run=flaky_run)
        message = run_check_on(CORPUS_CHECKS.lookup("determinism"), ctx)
        assert message is not None and "re-running" in message

    def test_divergent_parallel_runner_trips_parallel_serial(self):
        def skewed_parallel(configs):
            from repro.experiments.runner import run_scenario

            payloads = [run_scenario(config).to_dict() for config in configs]
            payloads[-1]["events_processed"] += 1
            return payloads

        ctx = CheckContext(_tiny_document(), run_parallel=skewed_parallel)
        message = run_check_on(CORPUS_CHECKS.lookup("parallel-serial"), ctx)
        assert message is not None and "parallel run" in message

    def test_crashing_runner_becomes_a_finding_message(self):
        def exploding_run(config):
            raise RuntimeError("boom")

        ctx = CheckContext(_tiny_document(), run=exploding_run)
        message = run_check_on(CORPUS_CHECKS.lookup("determinism"), ctx)
        assert message == "RuntimeError: boom"
