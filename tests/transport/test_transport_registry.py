"""The transport registry, TransportSpec and per-flow controller resolution."""

from __future__ import annotations

import json

import pytest

from repro.registry import RegistryError
from repro.spec import SpecError, TransportSpec
from repro.topology.spec import FlowSpec
from repro.transport import TRANSPORT_SCHEMES, build_controller
from repro.transport.congestion import (
    CubicController,
    NewRenoController,
    RenoController,
    TahoeController,
)
from repro.transport.registry import DEFAULT_TRANSPORT


class TestRegistry:
    def test_all_schemes_registered(self):
        names = TRANSPORT_SCHEMES.known_names()
        for name in ("reno", "tahoe", "newreno", "cubic"):
            assert name in names

    def test_default_is_reno(self):
        assert DEFAULT_TRANSPORT == "reno"
        assert isinstance(build_controller(DEFAULT_TRANSPORT), RenoController)

    def test_build_controller_types(self):
        assert isinstance(build_controller("tahoe"), TahoeController)
        assert isinstance(build_controller("newreno"), NewRenoController)
        assert isinstance(build_controller("cubic"), CubicController)

    def test_build_controller_params(self):
        cubic = build_controller("cubic", beta=0.5, fast_convergence=False)
        assert cubic.beta == 0.5
        assert cubic.fast_convergence is False
        assert cubic.c == 0.4  # untouched default

    def test_unknown_scheme_rejected(self):
        with pytest.raises(RegistryError):
            build_controller("vegas")

    def test_fresh_instance_per_build(self):
        assert build_controller("reno") is not build_controller("reno")


class TestTransportSpec:
    def test_roundtrip(self):
        spec = TransportSpec("cubic", {"beta": 0.6})
        rebuilt = TransportSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.to_dict() == {"name": "cubic", "params": {"beta": 0.6}}

    def test_unknown_name_fails_at_construction(self):
        with pytest.raises(SpecError, match="transport scheme"):
            TransportSpec("vegas")

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError):
            TransportSpec.from_dict({"name": "reno", "parms": {}})


class TestFlowSpecTransport:
    def test_default_omits_the_key(self):
        flow = FlowSpec(flow_id=1, src=0, dst=3)
        assert "transport" not in flow.to_dict()

    def test_roundtrip_with_override(self):
        flow = FlowSpec(flow_id=1, src=0, dst=3, transport="cubic")
        data = flow.to_dict()
        assert data["transport"] == "cubic"
        assert FlowSpec.from_dict(json.loads(json.dumps(data))) == flow


class TestControllerResolution:
    """Precedence: traffic param > FlowSpec.transport > scenario TransportSpec."""

    class _Config:
        def __init__(self, transport=None):
            self.transport = transport

    def resolve(self, config_transport=None, flow_transport=None, override=None):
        from repro.traffic.registry import _controller_for

        flow = FlowSpec(flow_id=1, src=0, dst=3, transport=flow_transport)
        return _controller_for(self._Config(config_transport), flow, override)

    def test_nothing_configured_yields_none(self):
        assert self.resolve() is None

    def test_scenario_spec_applies(self):
        controller = self.resolve(config_transport=TransportSpec("cubic", {"beta": 0.6}))
        assert isinstance(controller, CubicController)
        assert controller.beta == 0.6

    def test_flow_override_beats_scenario_spec(self):
        controller = self.resolve(
            config_transport=TransportSpec("cubic"), flow_transport="tahoe"
        )
        assert isinstance(controller, TahoeController)

    def test_traffic_param_beats_everything(self):
        controller = self.resolve(
            config_transport=TransportSpec("cubic"),
            flow_transport="tahoe",
            override="newreno",
        )
        assert isinstance(controller, NewRenoController)
