"""Forced-drop trajectory tests: each controller against hand-computed traces.

Two layers of coverage:

* **Unit trajectories** drive a bare controller through a scripted event
  sequence (ACKs, duplicate ACKs, timeouts) and assert the exact
  ``cwnd``/``ssthresh`` values at every step.  The expected floats are
  computed by hand from the published state machines — slow start doubles,
  ``ssthresh = max(flight/2, 2)`` at fast retransmit, RFC 6582 partial-ACK
  deflation, the cubic ``W(t) = C(t-K)^3 + W_max`` curve — not by running
  the code under test.
* **Pipe episodes** run a real :class:`~repro.transport.tcp.TcpSender`
  over the deterministic :class:`tests.transport.harness.TcpPipe` with a
  :class:`~repro.transport.dropscript.DropScript` forcing the named
  episode: triple-dupACK fast retransmit, partial ACK (two holes in one
  window), full-window loss -> RTO with exponential backoff, and
  reorder-without-loss (a delayed segment causing a spurious fast
  retransmit).
"""

from __future__ import annotations

import pytest

from repro.sim.units import ms
from repro.transport.congestion import (
    CubicController,
    NewRenoController,
    RenoController,
    TahoeController,
)
from tests.transport.harness import TcpPipe

#: ``srtt`` handed to bare controllers in unit trajectories (10 ms).
SRTT_NS = ms(10)


def grow(controller, acks, start_ack=1, flight=4):
    """Feed ``acks`` single-segment cumulative ACKs outside recovery."""
    for i in range(acks):
        assert controller.on_ack(start_ack + i, 1, flight, 0, SRTT_NS) is False


class TestRenoTrajectory:
    """The seed machine: fast recovery with ssthresh-floored partial ACKs."""

    def test_triple_dupack_partial_and_full_ack(self):
        c = RenoController().attach(awnd_segments=64, initial_cwnd=2.0)
        assert (c.cwnd, c.ssthresh) == (2.0, 64.0)

        # Slow start: each ACK adds one full segment.
        grow(c, 2)
        assert c.cwnd == 4.0

        # Episode: triple duplicate ACK with 4 segments in flight.
        assert c.on_dupack(4, 6, 0, SRTT_NS) is False
        assert c.on_dupack(4, 6, 0, SRTT_NS) is False
        assert c.cwnd == 4.0  # first two dupacks change nothing
        assert c.on_dupack(4, 6, 0, SRTT_NS) is True  # fast retransmit
        assert c.ssthresh == 2.0  # max(4/2, 2)
        assert c.cwnd == 5.0  # ssthresh + 3
        assert c.in_recovery and c.recover == 5

        # A further dupack inflates the window while the hole persists.
        assert c.on_dupack(4, 6, 0, SRTT_NS) is False
        assert c.cwnd == 6.0

        # Partial ACK (ack 4 <= recover): retransmit the next hole and
        # deflate, but never below ssthresh (the seed's floor).
        assert c.on_ack(4, 2, 2, 0, SRTT_NS) is True
        assert c.cwnd == 5.0  # max(2, 6 - 2 + 1)
        assert c.in_recovery

        # Full ACK (ack 6 > recover): recovery exits at ssthresh.
        assert c.on_ack(6, 2, 0, 0, SRTT_NS) is False
        assert not c.in_recovery
        assert c.cwnd == 2.0

        # Now at ssthresh: congestion avoidance adds 1/cwnd per segment.
        assert c.on_ack(7, 1, 1, 0, SRTT_NS) is False
        assert c.cwnd == 2.5

    def test_timeout_collapses_to_one_segment(self):
        c = RenoController().attach(64, 2.0)
        grow(c, 6)
        assert c.cwnd == 8.0
        c.on_timeout(flight_size=8, now_ns=0)
        assert c.cwnd == 1.0
        assert c.ssthresh == 4.0  # max(8/2, 2)
        assert not c.in_recovery


class TestTahoeTrajectory:
    """No fast recovery: three dupacks cost a full slow-start epoch."""

    def test_triple_dupack_slow_starts(self):
        c = TahoeController().attach(64, 2.0)
        grow(c, 2)
        assert c.cwnd == 4.0

        assert c.on_dupack(4, 6, 0, SRTT_NS) is False
        assert c.on_dupack(4, 6, 0, SRTT_NS) is False
        assert c.on_dupack(4, 6, 0, SRTT_NS) is True  # retransmit the hole...
        assert c.cwnd == 1.0  # ...but collapse instead of halving
        assert c.ssthresh == 2.0
        assert not c.in_recovery  # Tahoe never enters recovery

        # Further dupacks neither inflate nor retransmit.
        assert c.on_dupack(4, 6, 0, SRTT_NS) is False
        assert c.cwnd == 1.0

        # The recovering ACK slow-starts (1 < ssthresh), then CA.
        assert c.on_ack(4, 2, 0, 0, SRTT_NS) is False
        assert c.cwnd == 3.0
        assert c.on_ack(5, 1, 0, 0, SRTT_NS) is False
        assert c.cwnd == pytest.approx(3.0 + 1.0 / 3.0)


class TestNewRenoTrajectory:
    """RFC 6582: pure partial-ACK deflation and burst-avoiding exit."""

    def test_partial_ack_deflates_below_ssthresh(self):
        c = NewRenoController().attach(64, 2.0)
        grow(c, 8)
        assert c.cwnd == 10.0

        for _ in range(2):
            assert c.on_dupack(12, 13, 0, SRTT_NS) is False
        assert c.on_dupack(12, 13, 0, SRTT_NS) is True
        assert c.ssthresh == 6.0  # max(12/2, 2)
        assert c.cwnd == 9.0  # ssthresh + 3
        assert c.recover == 12

        # Partial ACK for 8 segments: deflate by the amount acked plus
        # one MSS — NO ssthresh floor (Reno would stop at 6.0 here).
        assert c.on_ack(9, 8, 4, 0, SRTT_NS) is True
        assert c.cwnd == 2.0  # max(9 - 8 + 1, 1)
        assert c.in_recovery

        # Full ACK with 3 segments left in flight: exit at
        # min(ssthresh, flight + 1) to avoid a deflation burst.
        assert c.on_ack(13, 4, 3, 0, SRTT_NS) is False
        assert c.cwnd == 4.0  # min(6, 3 + 1)
        assert not c.in_recovery

    def test_reno_floor_is_the_divergence(self):
        """Same episode through the seed machine: the floor binds at 6.0."""
        c = RenoController().attach(64, 2.0)
        grow(c, 8)
        for _ in range(2):
            c.on_dupack(12, 13, 0, SRTT_NS)
        assert c.on_dupack(12, 13, 0, SRTT_NS) is True
        assert c.on_ack(9, 8, 4, 0, SRTT_NS) is True
        assert c.cwnd == 6.0  # max(ssthresh=6, 2)
        assert c.on_ack(13, 4, 3, 0, SRTT_NS) is False
        assert c.cwnd == 6.0  # flat ssthresh exit


class TestCubicTrajectory:
    """Time-based growth: the window follows W(t) = C(t-K)^3 + W_max."""

    def make_post_loss(self):
        """A cubic flow that lost at cwnd=10 and exited recovery at 7.0."""
        c = CubicController().attach(64, 2.0)
        grow(c, 8)
        assert c.cwnd == 10.0
        for _ in range(2):
            assert c.on_dupack(10, 11, 0, SRTT_NS) is False
        assert c.on_dupack(10, 11, 0, SRTT_NS) is True
        assert c.w_max == 10.0  # first loss: plateau = cwnd at loss
        assert c.ssthresh == 7.0  # max(10 * 0.7, 2)
        assert c.cwnd == 10.0  # ssthresh + 3
        assert c.on_ack(11, 1, 0, ms(15), SRTT_NS) is False  # full ACK
        assert c.cwnd == 7.0
        return c

    def test_congestion_avoidance_follows_the_cubic_curve(self):
        c = self.make_post_loss()
        # Hand-computed from W(t) = 10 + 0.4*(t + srtt - K)^3 with
        # K = ((10-7)/0.4)^(1/3), per-ACK pacing cwnd += (target-cwnd)/cwnd,
        # and the TCP-friendly w_est floor
        # (w_est += 3(1-b)/(1+b) * newly/cwnd, which dominates early on).
        expected = [
            (ms(20), 7.0108043217),
            (ms(30), 7.0308219435),
            (ms(40), 7.0586452493),
            (ms(70), 7.0930426852),
            (ms(120), 7.1472975400),
        ]
        for now_ns, want in expected:
            assert c.on_ack(12, 1, 5, now_ns, SRTT_NS) is False
            assert c.cwnd == pytest.approx(want, rel=1e-9)
        # The epoch anchored at the first CA ack with K back to the plateau.
        assert c._k == pytest.approx(((10.0 - 7.0) / 0.4) ** (1.0 / 3.0))
        # Concave region: growth is monotone and still below the plateau.
        assert c.cwnd < c.w_max

    def test_fast_convergence_shrinks_the_plateau(self):
        c = self.make_post_loss()
        c.on_ack(12, 1, 5, ms(20), SRTT_NS)
        before = c.cwnd
        assert before < c.w_max
        for _ in range(2):
            c.on_dupack(7, 13, ms(25), SRTT_NS)
        assert c.on_dupack(7, 13, ms(25), SRTT_NS) is True
        # Lost ground since the last plateau: concede bandwidth by
        # recording a shrunken W_max = cwnd * (2 - beta) / 2.
        assert c.w_max == pytest.approx(before * (2.0 - 0.7) / 2.0)
        assert c.ssthresh == pytest.approx(max(before * 0.7, 2.0))

    def test_timeout_starts_a_new_epoch(self):
        c = self.make_post_loss()
        c.on_ack(12, 1, 5, ms(20), SRTT_NS)
        cwnd_at_loss = c.cwnd
        c.on_timeout(flight_size=5, now_ns=ms(30))
        assert c.cwnd == 1.0
        assert c.ssthresh == pytest.approx(max(cwnd_at_loss * 0.7, 2.0))
        assert c._epoch_start_ns == -1  # next CA ack re-anchors the curve

    def test_no_params_disable_fast_convergence(self):
        c = CubicController(fast_convergence=False).attach(64, 2.0)
        grow(c, 8)
        for _ in range(3):
            c.on_dupack(10, 11, 0, SRTT_NS)
        c.on_ack(11, 1, 0, ms(15), SRTT_NS)
        assert c.cwnd == 7.0
        c.on_ack(12, 1, 5, ms(20), SRTT_NS)
        before = c.cwnd
        for _ in range(3):
            c.on_dupack(7, 13, ms(25), SRTT_NS)
        assert c.w_max == pytest.approx(before)  # plateau NOT shrunk


ALL_CONTROLLERS = [RenoController, TahoeController, NewRenoController, CubicController]


class TestPipeEpisodes:
    """Scripted-drop episodes over the deterministic two-host pipe."""

    def test_triple_dupack_fast_retransmit(self):
        pipe = TcpPipe()
        pipe.script.drop(5)
        pipe.sender.send_bytes(40 * 1000)
        pipe.run_seconds(2.0)
        assert pipe.script.dropped == 1
        assert pipe.sender.stats.fast_retransmits == 1
        assert pipe.sender.stats.timeouts == 0
        assert pipe.sender.transfer_complete
        assert pipe.sink.next_expected == 40
        # The trace shows the halving: ssthresh fell from awnd (64) to
        # flight/2 exactly once, and recovery was entered and exited.
        assert any(s.in_recovery for s in pipe.trace)
        assert not pipe.trace[-1].in_recovery
        halved = min(s.ssthresh for s in pipe.trace)
        assert 2.0 <= halved < 64.0

    def test_partial_ack_two_holes_one_window(self):
        pipe = TcpPipe()
        pipe.script.drop(6).drop(9)
        pipe.sender.send_bytes(40 * 1000)
        pipe.run_seconds(2.0)
        assert pipe.script.dropped == 2
        # One dupack burst covers both holes: the second is retransmitted
        # on the partial ACK, with no second fast retransmit and no RTO.
        assert pipe.sender.stats.fast_retransmits == 1
        assert pipe.sender.stats.timeouts == 0
        assert pipe.sender.stats.retransmissions >= 2
        assert pipe.sender.transfer_complete

    def test_full_window_loss_rto_and_backoff(self):
        pipe = TcpPipe()
        # The whole initial window (cwnd=2) is lost, and the first RTO
        # retransmission is lost too: 1 s RTO, then a doubled 2 s RTO.
        pipe.script.drop(0, times=2).drop(1)
        pipe.sender.send_bytes(6 * 1000)
        pipe.run_seconds(5.0)
        assert pipe.sender.stats.timeouts == 2
        assert pipe.sender.stats.rto_backoffs == 1  # only the second fired backed off
        assert pipe.sender.stats.fast_retransmits == 0
        assert pipe.sender.transfer_complete
        assert pipe.script.exhausted

    def test_reorder_without_loss_spurious_fast_retransmit(self):
        pipe = TcpPipe()
        # Delay one segment by 2.5x RTT: later segments arrive first,
        # dupacks accumulate, and the sender fast-retransmits a segment
        # that was never lost.
        pipe.script.delay(8, ms(25))
        pipe.sender.send_bytes(40 * 1000)
        pipe.run_seconds(2.0)
        assert pipe.script.dropped == 0
        assert pipe.script.delayed == 1
        assert pipe.sender.stats.fast_retransmits >= 1  # spurious
        assert pipe.sender.stats.timeouts == 0
        # Both copies eventually arrive: the sink saw a duplicate and a
        # re-ordered arrival, yet delivered everything.
        assert pipe.sink.stats.duplicate_segments >= 1
        assert pipe.sink.stats.reordered_segments >= 1
        assert pipe.sender.transfer_complete

    def test_tahoe_collapses_where_reno_halves(self):
        traces = {}
        for controller_cls in (RenoController, TahoeController):
            pipe = TcpPipe(controller=controller_cls())
            pipe.script.drop(5)
            pipe.sender.send_bytes(40 * 1000)
            pipe.run_seconds(2.0)
            assert pipe.sender.transfer_complete
            traces[controller_cls.name] = pipe.trace
        assert any(s.cwnd == 1.0 for s in traces["tahoe"])
        assert all(s.cwnd > 1.0 for s in traces["reno"])
        assert not any(s.in_recovery for s in traces["tahoe"])

    @pytest.mark.parametrize("controller_cls", ALL_CONTROLLERS, ids=lambda c: c.name)
    def test_every_variant_recovers_from_a_scripted_drop(self, controller_cls):
        pipe = TcpPipe(controller=controller_cls())
        pipe.script.drop(5)
        pipe.sender.send_bytes(30 * 1000)
        pipe.run_seconds(3.0)
        assert pipe.sender.stats.fast_retransmits == 1
        assert pipe.sender.stats.timeouts == 0
        assert pipe.sender.transfer_complete
        assert pipe.sink.next_expected == 30

    @pytest.mark.parametrize("controller_cls", ALL_CONTROLLERS, ids=lambda c: c.name)
    def test_episodes_are_deterministic(self, controller_cls):
        def run():
            pipe = TcpPipe(controller=controller_cls())
            pipe.script.drop(3).drop(9).delay(14, ms(25))
            pipe.sender.send_bytes(50 * 1000)
            pipe.run_seconds(4.0)
            return pipe.trace, pipe.sender.stats, pipe.sim.now

        first, second = run(), run()
        assert first == second
