"""Forced-drop trace harness: a deterministic two-host pipe for TCP episodes.

The trajectory tests need to march a congestion controller through
*exactly* the episode they name — triple-dupACK, partial ACK, full-window
loss, reorder-without-loss — and assert the resulting cwnd/ssthresh
trace against hand-computed values.  A real MAC/PHY stack underneath
would make that impossible (stochastic fades, contention timing), so
:class:`TcpPipe` wires a real :class:`~repro.transport.tcp.TcpSender`,
:class:`~repro.transport.tcp.TcpSink` and two real
:class:`~repro.transport.host.TransportHost` instances over a fake
network that is nothing but a fixed one-way latency.  The RTT is exactly
``2 * latency_ns``, nothing is ever lost or re-ordered unless the
attached :class:`~repro.transport.dropscript.DropScript` says so, and
every run is bit-deterministic.

A cwnd recorder rides as a second flow handler on the sender's host;
handlers run in registration order, so each trace sample observes the
window *after* the sender processed that ACK.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.units import ms
from repro.transport.congestion import CongestionController
from repro.transport.dropscript import DropScript
from repro.transport.host import TransportHost
from repro.transport.tcp import TcpAck, TcpSender, TcpSink

#: Default one-way pipe latency; RTT = 2 x this = 10 ms, far below min RTO.
DEFAULT_LATENCY_NS = ms(5)


class _PipeEndpoint:
    """One direction of the pipe: delivers every packet after a fixed latency."""

    def __init__(self, sim: Simulator, latency_ns: int) -> None:
        self.sim = sim
        self.latency_ns = latency_ns
        self._deliver = None
        self.peer: Optional["_PipeEndpoint"] = None

    def set_local_delivery(self, callback) -> None:
        self._deliver = callback

    def send(self, packet) -> bool:
        peer = self.peer
        self.sim.schedule(self.latency_ns, lambda: peer._deliver(packet))
        return True


@dataclass
class TraceSample:
    """One observed ACK at the sender, with the post-update window state."""

    now_ns: int
    ack: int
    cwnd: float
    ssthresh: float
    in_recovery: bool


class TcpPipe:
    """A sender/sink pair over a scripted, loss-free, fixed-latency pipe."""

    def __init__(
        self,
        controller: Optional[CongestionController] = None,
        latency_ns: int = DEFAULT_LATENCY_NS,
        awnd_segments: int = 64,
        **sender_kwargs,
    ) -> None:
        self.sim = Simulator()
        forward = _PipeEndpoint(self.sim, latency_ns)
        backward = _PipeEndpoint(self.sim, latency_ns)
        forward.peer, backward.peer = backward, forward
        self.src_host = TransportHost(self.sim, 0, forward)
        self.dst_host = TransportHost(self.sim, 1, backward)
        self.script = DropScript()
        self.src_host.attach_drop_script(self.script)
        self.sender = TcpSender(
            self.sim,
            self.src_host,
            flow_id=1,
            dst=1,
            awnd_segments=awnd_segments,
            controller=controller,
            **sender_kwargs,
        )
        self.sink = TcpSink(self.sim, self.dst_host, flow_id=1, peer=0)
        self.trace: List[TraceSample] = []
        # Registered after the sender: handlers run in registration order,
        # so every sample sees the post-ACK controller state.
        self.src_host.register_flow(1, self._record)

    def _record(self, packet) -> None:
        if not isinstance(packet.payload, TcpAck):
            return
        self.trace.append(
            TraceSample(
                now_ns=self.sim.now,
                ack=packet.payload.ack,
                cwnd=self.sender.cwnd,
                ssthresh=self.sender.ssthresh,
                in_recovery=self.sender.in_fast_recovery,
            )
        )

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run_seconds(self, duration_s: float) -> None:
        self.sim.run(until=self.sim.now + int(duration_s * 1_000_000_000))

    def cwnd_trace(self) -> List[Tuple[int, float]]:
        """``(ack, cwnd)`` pairs for every ACK the sender processed."""
        return [(sample.ack, sample.cwnd) for sample in self.trace]
