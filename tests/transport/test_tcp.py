"""TCP Reno over the simulated wireless network."""

import pytest

from repro.sim.units import seconds
from repro.traffic.ftp import FtpApplication
from repro.transport.tcp import TcpSender, TcpSink
from tests.conftest import build_chain_network


def make_tcp(net, src, dst, flow_id=1, window=64):
    net.install_transport()
    sender = TcpSender(net.sim, net.node(src).transport, flow_id, dst, awnd_segments=window)
    sink = TcpSink(net.sim, net.node(dst).transport, flow_id, peer=src)
    return sender, sink


class TestBulkTransfer:
    def test_ftp_moves_data_over_one_hop(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        sender, sink = make_tcp(net, 0, 1)
        FtpApplication(sender).start()
        net.run_seconds(0.3)
        assert sink.stats.unique_bytes > 100_000
        # The MAC never re-orders on a single perfect hop; the only late
        # arrivals are TCP's own loss retransmissions (queue overflow).
        assert sink.stats.reordered_segments <= sender.stats.retransmissions

    def test_ftp_moves_data_over_three_hops(self):
        net, _ = build_chain_network("dcf", n_nodes=4, ber=0.0, shadowing_deviation=0.0)
        sender, sink = make_tcp(net, 0, 3)
        FtpApplication(sender).start()
        net.run_seconds(0.3)
        assert sink.stats.unique_bytes > 50_000

    def test_goodput_accounts_only_unique_bytes(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        sender, sink = make_tcp(net, 0, 1)
        FtpApplication(sender).start()
        net.run_seconds(0.2)
        assert sink.stats.unique_bytes == sink.stats.segments_received * 1000 - sink.stats.duplicate_segments * 1000
        assert sink.goodput_bps(seconds(0.2)) == pytest.approx(sink.stats.unique_bytes * 8 / 0.2)

    def test_cwnd_grows_from_slow_start(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        sender, sink = make_tcp(net, 0, 1)
        assert sender.cwnd == 2.0
        FtpApplication(sender).start()
        net.run_seconds(0.2)
        assert sender.cwnd > 4.0

    def test_window_never_exceeds_awnd(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        sender, sink = make_tcp(net, 0, 1, window=8)
        FtpApplication(sender).start()
        net.run_seconds(0.2)
        assert sender.window <= 8
        assert sender.flight_size <= 8 + 1


class TestFiniteTransfers:
    def test_send_bytes_completes(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        sender, sink = make_tcp(net, 0, 1)
        done = []
        sender.on_transfer_complete(lambda: done.append(net.sim.now))
        sender.send_bytes(50_000)
        net.run_seconds(0.3)
        assert done, "transfer never completed"
        assert sink.stats.unique_bytes >= 50_000
        assert sender.transfer_complete

    def test_multiple_transfers_back_to_back(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        sender, sink = make_tcp(net, 0, 1)
        sender.send_bytes(10_000)
        net.run_seconds(0.1)
        first = sink.stats.unique_bytes
        sender.send_bytes(10_000)
        net.run_seconds(0.1)
        assert sink.stats.unique_bytes >= first + 10_000

    def test_zero_byte_send_is_noop(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        sender, sink = make_tcp(net, 0, 1)
        sender.send_bytes(0)
        net.run_seconds(0.05)
        assert sender.stats.segments_sent == 0


class TestLossRecovery:
    def test_recovers_on_lossy_link(self):
        # ~25-30 % frame loss per attempt; MAC retries absorb most of it but
        # TCP still sees occasional losses and must keep making progress.
        net, _ = build_chain_network("dcf", n_nodes=2, hop_m=235.0, seed=6)
        sender, sink = make_tcp(net, 0, 1)
        FtpApplication(sender).start()
        net.run_seconds(1.0)
        assert sink.stats.unique_bytes > 100_000
        assert sink.next_expected > 0

    def test_dupacks_trigger_fast_retransmit_under_reordering(self):
        # preExOR re-orders packets, which must show up as duplicate ACKs and
        # fast retransmits at the sender (the paper's central observation).
        net, _ = build_chain_network("preexor", n_nodes=4, hop_m=150.0, seed=2)
        sender, sink = make_tcp(net, 0, 3)
        FtpApplication(sender).start()
        net.run_seconds(1.0)
        assert sender.stats.duplicate_acks > 0
        assert sink.stats.reordered_segments > 0

    def test_rto_recovers_from_total_blackout(self):
        # The link is essentially unusable; after RTO backoff the sender keeps
        # trying rather than deadlocking.
        net, _ = build_chain_network("dcf", n_nodes=2, hop_m=600.0, seed=2)
        sender, sink = make_tcp(net, 0, 1)
        FtpApplication(sender).start()
        net.run_seconds(2.0)
        assert sender.stats.timeouts > 0
        assert sender.stats.segments_sent > sender.stats.timeouts

    def test_rtt_estimate_is_learned(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        sender, sink = make_tcp(net, 0, 1)
        FtpApplication(sender).start()
        net.run_seconds(0.1)
        assert sender.srtt_ns is not None
        assert sender.srtt_ns < seconds(0.05)
        assert sender.rto_ns >= sender.min_rto_ns


class TestSinkAccounting:
    def test_reordering_counted_only_for_late_packets(self):
        net, _ = build_chain_network("ripple", n_nodes=4, hop_m=150.0, seed=3)
        sender, sink = make_tcp(net, 0, 3)
        FtpApplication(sender).start()
        net.run_seconds(0.5)
        # RIPPLE's Rq guarantees the MAC never re-orders; any late arrivals at
        # the sink are TCP's own retransmissions of genuinely lost segments.
        assert sink.stats.reordered_segments <= sender.stats.retransmissions

    def test_acks_sent_for_every_segment(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        sender, sink = make_tcp(net, 0, 1)
        FtpApplication(sender).start()
        net.run_seconds(0.1)
        assert sink.stats.acks_sent == sink.stats.segments_received
