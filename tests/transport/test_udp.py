"""UDP endpoints and the transport host dispatcher."""

import pytest

from repro.packet import Packet
from repro.transport.udp import UdpReceiver, UdpSender
from tests.conftest import build_chain_network


def make_udp(net, src, dst, flow_id=9):
    net.install_transport()
    sender = UdpSender(net.sim, net.node(src).transport, flow_id, dst)
    receiver = UdpReceiver(net.sim, net.node(dst).transport, flow_id)
    return sender, receiver


class TestUdp:
    def test_datagrams_arrive(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        sender, receiver = make_udp(net, 0, 1)
        for _ in range(10):
            sender.send(500)
        net.run_seconds(0.1)
        assert receiver.stats.received == 10
        assert receiver.stats.received_bytes == 5000

    def test_delay_recorded_per_packet(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        sender, receiver = make_udp(net, 0, 1)
        sender.send(500)
        net.run_seconds(0.05)
        assert len(receiver.stats.delays_ns) == 1
        assert receiver.stats.delays_ns[0] > 0

    def test_no_retransmission_on_loss(self):
        net, _ = build_chain_network("dcf", n_nodes=2, hop_m=320.0, seed=5)
        sender, receiver = make_udp(net, 0, 1)
        for _ in range(30):
            sender.send(1000)
        net.run_seconds(0.5)
        assert receiver.stats.received < 30  # losses are final for UDP

    def test_throughput_helper(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        sender, receiver = make_udp(net, 0, 1)
        for _ in range(10):
            sender.send(1000)
        net.run_seconds(0.1)
        from repro.sim.units import seconds

        assert receiver.throughput_bps(seconds(0.1)) == pytest.approx(10 * 8000 / 0.1)

    def test_receive_callback(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        net.install_transport()
        got = []
        sender = UdpSender(net.sim, net.node(0).transport, 3, 1)
        UdpReceiver(net.sim, net.node(1).transport, 3, on_receive=got.append)
        sender.send(200)
        net.run_seconds(0.05)
        assert len(got) == 1


class TestTransportHost:
    def test_dispatch_by_flow_id(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        net.install_transport()
        sender_a = UdpSender(net.sim, net.node(0).transport, 1, 1)
        sender_b = UdpSender(net.sim, net.node(0).transport, 2, 1)
        receiver_a = UdpReceiver(net.sim, net.node(1).transport, 1)
        receiver_b = UdpReceiver(net.sim, net.node(1).transport, 2)
        sender_a.send(100)
        sender_b.send(100)
        sender_b.send(100)
        net.run_seconds(0.05)
        assert receiver_a.stats.received == 1
        assert receiver_b.stats.received == 2

    def test_unknown_flow_counted_as_undelivered(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        net.install_transport()
        sender = UdpSender(net.sim, net.node(0).transport, 42, 1)
        sender.send(100)
        net.run_seconds(0.05)
        assert net.node(1).transport.undelivered == 1
