"""registry-hygiene: live-registry checks catch real rot, pass on the tree."""

import sys
import types
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.analysis.base import ProjectContext
from repro.analysis.driver import iter_modules, repo_root
from repro.analysis.rules.registries import RegistryHygiene
from repro.registry import Registry


def _ctx():
    root = repo_root()
    return ProjectContext(root=root, modules=tuple(iter_modules(root)))


def _run(monkeypatch, registries=None, digest_classes=None):
    rule = RegistryHygiene()
    if registries is not None:
        monkeypatch.setattr(
            "repro.analysis.rules.registries.COMPONENT_REGISTRIES", registries
        )
    else:
        monkeypatch.setattr("repro.analysis.rules.registries.COMPONENT_REGISTRIES", ())
    monkeypatch.setattr(
        "repro.analysis.rules.registries.DIGEST_CLASSES",
        digest_classes if digest_classes is not None else (),
    )
    return list(rule.check_project(_ctx()))


@pytest.fixture
def fake_module(monkeypatch):
    """A throwaway module holding a registry the rule can be pointed at."""
    module = types.ModuleType("repro_analysis_fake")
    module.REGISTRY = Registry("fake component")
    monkeypatch.setitem(sys.modules, "repro_analysis_fake", module)
    return module


def test_real_tree_has_no_hygiene_findings():
    findings = list(RegistryHygiene().check_project(_ctx()))
    assert findings == [], [f.render() for f in findings]


def test_undocumented_factory_is_flagged(monkeypatch, fake_module):
    def documented():
        """A perfectly documented component."""

    def undocumented():
        pass

    fake_module.REGISTRY.add("good", documented)
    fake_module.REGISTRY.add("bare", undocumented)
    findings = _run(
        monkeypatch, registries=(("repro_analysis_fake", "REGISTRY"),)
    )
    assert len(findings) == 1
    assert "'bare'" in findings[0].message
    assert "docstring" in findings[0].message


def test_missing_registry_attribute_is_flagged(monkeypatch):
    findings = _run(monkeypatch, registries=(("repro.registry", "NO_SUCH"),))
    assert len(findings) == 1
    assert "does not import" in findings[0].message


@dataclass
class _LaxSpec:
    alpha: int = 1

    def to_dict(self):
        return {"alpha": self.alpha}

    @classmethod
    def from_dict(cls, data):
        return cls(alpha=data.get("alpha", 1))  # swallows unknown keys


@dataclass
class _NoFromDict:
    alpha: int = 1

    def to_dict(self):
        return {"alpha": self.alpha}


def test_lax_from_dict_is_flagged(monkeypatch):
    module = types.ModuleType("repro_analysis_fake_spec")
    module.LaxSpec = _LaxSpec
    monkeypatch.setitem(sys.modules, "repro_analysis_fake_spec", module)
    findings = _run(
        monkeypatch, digest_classes=("repro_analysis_fake_spec.LaxSpec",)
    )
    assert len(findings) == 1
    assert "accepted an unknown key" in findings[0].message


def test_missing_from_dict_is_flagged(monkeypatch):
    module = types.ModuleType("repro_analysis_fake_spec")
    module.NoFromDict = _NoFromDict
    monkeypatch.setitem(sys.modules, "repro_analysis_fake_spec", module)
    findings = _run(
        monkeypatch, digest_classes=("repro_analysis_fake_spec.NoFromDict",)
    )
    assert len(findings) == 1
    assert "lacks from_dict()" in findings[0].message


def test_real_spec_classes_reject_unknown_keys():
    """The strictness probe passes on every registered spec class."""
    from repro.analysis.rules.digest import DIGEST_CLASSES, load_class
    from repro.serialization import SpecError

    for dotted_path in DIGEST_CLASSES:
        cls = load_class(dotted_path)
        with pytest.raises(SpecError):
            cls.from_dict({"__repro_analysis_probe__": None})
