"""Fixture-driven good/bad snippet pairs for every source rule.

Each file under ``tests/analysis/fixtures/<rule-id>/`` starts with a
``# fixture-module: repro/...`` header naming the src-relative module
path the snippet pretends to live at (rule scopes and allowlists match
against that path).  ``bad_*`` fixtures must produce at least one
finding from the directory's rule; ``good_*`` fixtures must produce
none.
"""

from pathlib import Path

import pytest

from repro.analysis import analyze_source

FIXTURES = Path(__file__).parent / "fixtures"

_HEADER = "# fixture-module:"


def _fixture_cases():
    cases = []
    for rule_dir in sorted(FIXTURES.iterdir()):
        if not rule_dir.is_dir():
            continue
        for path in sorted(rule_dir.glob("*.py")):
            cases.append(pytest.param(rule_dir.name, path, id=f"{rule_dir.name}/{path.stem}"))
    return cases


def _load(path):
    source = path.read_text(encoding="utf-8")
    first, _, _ = source.partition("\n")
    assert first.startswith(_HEADER), f"{path} is missing a fixture-module header"
    return source, first[len(_HEADER) :].strip()


def test_every_rule_has_fixture_coverage():
    """Each fixture directory carries at least one bad and one good case."""
    dirs = [d for d in FIXTURES.iterdir() if d.is_dir()]
    assert dirs, "no fixture directories found"
    for rule_dir in dirs:
        names = [p.name for p in rule_dir.glob("*.py")]
        assert any(n.startswith("bad_") for n in names), rule_dir.name
        assert any(n.startswith("good_") for n in names), rule_dir.name


@pytest.mark.parametrize("rule_id, path", _fixture_cases())
def test_fixture(rule_id, path):
    source, module = _load(path)
    findings = analyze_source(source, module=module, rule_ids=[rule_id])
    if path.name.startswith("bad_"):
        assert findings, f"{path.name} expected >=1 finding, got none"
        assert all(f.rule == rule_id for f in findings)
        assert all(f.line >= 1 for f in findings)
    else:
        assert findings == [], [f.render() for f in findings]
