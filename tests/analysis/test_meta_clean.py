"""Meta-test: the committed tree itself passes the full analysis gate.

This is the test CI's ``analysis`` job mirrors — any rule violation
introduced anywhere under ``src/repro`` (or a stale ``docs/ANALYSIS.md``)
fails the suite locally before it fails the gate.
"""

from repro.analysis import analyze
from repro.analysis.docs import DEFAULT_OUTPUT, check_freshness
from repro.analysis.driver import iter_modules, known_rule_ids, repo_root


def test_full_pass_is_clean():
    findings = analyze()
    assert findings == [], "\n".join(f.render() for f in findings)


def test_all_six_rules_are_registered():
    assert known_rule_ids() == [
        "digest-coverage",
        "no-unkeyed-rng",
        "no-unordered-set-iteration",
        "no-wall-clock",
        "registry-hygiene",
        "slots-on-hot-path",
    ]


def test_pass_covers_the_whole_package():
    modules = {module for _, module in iter_modules()}
    assert "repro/sim/engine.py" in modules
    assert "repro/analysis/driver.py" in modules
    assert len(modules) > 40


def test_analysis_docs_are_fresh():
    assert check_freshness(str(repo_root() / DEFAULT_OUTPUT)) is None


def test_roofnet_suppression_is_justified():
    """The one committed pragma carries its reason (greppable audit trail)."""
    from repro.analysis.pragmas import PragmaIndex

    path = repo_root() / "src" / "repro" / "topology" / "roofnet.py"
    index = PragmaIndex(
        "src/repro/topology/roofnet.py",
        path.read_text(encoding="utf-8"),
        known_rules=set(known_rule_ids()),
    )
    assert index.errors() == []
    by_rule = index.by_rule()
    assert set(by_rule) == {"no-unkeyed-rng"}
    (pragma,) = by_rule["no-unkeyed-rng"]
    assert pragma.reason
