"""digest-coverage: the rule provably fails on an uncovered field.

The acceptance bar for this rule is demonstrated on scratch dataclasses:
a field missing from ``to_dict`` *must* surface, because in production
that is a silent sweep-cache collision (two configs, one digest).
"""

from dataclasses import dataclass, field

import pytest

from repro.analysis.rules.digest import (
    DIGEST_CLASSES,
    load_class,
    uncovered_fields,
)


@dataclass
class Covered:
    alpha: int = 1
    beta: str = "x"

    def to_dict(self):
        return {"alpha": self.alpha, "beta": self.beta}


@dataclass
class MissingField:
    alpha: int = 1
    forgotten: float = 0.0

    def to_dict(self):
        return {"alpha": self.alpha}


@dataclass
class SubscriptStores:
    alpha: int = 1
    maybe: str = ""

    def to_dict(self):
        data = {"alpha": self.alpha}
        if self.maybe:
            data["maybe"] = self.maybe
        return data


@dataclass
class BlanketAsdict:
    alpha: int = 1
    beta: str = "x"

    def to_dict(self):
        import dataclasses

        return dataclasses.asdict(self)


@dataclass
class PrivateField:
    alpha: int = 1
    _scratch: dict = field(default_factory=dict)

    def to_dict(self):
        return {"alpha": self.alpha}


class NotADataclass:
    def to_dict(self):
        return {}


@dataclass
class NoToDict:
    alpha: int = 1


def test_fully_covered_class_is_clean():
    assert uncovered_fields(Covered) == []


def test_missing_field_is_detected():
    assert uncovered_fields(MissingField) == ["forgotten"]


def test_conditional_subscript_store_counts_as_covered():
    assert uncovered_fields(SubscriptStores) == []


def test_blanket_asdict_covers_everything():
    assert uncovered_fields(BlanketAsdict) == []


def test_private_fields_are_exempt():
    assert uncovered_fields(PrivateField) == []


def test_non_dataclass_raises():
    with pytest.raises(TypeError):
        uncovered_fields(NotADataclass)


def test_missing_to_dict_raises():
    with pytest.raises(AttributeError):
        uncovered_fields(NoToDict)


@pytest.mark.parametrize("dotted_path", DIGEST_CLASSES)
def test_registered_digest_class_is_fully_covered(dotted_path):
    """Every class the sweep cache hashes serializes all of its fields."""
    cls = load_class(dotted_path)
    assert uncovered_fields(cls) == [], (
        f"{dotted_path} has fields missing from to_dict(); fix the "
        "serialization and bump CACHE_SCHEMA_VERSION"
    )
