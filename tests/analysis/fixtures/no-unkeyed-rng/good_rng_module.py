# fixture-module: repro/sim/rng.py
"""Good: ``sim/rng.py`` is the allowlisted home of generator construction."""

import numpy as np


def build(seed, spawn_key):
    sequence = np.random.SeedSequence(entropy=seed, spawn_key=spawn_key)
    return np.random.default_rng(sequence)
