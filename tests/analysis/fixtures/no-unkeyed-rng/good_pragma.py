# fixture-module: repro/topology/fixture.py
"""Good: a justified seed-scoped exception is suppressed inline."""

import numpy as np


def layout(seed):
    rng = np.random.default_rng(seed)  # repro: allow[no-unkeyed-rng] seed-scoped layout generation
    return rng.normal(size=4)
