# fixture-module: repro/mobility/fixture.py
"""Bad: importing the constructor does not make the generator keyed."""

from numpy.random import default_rng


def make(seed):
    return default_rng(seed)
