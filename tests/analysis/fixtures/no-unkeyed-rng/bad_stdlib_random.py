# fixture-module: repro/mac/fixture.py
"""Bad: stdlib ``random`` is process-global state (two findings)."""

import random


def backoff():
    return random.randint(0, 31)
