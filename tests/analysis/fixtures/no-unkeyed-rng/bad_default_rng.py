# fixture-module: repro/traffic/fixture.py
"""Bad: privately constructed generator bypasses the stream registry."""

import numpy as np


def jitter(seed):
    rng = np.random.default_rng(seed)
    return rng.normal()
