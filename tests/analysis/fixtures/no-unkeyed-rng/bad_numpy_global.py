# fixture-module: repro/phy/fixture.py
"""Bad: the legacy module-level numpy API draws from a global generator."""

import numpy as np


def fade_db():
    return np.random.normal(0.0, 4.0)
