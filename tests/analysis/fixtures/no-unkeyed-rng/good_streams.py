# fixture-module: repro/traffic/fixture.py
"""Good: draws flow through the keyed stream registry."""


def jitter(streams, flow_id):
    return streams.stream_for("traffic.jitter", flow_id).normal()
