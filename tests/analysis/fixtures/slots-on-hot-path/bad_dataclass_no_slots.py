# fixture-module: repro/sim/engine.py
"""Bad: a dataclass without ``slots=True`` still carries ``__dict__``."""

from dataclasses import dataclass


@dataclass
class Event:
    time_ns: int
    callback: object
