# fixture-module: repro/phy/radio.py
"""Good: explicit ``__slots__`` declaration."""


class Reception:
    __slots__ = ("packet", "power_dbm")

    def __init__(self, packet, power_dbm):
        self.packet = packet
        self.power_dbm = power_dbm
