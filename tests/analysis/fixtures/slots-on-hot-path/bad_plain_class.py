# fixture-module: repro/packet.py
"""Bad: a plain class on the hot path pays the per-instance dict."""


class Frame:
    def __init__(self, src, dst):
        self.src = src
        self.dst = dst
