# fixture-module: repro/phy/channel.py
"""Good: ``@dataclass(slots=True)`` generates ``__slots__``."""

from dataclasses import dataclass


@dataclass(slots=True)
class LinkState:
    loss_db: float
    fade_db: float
