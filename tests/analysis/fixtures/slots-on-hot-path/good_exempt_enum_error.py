# fixture-module: repro/sim/engine.py
"""Good: enums and exception types are exempt from the slots requirement."""

import enum


class Phase(enum.Enum):
    IDLE = 0
    BUSY = 1


class ScheduleError(Exception):
    pass
