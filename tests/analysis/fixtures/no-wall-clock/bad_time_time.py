# fixture-module: repro/sim/fixture.py
"""Bad: host-clock read inside simulation code."""

import time


def stamp(event):
    event.created_at = time.time()
