# fixture-module: repro/mac/fixture.py
"""Bad: importing the clock reader makes wall-clock reads ambient."""

from time import perf_counter


def now_s():
    return perf_counter()
