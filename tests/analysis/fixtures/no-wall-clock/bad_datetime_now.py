# fixture-module: repro/experiments/fixture.py
"""Bad: wall-clock timestamps leak into results outside the bench module."""

from datetime import datetime, timezone


def generated_at():
    return datetime.now(timezone.utc).isoformat()
