# fixture-module: repro/mac/fixture.py
"""Good: simulated time comes from the engine's clock."""


def stamp(sim, packet):
    packet.created_ns = sim.now
