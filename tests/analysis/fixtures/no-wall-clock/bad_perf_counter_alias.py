# fixture-module: repro/routing/fixture.py
"""Bad: aliasing the clock function is still a host-clock dependency."""

import time

clock = time.perf_counter


def elapsed(start):
    return clock() - start
