# fixture-module: repro/experiments/bench.py
"""Good: the benchmark module's whole business is wall-clock timing."""

import time


def measure(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
