# fixture-module: repro/routing/fixture.py
"""Bad: a set-valued instance attribute is iterated."""


class Table:
    def __init__(self):
        self.neighbors = set()

    def advertise(self):
        for node in self.neighbors:
            node.receive(self)
