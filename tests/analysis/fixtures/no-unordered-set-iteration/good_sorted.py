# fixture-module: repro/sim/fixture.py
"""Good: sorting before iteration restores deterministic order."""


def drain(handlers, names):
    for name in sorted(set(names)):
        handlers[name]()
