# fixture-module: repro/sim/fixture.py
"""Bad: comprehension over a set union."""


def merge(a, b):
    return [x.key for x in a | b]


a = frozenset()
b = frozenset()
