# fixture-module: repro/mac/fixture.py
"""Good: membership tests on sets are order-free and fine."""


def filter_known(items, known):
    seen = set(known)
    return [item for item in items if item in seen]
