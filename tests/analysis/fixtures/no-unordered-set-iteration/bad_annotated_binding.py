# fixture-module: repro/mac/fixture.py
"""Bad: a locally annotated set variable is iterated later."""


def flush(queue):
    pending: set = set()
    for item in queue:
        pending.add(item)
    for item in pending:
        item.send()
