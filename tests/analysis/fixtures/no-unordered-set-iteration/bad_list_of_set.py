# fixture-module: repro/phy/fixture.py
"""Bad: ``list(set(...))`` materializes an unordered sequence."""


def dedupe(ids):
    return list(set(ids))
