# fixture-module: repro/phy/fixture.py
"""Bad: iterating ``set(...)`` directly."""


def notify(radios):
    for radio in set(radios):
        radio.wake()
