# fixture-module: repro/experiments/fixture.py
"""Good (by scope): the rule only covers sim/, phy/, mac/ and routing/."""


def summarize(tags):
    return [t for t in set(tags)]
