# fixture-module: repro/sim/fixture.py
"""Bad: iterating a set display has hash-seed-dependent order."""


def drain(handlers):
    for name in {"a", "b", "c"}:
        handlers[name]()
