"""CLI contract: exit codes, JSON schema, --list, docs freshness flags."""

import json

import pytest

from repro.analysis.__main__ import JSON_SCHEMA_VERSION, main
from repro.analysis.driver import known_rule_ids


def _scratch_tree(tmp_path, source):
    """A minimal repo root with one violating module under src/repro."""
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text('"""Scratch package."""\n', encoding="utf-8")
    (pkg / "offender.py").write_text(source, encoding="utf-8")
    return tmp_path


def test_clean_tree_exits_zero(tmp_path, capsys):
    root = _scratch_tree(tmp_path, '"""Clean module."""\nX = 1\n')
    assert main(["--root", str(root), "--rule", "no-wall-clock"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_violation_exits_one_with_location(tmp_path, capsys):
    root = _scratch_tree(
        tmp_path, '"""Offender."""\nimport time\nT = time.time()\n'
    )
    assert main(["--root", str(root), "--rule", "no-wall-clock"]) == 1
    out = capsys.readouterr().out
    assert "src/repro/offender.py:3" in out
    assert "[no-wall-clock]" in out


def test_json_output_schema(tmp_path, capsys):
    root = _scratch_tree(
        tmp_path, '"""Offender."""\nimport time\nT = time.time()\n'
    )
    assert main(["--root", str(root), "--rule", "no-wall-clock", "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["schema"] == JSON_SCHEMA_VERSION
    assert document["root"] == str(root)
    assert document["count"] == len(document["findings"]) == 1
    finding = document["findings"][0]
    assert set(finding) == {"rule", "path", "line", "column", "message"}
    assert finding["rule"] == "no-wall-clock"
    assert finding["path"] == "src/repro/offender.py"
    assert finding["line"] == 3


def test_module_filter_restricts_scope(tmp_path, capsys):
    root = _scratch_tree(
        tmp_path, '"""Offender."""\nimport time\nT = time.time()\n'
    )
    assert main(["--root", str(root), "--rule", "no-wall-clock", "elsewhere"]) == 0


def test_list_prints_every_rule(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for rule_id in known_rule_ids():
        assert f"{rule_id}:" in out


def test_unknown_rule_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--rule", "no-such-rule"])
    assert excinfo.value.code == 2
    assert "no-such-rule" in capsys.readouterr().err


def test_check_docs_on_committed_tree(capsys):
    assert main(["--check-docs"]) == 0


def test_check_docs_detects_staleness(tmp_path, capsys):
    stale = tmp_path / "ANALYSIS.md"
    stale.write_text("# wrong\n", encoding="utf-8")
    assert main(["--check-docs", "--docs-output", str(stale)]) == 1
    assert "stale" in capsys.readouterr().out


def test_write_docs_roundtrips(tmp_path, capsys):
    out_path = tmp_path / "ANALYSIS.md"
    assert main(["--write-docs", "--docs-output", str(out_path)]) == 0
    assert main(["--check-docs", "--docs-output", str(out_path)]) == 0
