"""Suppression-pragma semantics: targeting, validation, unsuppressibility."""

import textwrap

from repro.analysis import PRAGMA_RULE_ID, PragmaIndex, analyze_source

KNOWN = {"no-unkeyed-rng", "no-wall-clock"}


def _index(source, known=KNOWN):
    return PragmaIndex("src/repro/fixture.py", textwrap.dedent(source), known_rules=known)


def test_same_line_pragma_suppresses():
    idx = _index(
        """\
        import time

        start = time.time()  # repro: allow[no-wall-clock] profiling hook
        """
    )
    assert idx.suppresses("no-wall-clock", 3)
    assert not idx.suppresses("no-wall-clock", 1)
    assert idx.errors() == []


def test_comment_line_above_targets_next_line():
    idx = _index(
        """\
        import time

        # repro: allow[no-wall-clock] profiling hook
        start = time.time()
        """
    )
    assert idx.suppresses("no-wall-clock", 4)
    assert not idx.suppresses("no-wall-clock", 3)


def test_pragma_only_suppresses_named_rule():
    idx = _index(
        """\
        x = 1  # repro: allow[no-wall-clock] reason here
        """
    )
    assert not idx.suppresses("no-unkeyed-rng", 1)


def test_docstring_mentions_are_not_pragmas():
    idx = _index(
        '''\
        """Docs showing the syntax: # repro: allow[no-wall-clock] reason."""
        text = "# repro: allow[no-unkeyed-rng] inside a string"
        '''
    )
    assert not idx.suppresses("no-wall-clock", 1)
    assert not idx.suppresses("no-unkeyed-rng", 2)
    assert idx.errors() == []


def test_missing_reason_is_an_error():
    idx = _index("x = 1  # repro: allow[no-wall-clock]\n")
    errors = idx.errors()
    assert len(errors) == 1
    assert errors[0].rule == PRAGMA_RULE_ID
    assert "reason" in errors[0].message
    assert not idx.suppresses("no-wall-clock", 1)


def test_unknown_rule_id_is_an_error():
    idx = _index("x = 1  # repro: allow[no-such-rule] because\n")
    errors = idx.errors()
    assert len(errors) == 1
    assert "no-such-rule" in errors[0].message


def test_malformed_repro_comment_is_an_error():
    idx = _index("x = 1  # repro: allwo[no-wall-clock] typo\n")
    errors = idx.errors()
    assert len(errors) == 1
    assert errors[0].rule == PRAGMA_RULE_ID


def test_pragma_rule_cannot_be_suppressed():
    # "pragma" is not a registered rule id, so trying to allow it is
    # itself a pragma error — the meta-rule cannot be silenced.
    findings = analyze_source("x = 1  # repro: allow[pragma] trying to hide\n")
    assert len(findings) == 1
    assert findings[0].rule == PRAGMA_RULE_ID


def test_full_pass_reports_pragma_errors():
    findings = analyze_source("x = 1  # repro: allow[nope]\n")
    assert findings
    assert {f.rule for f in findings} == {PRAGMA_RULE_ID}


def test_rule_filtered_pass_skips_pragma_validation():
    findings = analyze_source(
        "x = 1  # repro: allow[nope]\n", rule_ids=["no-wall-clock"]
    )
    assert findings == []
