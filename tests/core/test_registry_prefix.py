"""Registry prefix entries (the mechanism behind ``topology=trace:<path>``)."""

from __future__ import annotations

import pytest

from repro.registry import Registry, RegistryError


def make_registry():
    registry = Registry("gadget")

    @registry.register("plain")
    def _plain():
        """A plain entry."""

    @registry.register_prefix("file")
    def _file(argument):
        """A prefixed entry."""
        return argument

    return registry


class TestPrefixEntries:
    def test_contains_and_lookup_by_prefix(self):
        registry = make_registry()
        assert "file:/some/path.csv" in registry
        assert registry.lookup("file:a.txt")("x") == "x"
        assert registry.get("file:a.txt") is not None

    def test_split_prefixed_recovers_the_argument(self):
        registry = make_registry()
        assert registry.split_prefixed("file:a:b.csv") == ("file", "a:b.csv")
        assert registry.split_prefixed("plain") is None
        assert registry.split_prefixed("nope:a") is None
        assert registry.split_prefixed(42) is None

    def test_unprefixed_colon_names_still_unknown(self):
        registry = make_registry()
        assert "nope:a" not in registry
        with pytest.raises(RegistryError, match="unknown gadget"):
            registry.lookup("nope:a")

    def test_known_names_advertise_the_prefix_form(self):
        assert "file:<arg>" in make_registry().known_names()

    def test_prefix_collisions_raise(self):
        registry = make_registry()
        with pytest.raises(RegistryError, match="duplicate"):
            registry.add_prefix("file", object())
        with pytest.raises(RegistryError, match="duplicate"):
            registry.add_prefix("plain", object())
        with pytest.raises(RegistryError, match="without ':'"):
            registry.add_prefix("a:b", object())

    def test_canonical_name_is_identity_for_prefixed(self):
        assert make_registry().canonical_name("file:x.csv") == "file:x.csv"

    def test_aliases_of_lists_alias_names(self):
        registry = make_registry()
        registry.alias("simple", "plain")
        assert registry.aliases_of("plain") == ["simple"]
        assert registry.aliases_of("file") == []
