"""RIPPLE behaviour: mTXOP relaying, ordering, aggregation, end-to-end retransmission."""

import pytest

from repro.mac.frames import FrameKind, build_data_frame
from repro.mac.timing import DEFAULT_TIMING
from tests.conftest import build_chain_network, collect_deliveries, inject_packets


class TestRelaying:
    def test_forwarders_relay_data_and_acks(self):
        # With a deterministic channel the source reaches the rank-1 forwarder
        # (node 2) but not the destination, so node 2 carries the relay work;
        # the rank-2 forwarder is suppressed by overhearing node 2 / the ACK.
        net, _ = build_chain_network("ripple", n_nodes=4, ber=0.0, shadowing_deviation=0.0)
        received = collect_deliveries(net, 3)
        inject_packets(net, 0, 3, 20)
        net.run_seconds(0.3)
        assert len(received) == 20
        total_data_relays = sum(net.node(f).mac.ripple_stats.data_relays for f in (1, 2))
        total_ack_relays = sum(net.node(f).mac.ripple_stats.ack_relays for f in (1, 2))
        # Aggregation packs the 20 packets into a handful of frames; every one
        # of those frames needed at least one relay to reach the destination.
        assert total_data_relays >= net.node(0).mac.stats.data_frames_sent
        assert total_data_relays > 0
        assert total_ack_relays > 0

    def test_lower_priority_forwarder_helps_on_lossy_channel(self):
        # With shadowing, the rank-1 forwarder sometimes misses the frame and
        # the rank-2 forwarder (node 1) steps in after its longer deferral.
        net, _ = build_chain_network("ripple", n_nodes=4, hop_m=150.0, ber=1e-6, seed=11)
        received = collect_deliveries(net, 3)
        inject_packets(net, 0, 3, 40)
        net.run_seconds(1.0)
        assert len(received) >= 30
        assert net.node(1).mac.ripple_stats.data_relays > 0

    def test_forwarders_never_deliver_to_their_upper_layer(self):
        net, _ = build_chain_network("ripple", n_nodes=4, ber=0.0, shadowing_deviation=0.0)
        inject_packets(net, 0, 3, 10)
        net.run_seconds(0.3)
        assert net.node(1).network.stats.forwarded == 0
        assert net.node(2).network.stats.forwarded == 0

    def test_relay_happens_within_the_mtxop_without_new_contention(self):
        # The forwarders never start their own channel-access procedure for
        # relayed traffic: mtxop_started counts only locally originated frames.
        net, _ = build_chain_network("ripple", n_nodes=4, ber=0.0, shadowing_deviation=0.0)
        inject_packets(net, 0, 3, 10)
        net.run_seconds(0.3)
        assert net.node(1).mac.ripple_stats.mtxop_started == 0
        assert net.node(0).mac.ripple_stats.mtxop_started > 0

    def test_higher_priority_relay_suppresses_lower(self):
        # With a perfect channel every station hears every other, so the
        # rank-1 forwarder's relay (or the destination's ACK) suppresses the
        # rank-2 forwarder at least some of the time; total relays stay
        # bounded by one per forwarder per frame.
        net, _ = build_chain_network("ripple", n_nodes=4, ber=0.0, shadowing_deviation=0.0)
        inject_packets(net, 0, 3, 20)
        net.run_seconds(0.3)
        frames_sent = net.node(0).mac.stats.data_frames_sent
        for forwarder in (1, 2):
            assert net.node(forwarder).mac.ripple_stats.data_relays <= frames_sent


class TestOrderingInvariant:
    """RIPPLE's core claim: relaying never re-orders packets."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_in_order_delivery_on_lossy_channel(self, seed):
        net, _ = build_chain_network("ripple", n_nodes=4, hop_m=150.0, ber=1e-5, seed=seed)
        received = collect_deliveries(net, 3)
        inject_packets(net, 0, 3, 40)
        net.run_seconds(1.0)
        seqs = [p.seq for p in received]
        assert seqs == sorted(seqs)
        assert len(seqs) == len(set(seqs))

    @pytest.mark.parametrize("seed", [5, 6])
    def test_in_order_delivery_without_aggregation(self, seed):
        net, _ = build_chain_network("ripple1", n_nodes=4, hop_m=150.0, ber=1e-5, seed=seed)
        received = collect_deliveries(net, 3)
        inject_packets(net, 0, 3, 40)
        net.run_seconds(1.0)
        seqs = [p.seq for p in received]
        assert seqs == sorted(seqs)

    def test_most_packets_arrive_despite_losses(self):
        net, _ = build_chain_network("ripple", n_nodes=4, hop_m=150.0, ber=1e-5, seed=7)
        received = collect_deliveries(net, 3)
        inject_packets(net, 0, 3, 40)
        net.run_seconds(1.0)
        assert len(received) >= 35


class TestAggregation:
    def test_two_way_aggregation_reduces_frame_count(self):
        net, _ = build_chain_network("ripple", n_nodes=4, ber=0.0, shadowing_deviation=0.0)
        inject_packets(net, 0, 3, 48)
        net.run_seconds(0.3)
        stats = net.node(0).mac.stats
        assert stats.aggregated_frames > 0
        assert stats.data_frames_sent < 48
        assert stats.mean_aggregation > 4

    def test_ripple1_sends_one_packet_per_frame(self):
        net, _ = build_chain_network("ripple1", n_nodes=4, ber=0.0, shadowing_deviation=0.0)
        inject_packets(net, 0, 3, 20)
        net.run_seconds(0.3)
        assert net.node(0).mac.stats.mean_aggregation == pytest.approx(1.0)

    def test_aggregation_capped_at_custom_maximum(self):
        net, _ = build_chain_network(
            "ripple", n_nodes=4, ber=0.0, shadowing_deviation=0.0, max_aggregation=8
        )
        inject_packets(net, 0, 3, 48)
        net.run_seconds(0.3)
        assert net.node(0).mac.stats.mean_aggregation <= 8.0 + 1e-9


class TestEndToEndRetransmission:
    def test_source_retransmits_when_destination_unreachable(self):
        # Only two nodes, far apart: no forwarders can help, the mTXOP times
        # out and the source retransmits end to end until the retry limit.
        net, _ = build_chain_network("ripple", n_nodes=2, hop_m=450.0, seed=3)
        received = collect_deliveries(net, 1)
        inject_packets(net, 0, 1, 5)
        net.run_seconds(0.5)
        stats = net.node(0).mac
        assert stats.ripple_stats.end_to_end_retransmissions > 0

    def test_retry_limit_eventually_drops(self):
        net, _ = build_chain_network("ripple", n_nodes=2, hop_m=800.0, seed=3)
        inject_packets(net, 0, 1, 3)
        net.run_seconds(1.0)
        assert net.node(0).mac.stats.packets_dropped_retry > 0

    def test_partial_ack_keeps_only_missing_subpackets(self):
        # High BER corrupts some sub-packets per aggregate; everything must
        # still arrive exactly once (Rq + per-sub-packet ACKs).
        net, _ = build_chain_network(
            "ripple", n_nodes=3, ber=3e-5, shadowing_deviation=0.0, seed=8
        )
        received = collect_deliveries(net, 2)
        inject_packets(net, 0, 2, 48)
        net.run_seconds(1.0)
        seqs = [p.seq for p in received]
        assert len(seqs) == len(set(seqs))
        assert seqs == sorted(seqs)
        assert len(seqs) == 48


class TestBoundedState:
    """Forwarder/destination bookkeeping must not grow with run length."""

    def test_relayed_and_suppressed_sets_are_bounded(self):
        from repro.core.ripple import _RecentFrameIds

        ids = _RecentFrameIds(capacity=4)
        for frame_id in range(10):
            ids.add(frame_id)
        assert len(ids) == 4
        # Oldest ids were evicted, newest kept.
        assert 0 not in ids and 5 not in ids
        assert all(frame_id in ids for frame_id in (6, 7, 8, 9))
        ids.add(9)  # re-adding is a no-op
        assert len(ids) == 4
        ids.discard(9)
        assert 9 not in ids and len(ids) == 3

    def test_forwarder_state_stays_bounded_over_a_run(self):
        net, _ = build_chain_network("ripple", n_nodes=4, ber=0.0, shadowing_deviation=0.0)
        inject_packets(net, 0, 3, 60)
        net.run_seconds(0.5)
        for node_id in (1, 2):
            mac = net.node(node_id).mac
            assert len(mac._relayed_frames) <= mac._relayed_frames.capacity
            assert len(mac._suppressed_frames) <= mac._suppressed_frames.capacity

    def test_destination_ack_history_pruned_below_watermark(self):
        # A long transfer pushes the origin's flush watermark forward; the
        # destination must forget acked sequence numbers below it instead of
        # remembering every sequence number of the whole run.
        net, _ = build_chain_network("ripple", n_nodes=4, ber=0.0, shadowing_deviation=0.0)
        received = collect_deliveries(net, 3)
        inject_packets(net, 0, 3, 48)
        net.run_seconds(0.5)
        assert len(received) == 48
        acked_sets = net.node(3).mac._acked_seqs_per_origin
        assert acked_sets, "destination should have tracked at least one origin"
        for acked in acked_sets.values():
            # Far fewer than the 60 sequence numbers delivered: only the
            # still-outstanding tail survives the watermark pruning.
            assert len(acked) <= 2 * net.node(0).mac.max_aggregation


class TestMtxopTimeout:
    def test_timeout_covers_worst_case_relay_chain(self):
        net, _ = build_chain_network("ripple", n_nodes=4, ber=0.0, shadowing_deviation=0.0)
        mac = net.node(0).mac
        frame = build_data_frame(
            DEFAULT_TIMING, origin=0, final_dst=3, transmitter=0, receiver=None,
            subpackets=[], forwarder_list=(2, 1),
        )
        timeout = mac.mtxop_timeout_ns(frame)
        n = 2
        min_needed = (
            n * (DEFAULT_TIMING.sifs_ns + n * DEFAULT_TIMING.slot_ns + frame.airtime_ns(mac.phy))
            + DEFAULT_TIMING.sifs_ns
            + DEFAULT_TIMING.ack_airtime_ns(mac.phy, n)
        )
        assert timeout > min_needed

    def test_timeout_grows_with_forwarder_count(self):
        net, _ = build_chain_network("ripple", n_nodes=4, ber=0.0, shadowing_deviation=0.0)
        mac = net.node(0).mac
        short = build_data_frame(DEFAULT_TIMING, 0, 3, 0, None, [], forwarder_list=(1,))
        long = build_data_frame(DEFAULT_TIMING, 0, 3, 0, None, [], forwarder_list=(1, 2, 4, 5, 6))
        assert mac.mtxop_timeout_ns(long) > mac.mtxop_timeout_ns(short)
