"""The generic component registry: write-once semantics and lookups."""

import pytest

from repro.registry import Registry, RegistryError


class TestRegistry:
    def test_register_decorator_returns_object_unchanged(self):
        registry = Registry("widget")

        @registry.register("one")
        def build_one():
            return 1

        assert build_one() == 1
        assert registry.lookup("one") is build_one

    def test_duplicate_registration_raises(self):
        registry = Registry("widget")
        registry.add("one", object())
        with pytest.raises(RegistryError, match="duplicate widget registration 'one'"):
            registry.add("one", object())

    def test_duplicate_via_alias_raises(self):
        registry = Registry("widget")
        registry.add("one", object())
        registry.alias("uno", "one")
        with pytest.raises(RegistryError):
            registry.add("uno", object())
        with pytest.raises(RegistryError):
            registry.alias("uno", "one")

    def test_unknown_lookup_names_known_entries(self):
        registry = Registry("widget")
        registry.add("one", object())
        with pytest.raises(RegistryError, match="unknown widget 'two'.*one"):
            registry.lookup("two")

    def test_alias_resolves_to_target(self):
        registry = Registry("widget")
        entry = object()
        registry.add("one", entry)
        registry.alias("uno", "one")
        assert registry.lookup("uno") is entry
        assert registry.canonical_name("uno") == "one"
        assert "uno" in registry
        assert "uno" in registry.known_names()

    def test_alias_of_unknown_target_raises(self):
        registry = Registry("widget")
        with pytest.raises(RegistryError, match="cannot alias"):
            registry.alias("uno", "one")

    def test_mapping_protocol(self):
        registry = Registry("widget")
        registry.add("b", 2)
        registry.add("a", 1)
        assert sorted(registry) == ["a", "b"]
        assert len(registry) == 2
        assert registry.get("a") == 1
        assert registry.get("missing") is None
        assert registry["b"] == 2
        assert registry.names() == ("b", "a")  # registration order

    def test_empty_name_rejected(self):
        registry = Registry("widget")
        with pytest.raises(RegistryError):
            registry.add("", object())


class TestRealRegistriesAreClosed:
    """Duplicate registration on the live registries must raise, not overwrite."""

    def test_mac_scheme_duplicate(self):
        from repro.mac.registry import register_mac_scheme

        with pytest.raises(RegistryError):
            register_mac_scheme("dcf", label="again", opportunistic=False)(lambda *a, **k: None)

    def test_routing_duplicate(self):
        from repro.routing.registry import register_routing

        with pytest.raises(RegistryError):
            register_routing("static")(lambda *a, **k: None)

    def test_traffic_duplicate(self):
        from repro.traffic.registry import register_traffic

        with pytest.raises(RegistryError):
            register_traffic("voip")(lambda *a, **k: None)

    def test_topology_duplicate(self):
        from repro.topology.registry import register_topology

        with pytest.raises(RegistryError):
            register_topology("fig1")(lambda **k: None)

    def test_mobility_model_duplicate(self):
        from repro.mobility.models import register_mobility_model

        with pytest.raises(RegistryError):
            register_mobility_model("static")(lambda params, bounds: None)

    def test_every_layer_is_populated(self):
        from repro.mac.registry import MAC_SCHEMES
        from repro.mobility.models import MOBILITY_MODELS
        from repro.routing.registry import ROUTING_STRATEGIES
        from repro.topology.registry import TOPOLOGIES
        from repro.traffic.registry import TRAFFIC_KINDS

        assert {"dcf", "afr", "ripple", "ripple1", "preexor", "mcexor"} <= set(MAC_SCHEMES)
        assert {"static", "shortest_path", "adaptive_etx"} <= set(ROUTING_STRATEGIES)
        assert "etx" in ROUTING_STRATEGIES  # the alias
        assert {"tcp", "web", "voip", "udp-saturating"} <= set(TRAFFIC_KINDS)
        assert {"fig1", "fig5a", "fig5b", "line", "wigle", "roofnet"} <= set(TOPOLOGIES)
        assert {"static", "random_waypoint", "gauss_markov", "trace"} <= set(MOBILITY_MODELS)
