"""Edge-case coverage for the Roofnet / Wigle topology loaders.

The generated layouts feed the largest experiments; a silently broken
spec (missing node, rotted route, non-finite coordinate) would surface
hours into a sweep as an unrelated ``KeyError``.  These tests pin the
loaders' structural guarantees and the ``TopologySpec.validate`` gate
they all pass through.
"""

import json
import math

import pytest

from repro.topology.roofnet import (
    connectivity_from_positions,
    pick_khop_pairs,
    roofnet_scenario,
    roofnet_topology,
)
from repro.topology.spec import FlowSpec, TopologyError, TopologySpec
from repro.topology.wigle import STATION_R, STATION_S, wigle_flow_paths, wigle_topology


class TestSpecValidation:
    def test_empty_node_set_rejected(self):
        spec = TopologySpec(name="empty", positions={})
        with pytest.raises(TopologyError, match="no nodes"):
            spec.validate()

    def test_non_finite_position_rejected(self):
        spec = TopologySpec(name="bad", positions={0: (0.0, float("nan")), 1: (1.0, 1.0)})
        with pytest.raises(TopologyError, match="not finite"):
            spec.validate()
        spec = TopologySpec(name="bad", positions={0: (float("inf"), 0.0)})
        with pytest.raises(TopologyError, match="not finite"):
            spec.validate()

    def test_duplicate_flow_ids_rejected(self):
        spec = TopologySpec(
            name="dup",
            positions={0: (0.0, 0.0), 1: (10.0, 0.0)},
            flows=[
                FlowSpec(flow_id=1, src=0, dst=1),
                FlowSpec(flow_id=1, src=1, dst=0),
            ],
        )
        with pytest.raises(TopologyError, match="duplicate flow id"):
            spec.validate()

    def test_flow_referencing_unknown_node_rejected(self):
        spec = TopologySpec(
            name="dangling",
            positions={0: (0.0, 0.0), 1: (10.0, 0.0)},
            flows=[FlowSpec(flow_id=1, src=0, dst=99)],
        )
        with pytest.raises(TopologyError, match="unknown node 99"):
            spec.validate()

    def test_route_through_unknown_node_rejected(self):
        spec = TopologySpec(
            name="ghost-hop",
            positions={0: (0.0, 0.0), 1: (10.0, 0.0)},
            route_sets={"ROUTE0": {(0, 1): [0, 7, 1]}},
        )
        with pytest.raises(TopologyError, match="unknown node 7"):
            spec.validate()

    def test_route_not_joining_endpoints_rejected(self):
        spec = TopologySpec(
            name="broken-route",
            positions={0: (0.0, 0.0), 1: (10.0, 0.0), 2: (20.0, 0.0)},
            route_sets={"ROUTE0": {(0, 2): [0, 1]}},
        )
        with pytest.raises(TopologyError, match="does not join"):
            spec.validate()

    def test_valid_spec_passes_and_chains(self):
        spec = TopologySpec(
            name="ok",
            positions={0: (0.0, 0.0), 1: (10.0, 0.0)},
            flows=[FlowSpec(flow_id=1, src=0, dst=1)],
            route_sets={"ROUTE0": {(0, 1): [0, 1]}},
        )
        assert spec.validate() is spec


class TestRoofnetLoader:
    def test_layout_is_deterministic_per_seed(self):
        assert roofnet_topology(seed=7).positions == roofnet_topology(seed=7).positions
        assert roofnet_topology(seed=7).positions != roofnet_topology(seed=8).positions

    def test_all_positions_finite_and_in_band(self):
        spec = roofnet_topology()
        for x, y in spec.positions.values():
            assert math.isfinite(x) and math.isfinite(y)
            # clusters span ~1 km x 0.5 km; 3-sigma spread keeps nodes well inside
            assert -200.0 < x < 1300.0
            assert -200.0 < y < 800.0

    def test_connectivity_of_empty_node_set(self):
        graph = connectivity_from_positions({})
        assert graph.number_of_nodes() == 0
        assert graph.number_of_edges() == 0

    def test_pick_khop_pairs_raises_when_no_pair_exists(self):
        spec = roofnet_topology()
        with pytest.raises(RuntimeError, match="no 40-hop pair"):
            pick_khop_pairs(spec, hop_counts=(40,))

    def test_scenario_routes_cover_every_flow(self):
        spec = roofnet_scenario()
        routes = spec.route_sets["ROUTE0"]
        for flow in spec.flows:
            assert (flow.src, flow.dst) in routes
            path = routes[(flow.src, flow.dst)]
            assert path[0] == flow.src and path[-1] == flow.dst

    def test_scenario_with_hidden_terminals_validates(self):
        spec = roofnet_scenario(include_hidden=True)
        hidden = [flow for flow in spec.flows if flow.kind == "udp-saturating"]
        assert hidden, "hidden terminals requested but none placed"
        # validate() ran inside the loader; flows are unique and routed
        assert len({flow.flow_id for flow in spec.flows}) == len(spec.flows)

    def test_roundtrip_through_json_preserves_layout(self):
        spec = roofnet_scenario()
        rebuilt = TopologySpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt.to_dict() == spec.to_dict()
        rebuilt.validate()


class TestWigleLoader:
    def test_flow_ids_unique_and_routed(self):
        spec = wigle_topology()
        assert len({flow.flow_id for flow in spec.flows}) == len(spec.flows)
        routes = spec.route_sets["ROUTE0"]
        for flow in spec.flows:
            assert (flow.src, flow.dst) in routes

    def test_hidden_pair_present_only_when_requested(self):
        with_hidden = wigle_topology(include_hidden=True)
        without = wigle_topology(include_hidden=False)
        assert STATION_S in with_hidden.positions and STATION_R in with_hidden.positions
        assert STATION_S not in without.positions and STATION_R not in without.positions
        assert len(without.flows) == len(with_hidden.flows) - 1

    def test_hidden_source_is_far_from_left_sources(self):
        spec = wigle_topology()
        sx, sy = spec.positions[STATION_S]
        x1, y1 = spec.positions[1]
        assert math.hypot(sx - x1, sy - y1) > 650.0

    def test_flow_paths_match_labels(self):
        labels = wigle_flow_paths()
        assert labels == [flow.label for flow in wigle_topology(include_hidden=False).flows]
        assert "1-4-6-8" in labels and "8-7-5" in labels

    def test_positions_are_unique(self):
        spec = wigle_topology()
        assert len(set(spec.positions.values())) == len(spec.positions)
