"""The paper's topologies: structural properties the evaluation relies on."""

import math

import networkx as nx
import pytest

from repro.phy.params import PhyParams
from repro.phy.propagation import ShadowingPropagation
from repro.topology.roofnet import connectivity_from_positions, pick_khop_pairs, roofnet_scenario, roofnet_topology
from repro.topology.spec import TopologySpec
from repro.topology.standard import fig1_topology, fig5a_topology, fig5b_topology, line_topology
from repro.topology.wigle import STATION_S, wigle_topology


def link_quality(spec: TopologySpec, a: int, b: int) -> float:
    """Shadowing-model delivery probability between two nodes of a spec."""
    model = ShadowingPropagation()
    phy = PhyParams()
    ax, ay = spec.positions[a]
    bx, by = spec.positions[b]
    distance = math.hypot(ax - bx, ay - by)
    return model.reception_probability(phy.tx_power_dbm, distance, phy.rx_threshold_dbm)


class TestFig1:
    def test_eight_stations(self):
        assert len(fig1_topology().positions) == 8

    def test_three_flows(self):
        spec = fig1_topology()
        assert [(f.src, f.dst) for f in spec.flows] == [(0, 3), (0, 4), (5, 7)]

    def test_route_sets_match_table2(self):
        spec = fig1_topology()
        assert spec.routes("ROUTE0")[(0, 3)] == [0, 1, 2, 3]
        assert spec.routes("ROUTE1")[(0, 3)] == [0, 1, 3]
        assert spec.routes("ROUTE2")[(0, 3)] == [0, 2, 3]
        assert spec.routes("ROUTE0")[(5, 7)] == [5, 6, 1, 7]

    def test_relay_hops_are_reliable(self):
        spec = fig1_topology()
        for a, b in [(0, 1), (1, 2), (2, 3), (2, 4), (5, 6), (6, 1)]:
            assert link_quality(spec, a, b) > 0.9, (a, b)

    def test_direct_links_are_poor(self):
        spec = fig1_topology()
        # The "S" routes must be far less reliable than the relayed hops, which
        # is why one-hop routing is inefficient (Section IV-A).
        for a, b in [(0, 3), (0, 4), (5, 7)]:
            assert link_quality(spec, a, b) < 0.55, (a, b)

    def test_route2_is_weaker_than_route0(self):
        spec = fig1_topology()
        # ROUTE2's first hop (0-2) and flow-3 relay (5-1) are the weak links.
        assert link_quality(spec, 0, 2) < link_quality(spec, 0, 1)
        assert link_quality(spec, 5, 1) < link_quality(spec, 5, 6)

    def test_flow_lookup(self):
        spec = fig1_topology()
        assert spec.flow(1).dst == 3
        with pytest.raises(KeyError):
            spec.flow(99)

    def test_unknown_route_set(self):
        with pytest.raises(KeyError):
            fig1_topology().routes("ROUTE9")


class TestFig5a:
    def test_flow_count_parameter(self):
        spec = fig5a_topology(n_flows=4)
        assert len(spec.flows) == 4
        assert len(spec.positions) == 12

    def test_every_station_senses_every_other(self):
        # "Regular collisions": no hidden terminals, so every pair of stations
        # is within carrier-sense range.
        spec = fig5a_topology(n_flows=9)
        model = ShadowingPropagation()
        phy = PhyParams()
        for a in spec.node_ids:
            for b in spec.node_ids:
                if a >= b:
                    continue
                ax, ay = spec.positions[a]
                bx, by = spec.positions[b]
                distance = math.hypot(ax - bx, ay - by)
                p_sense = model.reception_probability(phy.tx_power_dbm, distance, phy.cs_threshold_dbm)
                assert p_sense > 0.5, (a, b, distance)

    def test_flow_range_validation(self):
        with pytest.raises(ValueError):
            fig5a_topology(n_flows=0)
        with pytest.raises(ValueError):
            fig5a_topology(n_flows=10)


class TestFig5b:
    def test_hidden_sources_cannot_hear_flow1_source(self):
        spec = fig5b_topology(n_hidden=9)
        model = ShadowingPropagation()
        phy = PhyParams()
        for flow in spec.flows[1:]:
            sx, sy = spec.positions[flow.src]
            distance = math.hypot(sx - spec.positions[0][0], sy - spec.positions[0][1])
            p_sense = model.reception_probability(phy.tx_power_dbm, distance, phy.cs_threshold_dbm)
            assert p_sense < 0.15, (flow.src, distance)

    def test_hidden_sources_interfere_at_flow1_destination(self):
        spec = fig5b_topology(n_hidden=9)
        model = ShadowingPropagation()
        phy = PhyParams()
        for flow in spec.flows[1:]:
            sx, sy = spec.positions[flow.src]
            dx, dy = spec.positions[3]
            distance = math.hypot(sx - dx, sy - dy)
            p_sense = model.reception_probability(phy.tx_power_dbm, distance, phy.cs_threshold_dbm)
            assert p_sense > 0.5, (flow.src, distance)

    def test_hidden_flows_are_saturating_udp(self):
        spec = fig5b_topology(n_hidden=3)
        assert all(f.kind == "udp-saturating" for f in spec.flows[1:])

    def test_zero_hidden_flows(self):
        spec = fig5b_topology(n_hidden=0)
        assert len(spec.flows) == 1


class TestLine:
    @pytest.mark.parametrize("hops", [2, 4, 7])
    def test_line_length(self, hops):
        spec = line_topology(hops)
        assert len(spec.positions) == hops + 1
        assert spec.routes("ROUTE0")[(0, hops)] == list(range(hops + 1))

    def test_cross_traffic_adds_three_hop_flow(self):
        spec = line_topology(5, cross_traffic=True)
        assert len(spec.flows) == 2
        cross = spec.flows[1]
        route = spec.routes("ROUTE0")[(cross.src, cross.dst)]
        assert len(route) == 4  # 3 hops
        assert route[2] == 5 // 2  # shares the middle relay of the line

    def test_invalid_hop_counts(self):
        with pytest.raises(ValueError):
            line_topology(1)
        with pytest.raises(ValueError):
            line_topology(8)

    def test_long_line_endpoints_cannot_hear_each_other(self):
        spec = line_topology(7)
        assert link_quality(spec, 0, 7) < 0.01


class TestWigle:
    def test_eight_aps_plus_hidden_pair(self):
        spec = wigle_topology(include_hidden=True)
        assert len(spec.positions) == 10
        assert STATION_S in spec.positions

    def test_flows_are_one_to_three_hops(self):
        spec = wigle_topology(include_hidden=False)
        for flow in spec.flows:
            route = spec.routes("ROUTE0")[(flow.src, flow.dst)]
            assert 2 <= len(route) <= 4

    def test_flow_labels_match_paths(self):
        spec = wigle_topology(include_hidden=False)
        for flow in spec.flows:
            route = spec.routes("ROUTE0")[(flow.src, flow.dst)]
            assert flow.label == "-".join(str(n) for n in route)

    def test_hidden_source_is_hidden_from_far_sources(self):
        spec = wigle_topology(include_hidden=True)
        assert link_quality(spec, STATION_S, 1) < 0.05


class TestRoofnet:
    def test_layout_size(self):
        spec = roofnet_topology()
        assert len(spec.positions) == 38

    def test_deterministic_for_seed(self):
        assert roofnet_topology(seed=3).positions == roofnet_topology(seed=3).positions
        assert roofnet_topology(seed=3).positions != roofnet_topology(seed=4).positions

    def test_connectivity_graph_is_connected(self):
        spec = roofnet_topology()
        graph = connectivity_from_positions(spec.positions)
        assert nx.is_connected(graph)

    def test_khop_pairs_have_requested_lengths(self):
        spec = roofnet_topology()
        paths = pick_khop_pairs(spec, hop_counts=(3, 4, 5))
        assert [len(p) - 1 for p in paths] == [3, 4, 5]

    def test_scenario_labels_follow_paper_convention(self):
        scenario = roofnet_scenario(hop_counts=(3, 3, 4), include_hidden=False)
        labels = [f.label for f in scenario.flows]
        assert labels == ["3(1)", "3(2)", "4(1)"]

    def test_hidden_terminals_added_per_flow(self):
        scenario = roofnet_scenario(hop_counts=(3, 4), include_hidden=True)
        hidden = [f for f in scenario.flows if f.kind == "udp-saturating"]
        assert len(hidden) == 2
        # Hidden pairs never reuse stations that are on a measured path.
        on_paths = {
            node
            for flow in scenario.flows
            if flow.kind == "tcp"
            for node in scenario.routes("ROUTE0")[(flow.src, flow.dst)]
        }
        for flow in hidden:
            assert flow.src not in on_paths
