"""Trace-file topology loading: formats, derived routes, loud failure modes."""

from __future__ import annotations

import json

import pytest

from repro.spec import ScenarioSpec, TopologyRef
from repro.topology.registry import TOPOLOGIES, build_topology
from repro.topology.spec import TopologyError
from repro.topology.tracefile import load_trace_topology

GOOD_CSV = """\
# a 3-node relay line with one flow
node,0,0.0,0.0
node,1,115.0,0.0
node,2,230.0,0.0
flow,1,0,2,tcp
"""


def write(tmp_path, name, content):
    path = tmp_path / name
    path.write_text(content, encoding="utf-8")
    return str(path)


class TestCsvLoading:
    def test_loads_nodes_flows_and_derives_route0(self, tmp_path):
        spec = load_trace_topology(write(tmp_path, "site.csv", GOOD_CSV))
        assert spec.name == "trace:site"
        assert spec.positions == {0: (0.0, 0.0), 1: (115.0, 0.0), 2: (230.0, 0.0)}
        assert [flow.kind for flow in spec.flows] == ["tcp"]
        assert spec.route_sets["ROUTE0"][(0, 2)] == [0, 1, 2]

    def test_explicit_route_records_win_over_derivation(self, tmp_path):
        content = GOOD_CSV + "route,ROUTE0,0,2,0;2\n"
        spec = load_trace_topology(write(tmp_path, "site.csv", content))
        assert spec.route_sets["ROUTE0"][(0, 2)] == [0, 2]

    def test_flow_kind_defaults_to_tcp(self, tmp_path):
        content = "node,0,0,0\nnode,1,50,0\nflow,7,0,1\n"
        spec = load_trace_topology(write(tmp_path, "site.csv", content))
        assert spec.flows[0].kind == "tcp"

    def test_good_link_m_extends_derivable_routes(self, tmp_path):
        content = "node,0,0,0\nnode,1,200,0\nflow,1,0,1\n"
        path = write(tmp_path, "far.csv", content)
        with pytest.raises(TopologyError, match="cannot derive a route"):
            load_trace_topology(path)  # 200 m > default 160 m good-link radius
        spec = load_trace_topology(path, good_link_m=250.0)
        assert spec.route_sets["ROUTE0"][(0, 1)] == [0, 1]


class TestCsvErrors:
    """Malformed files fail naming the offending row and field."""

    @pytest.mark.parametrize(
        "row, fragment",
        [
            ("node,x,1.0,2.0", r"site\.csv:2: field 'node id'"),
            ("node,3,abc,2.0", r"site\.csv:2: field 'x'"),
            ("node,0,5.0,5.0", r"site\.csv:2: duplicate node id 0"),
            ("node,3", "node record needs"),
            ("flow,2,0,99", "references unknown node 99"),
            ("flow,1,0,2", "duplicate flow id 1"),
            ("route,ROUTE0,0,2,0;99;2", "unknown node 99"),
            ("route,ROUTE0,0,2,1;2", "does not join its end points"),
            ("route,ROUTE0,0,2,", "no hops"),
            ("widget,1,2,3", "unknown record type 'widget'"),
        ],
    )
    def test_malformed_rows_name_row_and_field(self, tmp_path, row, fragment):
        content = "node,0,0.0,0.0\n" + row + "\nnode,1,115.0,0.0\nnode,2,230.0,0.0\nflow,1,0,2\n"
        with pytest.raises(TopologyError, match=fragment):
            load_trace_topology(write(tmp_path, "site.csv", content))

    def test_empty_file_rejected(self, tmp_path):
        with pytest.raises(TopologyError, match="no node records"):
            load_trace_topology(write(tmp_path, "site.csv", "# nothing here\n"))

    def test_unsupported_extension_rejected(self, tmp_path):
        with pytest.raises(TopologyError, match="unsupported trace-topology extension"):
            load_trace_topology(write(tmp_path, "site.yaml", "nodes: []"))


class TestJsonLoading:
    def test_loads_a_topology_document(self, tmp_path):
        document = {
            "positions": {"0": [0.0, 0.0], "1": [115.0, 0.0]},
            "flows": [{"flow_id": 1, "src": 0, "dst": 1, "kind": "voip", "label": ""}],
        }
        spec = load_trace_topology(write(tmp_path, "site.json", json.dumps(document)))
        assert spec.name == "trace:site"
        assert spec.flows[0].kind == "voip"
        assert spec.route_sets["ROUTE0"][(0, 1)] == [0, 1]

    def test_invalid_json_names_the_file(self, tmp_path):
        with pytest.raises(TopologyError, match=r"site\.json: not valid JSON"):
            load_trace_topology(write(tmp_path, "site.json", "{nope"))

    def test_unknown_keys_rejected(self, tmp_path):
        document = {"positions": {"0": [0.0, 0.0]}, "nodes": []}
        with pytest.raises(TopologyError, match="nodes"):
            load_trace_topology(write(tmp_path, "site.json", json.dumps(document)))

    def test_non_object_top_level_rejected(self, tmp_path):
        with pytest.raises(TopologyError, match="top level must be a JSON object"):
            load_trace_topology(write(tmp_path, "site.json", "[1, 2]"))


class TestRegistryIntegration:
    def test_prefix_resolves_through_the_registry(self, tmp_path):
        path = write(tmp_path, "site.csv", GOOD_CSV)
        assert f"trace:{path}" in TOPOLOGIES
        spec = build_topology(f"trace:{path}")
        assert spec.positions[2] == (230.0, 0.0)

    def test_builder_params_flow_through(self, tmp_path):
        content = "node,0,0,0\nnode,1,200,0\nflow,1,0,1\n"
        path = write(tmp_path, "far.csv", content)
        spec = build_topology(f"trace:{path}", good_link_m=250.0)
        assert spec.route_sets["ROUTE0"][(0, 1)] == [0, 1]

    def test_unknown_plain_name_still_rejected(self):
        with pytest.raises(Exception, match="unknown topology"):
            build_topology("tracey")

    def test_topology_ref_and_scenario_spec_round_trip(self, tmp_path):
        path = write(tmp_path, "site.csv", GOOD_CSV)
        ref = TopologyRef(f"trace:{path}", {"good_link_m": 200.0})
        spec = ScenarioSpec(topology=ref, duration_s=0.05)
        restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored.to_dict() == spec.to_dict()
        assert restored.resolve_topology().positions == ref.build().positions
