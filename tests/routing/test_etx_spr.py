"""ETX metric, connectivity graph construction and shortest-path routing."""

import math

import networkx as nx
import pytest

from repro.phy.channel import WirelessChannel
from repro.phy.error_models import BitErrorModel
from repro.phy.params import PhyParams
from repro.phy.propagation import ShadowingPropagation
from repro.phy.radio import Radio
from repro.routing.base import RouteNotFound
from repro.routing.etx import EtxParams, build_connectivity_graph, link_etx, path_etx
from repro.routing.shortest_path import ShortestPathRouting
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make_channel(positions, ber=1e-6):
    sim = Simulator()
    channel = WirelessChannel(
        sim, PhyParams(), propagation=ShadowingPropagation(), error_model=BitErrorModel(ber),
        rng=RandomStreams(1),
    )
    for node_id, pos in enumerate(positions):
        Radio(node_id, pos, channel)
    return channel


class TestLinkEtx:
    def test_perfect_link(self):
        assert link_etx(1.0) == 1.0

    def test_half_link(self):
        assert link_etx(0.5) == pytest.approx(4.0)

    def test_dead_link(self):
        assert math.isinf(link_etx(0.0))

    def test_monotone(self):
        values = [link_etx(p) for p in (0.9, 0.7, 0.5, 0.3)]
        assert values == sorted(values)

    def test_asymmetric_link(self):
        # 1 / (p_f * p_r), De Couto et al.
        assert link_etx(0.5, 0.8) == pytest.approx(1.0 / (0.5 * 0.8))
        assert link_etx(0.8, 0.5) == pytest.approx(link_etx(0.5, 0.8))

    def test_asymmetric_reduces_to_symmetric(self):
        for p in (0.3, 0.5, 0.9, 1.0):
            assert link_etx(p, p) == pytest.approx(link_etx(p))

    def test_asymmetric_dead_direction(self):
        assert math.isinf(link_etx(0.9, 0.0))
        assert math.isinf(link_etx(0.0, 0.9))


class TestConnectivityGraph:
    def test_close_nodes_are_connected(self):
        channel = make_channel([(0, 0), (100, 0), (200, 0)])
        graph = build_connectivity_graph(channel)
        assert graph.has_edge(0, 1) and graph.has_edge(1, 2)

    def test_far_nodes_are_not_connected(self):
        channel = make_channel([(0, 0), (1500, 0)])
        graph = build_connectivity_graph(channel)
        assert not graph.has_edge(0, 1)

    def test_edges_carry_metrics(self):
        channel = make_channel([(0, 0), (100, 0)])
        graph = build_connectivity_graph(channel)
        data = graph.edges[0, 1]
        assert 0 < data["delivery_probability"] <= 1
        assert data["etx"] >= 1.0
        assert data["hops"] == 1.0
        assert data["distance"] == pytest.approx(100.0)

    def test_min_probability_threshold(self):
        channel = make_channel([(0, 0), (320, 0)])
        strict = build_connectivity_graph(channel, EtxParams(min_delivery_probability=0.5))
        lax = build_connectivity_graph(channel, EtxParams(min_delivery_probability=0.01))
        assert not strict.has_edge(0, 1)
        assert lax.has_edge(0, 1)

    def test_path_etx_sums_links(self):
        channel = make_channel([(0, 0), (100, 0), (200, 0)])
        graph = build_connectivity_graph(channel)
        total = path_etx(graph, [0, 1, 2])
        assert total == pytest.approx(graph.edges[0, 1]["etx"] + graph.edges[1, 2]["etx"])

    def test_path_etx_missing_edge_is_infinite(self):
        channel = make_channel([(0, 0), (100, 0), (2000, 0)])
        graph = build_connectivity_graph(channel)
        assert math.isinf(path_etx(graph, [0, 1, 2]))


class TestShortestPathRouting:
    def positions(self):
        # A lossy direct link 0-2 exists alongside a reliable two-hop path 0-1-2.
        return [(0, 0), (130, 0), (260, 0)]

    def test_hop_metric_prefers_direct_link(self):
        graph = build_connectivity_graph(make_channel(self.positions()))
        routing = ShortestPathRouting(graph, metric="hops")
        assert routing.path(0, 2) == [0, 2]

    def test_etx_metric_prefers_reliable_relay(self):
        graph = build_connectivity_graph(make_channel(self.positions()))
        routing = ShortestPathRouting(graph, metric="etx")
        assert routing.path(0, 2) == [0, 1, 2]

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            ShortestPathRouting(nx.Graph(), metric="latency")

    def test_missing_node_raises(self):
        graph = build_connectivity_graph(make_channel(self.positions()))
        routing = ShortestPathRouting(graph)
        with pytest.raises(RouteNotFound):
            routing.path(0, 99)

    def test_disconnected_raises(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        routing = ShortestPathRouting(graph)
        with pytest.raises(RouteNotFound):
            routing.path(0, 1)

    def test_cache_invalidation(self):
        graph = build_connectivity_graph(make_channel(self.positions()))
        routing = ShortestPathRouting(graph, metric="hops")
        assert routing.path(0, 2) == [0, 2]
        graph.remove_edge(0, 2)
        routing.invalidate()
        assert routing.path(0, 2) == [0, 1, 2]

    def test_forwarder_list_from_etx_path(self):
        graph = build_connectivity_graph(make_channel([(0, 0), (115, 0), (230, 0), (345, 0)]))
        routing = ShortestPathRouting(graph, metric="etx")
        assert routing.forwarder_list(0, 3) == (2, 1)
