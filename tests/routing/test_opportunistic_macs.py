"""preExOR and MCExOR forwarding behaviour."""

import pytest

from tests.conftest import build_chain_network, collect_deliveries, inject_packets


class TestPreExor:
    def test_delivers_over_multiple_hops(self):
        net, _ = build_chain_network("preexor", n_nodes=4, seed=3)
        received = collect_deliveries(net, 3)
        inject_packets(net, 0, 3, 30)
        net.run_seconds(1.0)
        assert len({p.seq for p in received}) >= 25

    def test_forwarders_take_ownership_and_recontend(self):
        net, _ = build_chain_network("preexor", n_nodes=4, seed=3)
        inject_packets(net, 0, 3, 20)
        net.run_seconds(1.0)
        # Ownership transfer is visible as forwarders originating transmissions
        # of packets they did not source.
        assert net.node(1).mac.stats.data_frames_sent + net.node(2).mac.stats.data_frames_sent > 0
        assert net.node(1).mac.stats.relayed_data_frames + net.node(2).mac.stats.relayed_data_frames > 0

    def test_every_receiver_uses_its_own_ack_slot(self):
        # Sequential ACKs: with several receivers per transmission the number
        # of ACKs sent network-wide exceeds the number of data frames received
        # by the destination alone.
        net, _ = build_chain_network("preexor", n_nodes=4, ber=0.0, shadowing_deviation=0.0, seed=3)
        inject_packets(net, 0, 3, 10)
        net.run_seconds(0.5)
        total_acks = sum(net.node(n).mac.stats.ack_frames_sent for n in range(4))
        dest_data = net.node(3).mac.stats.data_frames_received
        assert total_acks > dest_data

    def test_reordering_can_occur_on_lossy_channel(self):
        net, _ = build_chain_network("preexor", n_nodes=4, hop_m=150.0, seed=2)
        received = collect_deliveries(net, 3)
        inject_packets(net, 0, 3, 60)
        net.run_seconds(2.0)
        seqs = [p.seq for p in received]
        out_of_order = sum(1 for a, b in zip(seqs, seqs[1:]) if b < a)
        assert out_of_order > 0  # the pathology RIPPLE is designed to remove

    def test_sequential_ack_delay_formula(self):
        net, _ = build_chain_network("preexor", n_nodes=4)
        mac = net.node(1).mac
        ack = mac.timing.ack_airtime_ns(mac.phy)
        sifs = mac.timing.sifs_ns
        assert mac.ack_delay_ns(0, 2) == sifs
        assert mac.ack_delay_ns(1, 2) == sifs + (ack + sifs)
        assert mac.ack_delay_ns(2, 2) == sifs + 2 * (ack + sifs)

    def test_ack_window_covers_all_slots(self):
        net, _ = build_chain_network("preexor", n_nodes=4)
        mac = net.node(0).mac
        assert mac.ack_window_ns(2) > mac.ack_delay_ns(2, 2)


class TestMcExor:
    def test_delivers_over_multiple_hops(self):
        net, _ = build_chain_network("mcexor", n_nodes=4, seed=4)
        received = collect_deliveries(net, 3)
        inject_packets(net, 0, 3, 30)
        net.run_seconds(1.0)
        assert len({p.seq for p in received}) >= 25

    def test_compressed_ack_delay_formula(self):
        net, _ = build_chain_network("mcexor", n_nodes=4)
        mac = net.node(1).mac
        sifs = mac.timing.sifs_ns
        assert mac.ack_delay_ns(0, 2) == sifs
        assert mac.ack_delay_ns(1, 2) == 2 * sifs
        assert mac.ack_delay_ns(2, 2) == 3 * sifs

    def test_compressed_acks_use_less_airtime_than_preexor(self):
        acks = {}
        for scheme in ("preexor", "mcexor"):
            net, _ = build_chain_network(scheme, n_nodes=4, ber=0.0, shadowing_deviation=0.0, seed=3)
            inject_packets(net, 0, 3, 15)
            net.run_seconds(0.5)
            acks[scheme] = sum(net.node(n).mac.stats.ack_frames_sent for n in range(4))
        assert acks["mcexor"] < acks["preexor"]

    def test_ack_suppression_flag(self):
        net, _ = build_chain_network("mcexor", n_nodes=4)
        assert net.node(0).mac.suppress_ack_on_overheard_ack() is True
        net2, _ = build_chain_network("preexor", n_nodes=4)
        assert net2.node(0).mac.suppress_ack_on_overheard_ack() is False

    def test_retry_limit_drops_unreachable_packets(self):
        net, _ = build_chain_network("mcexor", n_nodes=2, hop_m=900.0, seed=3)
        inject_packets(net, 0, 1, 3)
        net.run_seconds(1.0)
        assert net.node(0).mac.stats.packets_dropped_retry > 0
