"""Predetermined (static) routing tables."""

import pytest

from repro.routing.base import RouteNotFound
from repro.routing.static import StaticRouting


@pytest.fixture
def routing():
    return StaticRouting({(0, 3): [0, 1, 2, 3], (5, 7): [5, 6, 1, 7]})


class TestPaths:
    def test_full_path(self, routing):
        assert routing.path(0, 3) == [0, 1, 2, 3]

    def test_reverse_path_is_derived(self, routing):
        assert routing.path(3, 0) == [3, 2, 1, 0]

    def test_mid_path_node_can_forward(self, routing):
        assert routing.path(1, 3) == [1, 2, 3]
        assert routing.path(2, 3) == [2, 3]

    def test_unknown_route_raises(self, routing):
        with pytest.raises(RouteNotFound):
            routing.path(0, 99)

    def test_next_hop(self, routing):
        assert routing.next_hop(0, 3) == 1
        assert routing.next_hop(1, 3) == 2
        assert routing.next_hop(6, 7) == 1

    def test_add_path_after_construction(self, routing):
        routing.add_path([0, 2, 4])
        assert routing.path(0, 4) == [0, 2, 4]
        assert routing.path(4, 0) == [4, 2, 0]


class TestValidation:
    def test_path_must_match_endpoints(self):
        with pytest.raises(ValueError):
            StaticRouting({(0, 3): [1, 2, 3]})

    def test_path_must_have_two_nodes(self):
        with pytest.raises(ValueError):
            StaticRouting({(0, 0): [0]})

    def test_path_must_not_revisit(self):
        with pytest.raises(ValueError):
            StaticRouting({(0, 3): [0, 1, 0, 3]})

    def test_reverse_not_added_when_disabled(self):
        routing = StaticRouting({(0, 3): [0, 1, 3]}, add_reverse=False)
        with pytest.raises(RouteNotFound):
            routing.path(3, 0)


class TestForwarderLists:
    def test_priority_order_is_closest_to_destination_first(self, routing):
        # Path 0-1-2-3: forwarders are 2 (nearest destination) then 1.
        assert routing.forwarder_list(0, 3) == (2, 1)

    def test_destination_not_included(self, routing):
        assert 3 not in routing.forwarder_list(0, 3)

    def test_source_not_included(self, routing):
        assert 0 not in routing.forwarder_list(0, 3)

    def test_single_hop_has_no_forwarders(self, routing):
        assert routing.forwarder_list(2, 3) == ()

    def test_max_forwarders_cap(self):
        routing = StaticRouting({(0, 9): list(range(10))}, max_forwarders=3)
        forwarders = routing.forwarder_list(0, 9)
        assert len(forwarders) == 3
        assert forwarders == (8, 7, 6)  # the three nearest the destination

    def test_route_decision_opportunistic(self, routing):
        decision = routing.route_decision(0, 3, opportunistic=True)
        assert decision.final_dst == 3
        assert decision.next_hop is None
        assert decision.forwarder_list == (2, 1)

    def test_route_decision_next_hop(self, routing):
        decision = routing.route_decision(0, 3, opportunistic=False)
        assert decision.next_hop == 1
        assert decision.forwarder_list == ()
