"""MAC timing constants and the Section II overhead arithmetic."""

import pytest

from repro.mac.timing import DEFAULT_TIMING, MacTiming
from repro.phy.params import HIGH_RATE_PHY, LOW_RATE_PHY, PhyParams
from repro.sim.units import us


class TestTable1Parameters:
    """The simulation parameters of Table I."""

    def test_sifs(self):
        assert DEFAULT_TIMING.sifs_ns == us(16)

    def test_slot(self):
        assert DEFAULT_TIMING.slot_ns == us(9)

    def test_difs_is_sifs_plus_two_slots(self):
        assert DEFAULT_TIMING.difs_ns == us(16) + 2 * us(9) == us(34)

    def test_phy_header(self):
        assert HIGH_RATE_PHY.phy_header_ns == us(20)

    def test_rates(self):
        assert HIGH_RATE_PHY.data_rate_bps == 216e6
        assert HIGH_RATE_PHY.basic_rate_bps == 54e6
        assert LOW_RATE_PHY.data_rate_bps == 6e6

    def test_queue_capacity(self):
        assert DEFAULT_TIMING.queue_capacity == 50

    def test_max_aggregation(self):
        assert DEFAULT_TIMING.max_aggregation == 16


class TestAirtimes:
    def test_single_packet_frame_airtime(self):
        # 1000-byte packet + framing at 216 Mb/s plus the 20 us PLCP header:
        # comfortably under 60 us, far above the bare PLCP.
        airtime = DEFAULT_TIMING.data_frame_airtime_ns(HIGH_RATE_PHY, [1000])
        assert us(50) < airtime < us(60)

    def test_aggregated_frame_cheaper_than_separate_frames(self):
        one = DEFAULT_TIMING.data_frame_airtime_ns(HIGH_RATE_PHY, [1000])
        sixteen = DEFAULT_TIMING.data_frame_airtime_ns(HIGH_RATE_PHY, [1000] * 16)
        assert sixteen < 16 * one  # the PLCP + MAC header are paid once

    def test_ack_airtime_uses_basic_rate(self):
        fast = DEFAULT_TIMING.ack_airtime_ns(HIGH_RATE_PHY)
        slow = DEFAULT_TIMING.ack_airtime_ns(LOW_RATE_PHY)
        assert slow > fast
        assert fast > HIGH_RATE_PHY.phy_header_ns

    def test_forwarder_list_grows_header(self):
        bare = DEFAULT_TIMING.header_bits(0)
        with_five = DEFAULT_TIMING.header_bits(5)
        assert with_five == bare + 5 * 6 * 8

    def test_ack_timeout_covers_ack(self):
        timeout = DEFAULT_TIMING.ack_timeout_ns(HIGH_RATE_PHY)
        assert timeout > DEFAULT_TIMING.sifs_ns + DEFAULT_TIMING.ack_airtime_ns(HIGH_RATE_PHY)

    def test_mean_backoff(self):
        assert DEFAULT_TIMING.mean_backoff_ns() == (16 - 1) * us(9) // 2


class TestSectionIIOverheadExample:
    """The Fig. 2 timeline example of Section II-C1.

    For flow 1 of Fig. 1 (route 0 -> 1 -> 2 -> 3, i.e. three transmissions
    with an ACK train whose length shrinks as the packet advances), the
    paper states that per two packets preExOR takes ``6 (T_ACK + T_SIFS)``
    longer than PRR, and MCExOR takes ``6 T_ACK`` less than preExOR but
    still ``6 T_SIFS`` longer than PRR.  Per packet that is an extra ACK
    slot per remaining forwarder: 2 + 1 + 0 = 3 slots over the three hops.
    """

    HOPS = 3

    def _ack_slot_excess(self) -> int:
        # Extra acknowledgement slots beyond PRR's single ACK, summed over
        # the path: (forwarders remaining at hop i) for i = 1..n.
        return sum(range(self.HOPS))  # 2 + 1 + 0 = 3 for the 3-hop route

    def test_preexor_excess_per_packet(self):
        timing = DEFAULT_TIMING
        t_ack = timing.ack_airtime_ns(HIGH_RATE_PHY) - HIGH_RATE_PHY.phy_header_ns
        excess = self._ack_slot_excess() * (t_ack + timing.sifs_ns)
        # Two packets' excess is the paper's 6 * (T_ACK + T_SIFS).
        assert 2 * excess == 6 * (t_ack + timing.sifs_ns)

    def test_mcexor_excess_per_packet(self):
        timing = DEFAULT_TIMING
        excess = self._ack_slot_excess() * timing.sifs_ns
        assert 2 * excess == 6 * timing.sifs_ns

    def test_ordering_prr_mcexor_preexor(self):
        timing = DEFAULT_TIMING
        t_ack = timing.ack_airtime_ns(HIGH_RATE_PHY) - HIGH_RATE_PHY.phy_header_ns
        prr_extra = 0
        mcexor_extra = self._ack_slot_excess() * timing.sifs_ns
        preexor_extra = self._ack_slot_excess() * (t_ack + timing.sifs_ns)
        assert prr_extra < mcexor_extra < preexor_extra


class TestCustomTiming:
    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_TIMING.sifs_ns = 0  # type: ignore[misc]

    def test_custom_values_flow_through(self):
        timing = MacTiming(sifs_ns=us(10), slot_ns=us(20))
        assert timing.difs_ns == us(50)
