"""Interface queue (drop tail) and the RIPPLE re-ordering buffer (Rq)."""

import pytest
from hypothesis import given, strategies as st

from repro.mac.queues import DropTailQueue, ReorderBuffer
from repro.packet import Packet


def pkt(seq, dst=3):
    return Packet(src=0, dst=dst, size_bytes=1000, seq=seq)


class TestDropTailQueue:
    def test_fifo_order(self):
        queue = DropTailQueue(capacity=10)
        for i in range(5):
            queue.push(pkt(i), i)
        popped = [queue.pop()[0].seq for _ in range(5)]
        assert popped == [0, 1, 2, 3, 4]

    def test_capacity_enforced(self):
        queue = DropTailQueue(capacity=3)
        results = [queue.push(pkt(i)) for i in range(5)]
        assert results == [True, True, True, False, False]
        assert queue.stats.dropped == 2
        assert len(queue) == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity=0)

    def test_peek_does_not_remove(self):
        queue = DropTailQueue(capacity=5)
        queue.push(pkt(0), "hop")
        assert queue.peek()[0].seq == 0
        assert len(queue) == 1

    def test_pop_matching_preserves_order_of_rest(self):
        queue = DropTailQueue(capacity=10)
        for i, hop in enumerate([1, 2, 1, 2, 1]):
            queue.push(pkt(i), hop)
        taken = queue.pop_matching(lambda _p, hop: hop == 1, limit=2)
        assert [p.seq for p, _ in taken] == [0, 2]
        remaining = [p.seq for p, _ in queue]
        assert remaining == [1, 3, 4]

    def test_pop_matching_respects_limit(self):
        queue = DropTailQueue(capacity=10)
        for i in range(6):
            queue.push(pkt(i), "x")
        taken = queue.pop_matching(lambda _p, hop: True, limit=4)
        assert len(taken) == 4 and len(queue) == 2

    def test_stats_counters(self):
        queue = DropTailQueue(capacity=2)
        queue.push(pkt(0))
        queue.push(pkt(1))
        queue.push(pkt(2))
        queue.pop()
        assert queue.stats.enqueued == 2
        assert queue.stats.dequeued == 1
        assert queue.stats.dropped == 1

    @given(st.lists(st.integers(min_value=0, max_value=5), max_size=40))
    def test_never_exceeds_capacity(self, hops):
        queue = DropTailQueue(capacity=7)
        for i, hop in enumerate(hops):
            queue.push(pkt(i), hop)
        assert len(queue) <= 7


class TestReorderBuffer:
    """The Rq of Section III-B6: strictly in-order release per origin."""

    def test_in_order_release(self):
        rq = ReorderBuffer()
        out = []
        for seq in range(3):
            out.extend(rq.accept(0, seq, pkt(seq), flush_below=0))
        assert [p.seq for p in out] == [0, 1, 2]

    def test_gap_holds_back_later_packets(self):
        rq = ReorderBuffer()
        assert rq.accept(0, 1, pkt(1), 0) == []
        assert rq.accept(0, 2, pkt(2), 0) == []
        released = rq.accept(0, 0, pkt(0), 0)
        assert [p.seq for p in released] == [0, 1, 2]

    def test_duplicates_are_dropped(self):
        rq = ReorderBuffer()
        rq.accept(0, 0, pkt(0), 0)
        assert rq.accept(0, 0, pkt(0), 0) == []

    def test_flush_below_releases_partial_run(self):
        rq = ReorderBuffer()
        rq.accept(0, 1, pkt(1), 0)
        rq.accept(0, 3, pkt(3), 0)
        # The origin gave up on seq 0 and 2: watermark 4 releases 1 and 3 in order.
        released = rq.flush(0, flush_below=4)
        assert [p.seq for p in released] == [1, 3]
        assert rq.pending(0) == 0
        assert rq.next_expected(0) == 4

    def test_flush_carried_by_data_frame(self):
        rq = ReorderBuffer()
        rq.accept(0, 1, pkt(1), 0)
        released = rq.accept(0, 2, pkt(2), flush_below=1)
        assert [p.seq for p in released] == [1, 2]

    def test_origins_are_independent(self):
        rq = ReorderBuffer()
        assert rq.accept(0, 0, pkt(0), 0) != []
        assert rq.accept(5, 1, pkt(1), 0) == []  # origin 5 still waits for its seq 0
        assert rq.pending(5) == 1

    def test_old_packet_after_flush_is_ignored(self):
        rq = ReorderBuffer()
        rq.flush(0, flush_below=10)
        assert rq.accept(0, 4, pkt(4), 0) == []

    def test_flush_below_current_watermark_is_noop(self):
        rq = ReorderBuffer()
        rq.accept(0, 0, pkt(0), 0)
        rq.accept(0, 1, pkt(1), 0)
        # A stale (lower) watermark must not rewind next_expected or
        # re-release anything.
        assert rq.flush(0, flush_below=1) == []
        assert rq.next_expected(0) == 2

    def test_flush_at_exact_next_expected_is_noop(self):
        rq = ReorderBuffer()
        rq.accept(0, 0, pkt(0), 0)
        assert rq.flush(0, flush_below=1) == []
        assert rq.next_expected(0) == 1

    def test_header_only_accept_advances_watermark(self):
        # packet=None models a frame whose sub-packets were all corrupted but
        # whose header (carrying flush_below) survived.
        rq = ReorderBuffer()
        rq.accept(0, 2, pkt(2), 0)
        released = rq.accept(0, -1, None, flush_below=2)
        assert [p.seq for p in released] == [2]
        assert rq.next_expected(0) == 3

    def test_flush_releases_held_run_beyond_watermark(self):
        # Watermark 2 releases 1; 2 and 3 are contiguous from there, so the
        # whole run goes out in order.
        rq = ReorderBuffer()
        rq.accept(0, 1, pkt(1), 0)
        rq.accept(0, 2, pkt(2), 0)
        rq.accept(0, 3, pkt(3), 0)
        released = rq.flush(0, flush_below=2)
        assert [p.seq for p in released] == [1, 2, 3]
        assert rq.pending(0) == 0
        assert rq.next_expected(0) == 4

    def test_duplicate_of_held_packet_not_double_released(self):
        rq = ReorderBuffer()
        rq.accept(0, 1, pkt(1), 0)
        rq.accept(0, 1, pkt(1), 0)  # duplicate while still held
        released = rq.accept(0, 0, pkt(0), 0)
        assert [p.seq for p in released] == [0, 1]

    @given(order=st.permutations(list(range(8))))
    def test_any_arrival_order_releases_in_order(self, order):
        rq = ReorderBuffer()
        released = []
        for seq in order:
            released.extend(rq.accept(0, seq, pkt(seq), 0))
        assert [p.seq for p in released] == list(range(8))

    @given(
        order=st.permutations(list(range(10))),
        drop=st.sets(st.integers(min_value=0, max_value=9), max_size=4),
    )
    def test_releases_are_monotone_even_with_drops(self, order, drop):
        """Abandoned sequence numbers never cause out-of-order or duplicate release."""
        rq = ReorderBuffer()
        released = []
        for seq in order:
            if seq in drop:
                continue  # the origin never manages to deliver these
            released.extend(rq.accept(0, seq, pkt(seq), 0))
        # The origin eventually gives up on the dropped ones and advances its
        # watermark past everything it sent.
        released.extend(rq.flush(0, 10))
        seqs = [p.seq for p in released]
        assert seqs == sorted(seqs)
        assert len(seqs) == len(set(seqs))
        assert set(seqs) == set(range(10)) - drop
