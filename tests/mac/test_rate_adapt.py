"""ARF rate adaptation: controller state machine and wrapper composition."""

from __future__ import annotations

import pytest

from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.mac.rate_adapt import ArfRateController, default_rate_ladder
from repro.phy.params import PhyParams
from repro.spec import MacSpec
from repro.topology.standard import line_topology


class _FakeAccess:
    def __init__(self):
        self.outcome_listener = None


class _FakeMac:
    """Just enough MAC surface for the controller: an access seam and a phy."""

    def __init__(self, phy=None):
        self.phy = phy or PhyParams()
        self.access = _FakeAccess()


class TestLadder:
    def test_default_ladder_tops_out_at_the_configured_rate(self):
        assert default_rate_ladder(216e6) == (27e6, 54e6, 108e6, 216e6)
        assert default_rate_ladder(6e6) == (0.75e6, 1.5e6, 3e6, 6e6)

    def test_controller_starts_on_the_configured_rate(self):
        mac = _FakeMac()
        controller = ArfRateController(mac)
        assert controller.current_rate_bps == 216e6
        assert mac.phy.data_rate_bps == 216e6

    def test_rejects_macs_without_a_channel_access_seam(self):
        class Bare:
            phy = PhyParams()

        with pytest.raises(ValueError, match="ChannelAccess"):
            ArfRateController(Bare())

    def test_rejects_unsorted_ladders(self):
        with pytest.raises(ValueError, match="ascending"):
            ArfRateController(_FakeMac(), rates=[54e6, 6e6])


class TestStateMachine:
    def make(self, **kwargs):
        mac = _FakeMac()
        controller = ArfRateController(
            mac, rates=[6e6, 12e6, 24e6, 54e6, 108e6, 216e6], **kwargs
        )
        return mac, controller

    def test_consecutive_failures_step_down(self):
        mac, controller = self.make(down_after=2)
        controller.record_outcome(False)
        assert controller.current_rate_bps == 216e6  # one failure is not a streak
        controller.record_outcome(False)
        assert controller.current_rate_bps == 108e6
        assert mac.phy.data_rate_bps == 108e6

    def test_success_resets_the_failure_streak(self):
        _, controller = self.make(down_after=2)
        controller.record_outcome(False)
        controller.record_outcome(True)
        controller.record_outcome(False)
        assert controller.current_rate_bps == 216e6

    def test_consecutive_successes_step_up_and_probe_failure_falls_back(self):
        mac, controller = self.make(up_after=3, down_after=2)
        for _ in range(4):
            controller.record_outcome(False)
        assert controller.current_rate_bps == 54e6
        for _ in range(3):
            controller.record_outcome(True)
        assert controller.current_rate_bps == 108e6  # stepped up
        controller.record_outcome(False)  # single failure at the probe rate
        assert controller.current_rate_bps == 54e6
        assert controller.steps_up == 1 and controller.steps_down >= 1
        assert mac.phy.data_rate_bps == 54e6

    def test_survived_probe_requires_full_streak_to_fall_back(self):
        _, controller = self.make(up_after=2, down_after=2)
        controller.record_outcome(True)
        controller.record_outcome(True)
        assert controller.current_rate_bps == 216e6  # already at the top: stay

    def test_rate_floor_and_ceiling(self):
        _, controller = self.make(up_after=1, down_after=1)
        for _ in range(20):
            controller.record_outcome(False)
        assert controller.current_rate_bps == 6e6
        for _ in range(40):
            controller.record_outcome(True)
        assert controller.current_rate_bps == 216e6

    def test_basic_rate_stays_at_the_profile_value(self):
        # Per-node capping of the control rate would break the ACK-airtime
        # contract between differently-adapted peers (the sender budgets its
        # ACK timeout from its own basic rate), so only the data rate moves.
        mac, controller = self.make(down_after=1)
        for _ in range(3):
            controller.record_outcome(False)
        assert mac.phy.data_rate_bps == 24e6
        assert mac.phy.basic_rate_bps == 54e6


class TestEndToEnd:
    BASE = dict(duration_s=0.05, seed=2)

    def run(self, mac_spec):
        return run_scenario(
            ScenarioConfig(topology=line_topology(3), mac=mac_spec, **self.BASE)
        )

    def test_wraps_dcf_by_default_and_runs(self):
        result = self.run(MacSpec("rate_adapt"))
        assert result.events_processed > 0
        assert result.flows

    def test_wraps_ripple_with_opportunistic_routing(self):
        result = self.run(MacSpec("rate_adapt", {"inner": "ripple"}))
        baseline = self.run(MacSpec("ripple"))
        # The wrapped scheme must get forwarder lists (it would deadlock at
        # zero throughput without them); adaptation may alter the numbers.
        assert result.flow_throughput(1) > 0
        assert baseline.flow_throughput(1) > 0

    def test_deterministic_and_serializable(self):
        spec = MacSpec("rate_adapt", {"inner": "ripple", "up_after": 3})
        first = self.run(spec)
        second = self.run(spec)
        assert first.to_dict() == second.to_dict()

    def test_cannot_wrap_itself(self):
        with pytest.raises(ValueError, match="cannot wrap itself"):
            self.run(MacSpec("rate_adapt", {"inner": "rate_adapt"}))

    def test_inner_scheme_param_typos_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            self.run(MacSpec("rate_adapt", {"inner": "dcf", "aggregate_local_traffic": True}))
