"""MAC frame construction, priority ranks and relay copies."""

import pytest

from repro.mac.frames import FrameKind, MacFrame, SubPacket, build_ack_frame, build_data_frame
from repro.mac.timing import DEFAULT_TIMING
from repro.packet import Packet
from repro.phy.params import HIGH_RATE_PHY


def subpackets(n=2, size=1000, dst=3):
    return [
        SubPacket(
            packet=Packet(src=0, dst=dst, size_bytes=size, seq=i),
            mac_seq=i,
            bits=DEFAULT_TIMING.subpacket_bits(size),
        )
        for i in range(n)
    ]


class TestDataFrames:
    def test_build_data_frame_fields(self):
        frame = build_data_frame(
            DEFAULT_TIMING, origin=0, final_dst=3, transmitter=0, receiver=None,
            subpackets=subpackets(2), forwarder_list=(2, 1), flush_below=5,
        )
        assert frame.kind is FrameKind.DATA
        assert frame.origin == 0 and frame.final_dst == 3
        assert frame.forwarder_list == (2, 1)
        assert frame.flush_below == 5
        assert len(frame.subpackets) == 2

    def test_header_grows_with_forwarders(self):
        bare = build_data_frame(DEFAULT_TIMING, 0, 3, 0, 3, subpackets(1))
        listed = build_data_frame(DEFAULT_TIMING, 0, 3, 0, None, subpackets(1), forwarder_list=(2, 1))
        assert listed.header_bits > bare.header_bits

    def test_total_bits_sums_subpackets(self):
        frame = build_data_frame(DEFAULT_TIMING, 0, 3, 0, 3, subpackets(4))
        assert frame.total_bits == frame.header_bits + 4 * DEFAULT_TIMING.subpacket_bits(1000)

    def test_airtime_scales_with_aggregation(self):
        small = build_data_frame(DEFAULT_TIMING, 0, 3, 0, 3, subpackets(1))
        large = build_data_frame(DEFAULT_TIMING, 0, 3, 0, 3, subpackets(16))
        assert large.airtime_ns(HIGH_RATE_PHY) > small.airtime_ns(HIGH_RATE_PHY)
        assert large.airtime_ns(HIGH_RATE_PHY) < 16 * small.airtime_ns(HIGH_RATE_PHY)

    def test_frame_ids_are_unique(self):
        a = build_data_frame(DEFAULT_TIMING, 0, 3, 0, 3, subpackets(1))
        b = build_data_frame(DEFAULT_TIMING, 0, 3, 0, 3, subpackets(1))
        assert a.frame_id != b.frame_id


class TestAckFrames:
    def test_build_ack_frame(self):
        ack = build_ack_frame(
            DEFAULT_TIMING, origin=3, final_dst=0, transmitter=3, receiver=None,
            acked_seqs=(0, 2, 5), ack_for_frame=77, forwarder_list=(2, 1),
        )
        assert ack.kind is FrameKind.ACK
        assert ack.acked_seqs == (0, 2, 5)
        assert ack.ack_for_frame == 77
        assert ack.subpackets == []

    def test_ack_airtime_is_much_shorter_than_data(self):
        data = build_data_frame(DEFAULT_TIMING, 0, 3, 0, 3, subpackets(16))
        ack = build_ack_frame(DEFAULT_TIMING, 3, 0, 3, 0, (0,), 1)
        assert ack.airtime_ns(HIGH_RATE_PHY) < data.airtime_ns(HIGH_RATE_PHY) / 5


class TestPriorityRanks:
    """Section III-B2: destination rank 0, then forwarders in list order."""

    def make(self):
        return build_data_frame(
            DEFAULT_TIMING, origin=0, final_dst=3, transmitter=0, receiver=None,
            subpackets=subpackets(1), forwarder_list=(2, 1),
        )

    def test_destination_is_rank_zero(self):
        assert self.make().priority_rank(3) == 0

    def test_forwarders_ranked_by_list_position(self):
        frame = self.make()
        assert frame.priority_rank(2) == 1
        assert frame.priority_rank(1) == 2

    def test_unlisted_station_has_no_rank(self):
        assert self.make().priority_rank(7) is None

    def test_origin_has_no_rank(self):
        assert self.make().priority_rank(0) is None


class TestRelayCopies:
    def test_relay_preserves_identity_and_changes_transmitter(self):
        frame = build_data_frame(
            DEFAULT_TIMING, 0, 3, 0, None, subpackets(3), forwarder_list=(2, 1), flush_below=1
        )
        relay = frame.relay_copy(transmitter=2)
        assert relay.frame_id == frame.frame_id
        assert relay.transmitter == 2
        assert relay.origin == 0 and relay.final_dst == 3
        assert relay.flush_below == 1
        assert relay.forwarder_list == frame.forwarder_list

    def test_relay_subpackets_are_shared_but_list_is_independent(self):
        frame = build_data_frame(DEFAULT_TIMING, 0, 3, 0, None, subpackets(3), forwarder_list=(2, 1))
        relay = frame.relay_copy(transmitter=1)
        relay.subpackets = relay.subpackets[:1]
        assert len(frame.subpackets) == 3
